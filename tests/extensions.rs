//! Integration tests for the extension features: forwarder EDE
//! passthrough, RFC 9567 error reporting, and serve-stale NXDOMAIN.

use extended_dns_errors::prelude::*;
use extended_dns_errors::resolver::forwarder::Forwarder;
use std::sync::Arc;

#[test]
fn forwarder_passes_ede_through_the_wire() {
    let tb = Testbed::build();
    let upstream = Arc::new(tb.resolver(Vendor::Cloudflare));
    let fwd = Forwarder::new(upstream);

    let qname = Name::parse("allow-query-none.extended-dns-errors.com").unwrap();
    let res = fwd.resolve(&qname, RrType::A);
    assert_eq!(res.rcode, Rcode::ServFail);
    let codes: Vec<u16> = res.ede.iter().map(|e| e.code.to_u16()).collect();
    assert_eq!(codes, vec![9, 22, 23]);
    // EXTRA-TEXT survives the double wire round-trip.
    assert!(res.ede[2].extra_text.contains("rcode=REFUSED"));
}

#[test]
fn stripping_forwarder_hides_ede_but_still_parses_it() {
    let tb = Testbed::build();
    let upstream = Arc::new(tb.resolver(Vendor::Unbound));
    let fwd = Forwarder::stripping(upstream);

    let qname = Name::parse("rrsig-exp-all.extended-dns-errors.com").unwrap();
    let res = fwd.resolve(&qname, RrType::A);
    assert_eq!(res.rcode, Rcode::ServFail);
    assert!(res.ede.is_empty(), "stripped for the client");
    let upstream_codes: Vec<u16> = res.upstream_ede.iter().map(|e| e.code.to_u16()).collect();
    assert_eq!(upstream_codes, vec![7], "still visible to the forwarder");
}

#[test]
fn forwarder_preserves_clean_answers() {
    let tb = Testbed::build();
    let upstream = Arc::new(tb.resolver(Vendor::Cloudflare));
    let fwd = Forwarder::new(upstream);
    let qname = Name::parse("valid.extended-dns-errors.com").unwrap();
    let res = fwd.resolve(&qname, RrType::A);
    assert_eq!(res.rcode, Rcode::NoError);
    assert!(res.ede.is_empty());
    assert!(res.authentic_data);
    assert!(!res.answers.is_empty());
}

#[test]
fn error_reporting_fires_on_ede() {
    let tb = Testbed::build();
    let resolver = tb.resolver_with_reporting(Vendor::Cloudflare);

    // A clean resolution produces no report.
    resolver.resolve_a("valid.extended-dns-errors.com");
    assert_eq!(tb.reporting_agent.report_count(), 0);

    // A failing one produces exactly one (for the first EDE code).
    resolver.resolve_a("rrsig-exp-all.extended-dns-errors.com");
    let reports = tb.reporting_agent.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(
        reports[0].qname,
        Name::parse("rrsig-exp-all.extended-dns-errors.com").unwrap()
    );
    assert_eq!(reports[0].qtype, RrType::A);
    assert_eq!(reports[0].info_code, 7);
}

#[test]
fn error_reporting_not_sent_without_agent() {
    let tb = Testbed::build();
    let resolver = tb.resolver(Vendor::Cloudflare); // reporting off
    resolver.resolve_a("rrsig-exp-all.extended-dns-errors.com");
    assert_eq!(tb.reporting_agent.report_count(), 0);
}

#[test]
fn diagnosis_explains_itself() {
    use extended_dns_errors::resolver::explain::explain;
    let tb = Testbed::build();
    let resolver = tb.resolver(Vendor::Cloudflare);
    let res = resolver.resolve_a("allow-query-none.extended-dns-errors.com");
    let text = explain(&res.diagnosis);
    assert!(text.contains("BOGUS"));
    assert!(text.contains("DNSKEY RRset could not be fetched"));
    assert!(text.contains("rcode=REFUSED"));
}
