//! Robustness acceptance tests for the fault-injection / retry /
//! truncation layer (see `docs/ROBUSTNESS.md`):
//!
//! 1. on a clean network the [`RetryPolicy`] is *invariant* — every
//!    policy produces the same rcode, answers, and EDE codes as the
//!    compat `RetryPolicy::none()`;
//! 2. the paper's Table 4 matrix stays pinned cell by cell under mild
//!    packet loss once retries are on;
//! 3. oversized UDP answers recover over the stream channel, visibly
//!    (TC-fallback metrics reconcile with stream-query accounting);
//! 4. a 10%-loss scan with the default hardened policy still resolves
//!    ≥ 99% of what the clean scan resolves, and its counters reconcile.

use extended_dns_errors::prelude::*;
use extended_dns_errors::resolver::Resolver;
use extended_dns_errors::testbed::expectations::table4;
use std::sync::Arc;

/// A resolver on the testbed's network with everything default except
/// the retry policy.
fn resolver_with_policy(tb: &Testbed, vendor: Vendor, policy: RetryPolicy) -> Resolver {
    let mut config = tb.resolver_config.clone();
    config.retry = policy;
    Resolver::new(Arc::clone(&tb.net), VendorProfile::new(vendor), config)
}

#[test]
fn retry_policy_is_invariant_on_a_clean_network() {
    let tb = Testbed::build();
    let policies = [
        RetryPolicy::none(),
        RetryPolicy::hardened(),
        RetryPolicy::none()
            .with_retries_per_server(5)
            .with_hedge_rounds(2)
            .with_backoff_ms(50, 400),
        RetryPolicy::hardened().with_selection(ServerSelection::SmoothedRtt),
        RetryPolicy::hardened().with_tc_fallback(false),
    ];
    for vendor in [Vendor::Cloudflare, Vendor::Unbound, Vendor::Bind9] {
        for spec in &tb.specs {
            let qname = tb.query_name(spec);
            // Fresh resolvers: no cache or SRTT state crosses policies.
            let baseline =
                resolver_with_policy(&tb, vendor, RetryPolicy::none()).resolve(&qname, RrType::A);
            for policy in &policies {
                let got =
                    resolver_with_policy(&tb, vendor, policy.clone()).resolve(&qname, RrType::A);
                assert_eq!(
                    (got.rcode, got.ede_codes(), got.answers.clone()),
                    (
                        baseline.rcode,
                        baseline.ede_codes(),
                        baseline.answers.clone()
                    ),
                    "{} / {} under {policy:?}",
                    spec.label,
                    vendor.name()
                );
            }
        }
    }
}

#[test]
fn table4_stays_pinned_under_mild_loss_with_retries() {
    let tb = Testbed::build();
    // Loss only: no corruption, no truncation. Retries must absorb it
    // without changing a single cell of the 63 × 7 matrix.
    tb.net
        .set_fault_plan(FaultPlan::new(0xBAD_70E5).with_loss(0.02));
    let policy = RetryPolicy::hardened().with_jitter_seed(0xBAD_70E5);
    let resolvers: Vec<_> = Vendor::ALL
        .iter()
        .map(|&v| resolver_with_policy(&tb, v, policy.clone()))
        .collect();
    for (spec, exp) in tb.specs.iter().zip(table4()) {
        let qname = tb.query_name(spec);
        for (i, resolver) in resolvers.iter().enumerate() {
            resolver.flush();
            let got = resolver.resolve(&qname, RrType::A).ede_codes();
            assert_eq!(
                got,
                exp.codes[i].to_vec(),
                "{} col {i} deviates under 2% loss",
                spec.label
            );
        }
    }
}

#[test]
fn truncated_answers_recover_over_the_stream_channel() {
    // Clean run first: what should the healthy control domain return?
    let tb = Testbed::build();
    let spec = tb.spec("valid").expect("control domain");
    let qname = tb.query_name(spec);
    let clean = tb.resolver(Vendor::Cloudflare).resolve(&qname, RrType::A);
    assert_eq!(clean.rcode, Rcode::NoError);

    // Same resolution with a 512-byte UDP ceiling: DNSKEY answers no
    // longer fit, the authority sets TC, and the resolver must fall
    // back to the stream channel — reaching the same result.
    let tb = Testbed::build();
    let metrics = Arc::new(Metrics::new());
    tb.attach_trace_sink(Arc::clone(&metrics) as _);
    tb.net
        .set_fault_plan(FaultPlan::new(1).with_udp_payload_limit(512));
    let capped = tb.resolver(Vendor::Cloudflare).resolve(&qname, RrType::A);

    assert_eq!(capped.rcode, clean.rcode);
    assert_eq!(capped.ede_codes(), clean.ede_codes());
    assert_eq!(capped.answers, clean.answers);

    let traffic = tb.net.stats().snapshot_full();
    assert!(traffic.truncated > 0, "nothing was truncated at 512 B");
    assert!(traffic.stream_queries > 0, "no stream fallback happened");
    let snap = metrics.snapshot();
    assert_eq!(
        snap.tc_fallbacks, traffic.stream_queries,
        "every stream query must come from exactly one TC fallback"
    );

    // With fallback disabled the truncated path must fail instead of
    // silently returning a partial answer.
    let tb = Testbed::build();
    tb.net
        .set_fault_plan(FaultPlan::new(1).with_udp_payload_limit(512));
    let no_fallback = resolver_with_policy(
        &tb,
        Vendor::Cloudflare,
        RetryPolicy::none().with_tc_fallback(false),
    )
    .resolve(&qname, RrType::A);
    assert_eq!(no_fallback.rcode, Rcode::ServFail);
}

#[test]
fn lossy_scan_resolves_99_percent_with_default_policy() {
    let pop = Population::generate(PopulationConfig::tiny());

    let clean_world = ScanWorld::build(&pop);
    let clean = scan(&pop, &clean_world, &ScanConfig::builder().build());
    let clean_resolved = clean.stats.ede.resolved_domains();

    let lossy_world = ScanWorld::build(&pop);
    lossy_world
        .net
        .set_fault_plan(FaultPlan::new(0xC0FFEE).with_loss(0.10));
    let config = ScanConfig::builder()
        .workers(1)
        .retry(RetryPolicy::default())
        .build();
    let lossy = scan(&pop, &lossy_world, &config);
    let lossy_resolved = lossy.stats.ede.resolved_domains();

    assert!(
        lossy_resolved as f64 >= 0.99 * clean_resolved as f64,
        "10% loss resolved only {lossy_resolved}/{clean_resolved}"
    );
    // The hardening had to actually work for a living.
    assert!(lossy.metrics.retries > 0, "10% loss should force retries");
    // And its books must balance.
    assert_eq!(lossy.metrics.queries_sent, lossy.traffic_full.queries);
    assert_eq!(
        lossy.metrics.tc_fallbacks,
        lossy.traffic_full.stream_queries
    );
    assert_eq!(lossy.metrics.faults_injected, lossy.traffic_full.faults);
}
