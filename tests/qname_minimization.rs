//! RFC 7816 QNAME minimization: the resolver exposes only one extra
//! label per zone, verified with the network's capture facility, and the
//! minimized walk reaches the same answers (and EDE codes) as the plain
//! one.

use extended_dns_errors::resolver::{Resolver, Vendor, VendorProfile};
use extended_dns_errors::testbed::build::ROOT_SERVER;
use extended_dns_errors::testbed::Testbed;
use extended_dns_errors::wire::{Rcode, RrType};
use std::net::IpAddr;
use std::sync::Arc;

fn minimizing_resolver(tb: &Testbed, vendor: Vendor) -> Resolver {
    let mut config = tb.resolver_config.clone();
    config.qname_minimization = true;
    Resolver::new(Arc::clone(&tb.net), VendorProfile::new(vendor), config)
}

#[test]
fn root_never_sees_the_full_qname() {
    let tb = Testbed::build();
    let r = minimizing_resolver(&tb, Vendor::Cloudflare);

    tb.net.start_capture();
    let res = r.resolve_a("valid.extended-dns-errors.com");
    let capture = tb.net.take_capture();

    assert_eq!(res.rcode, Rcode::NoError, "{:?}", res.diagnosis);
    let full = "valid.extended-dns-errors.com.";
    let root_queries: Vec<_> = capture
        .iter()
        .filter(|c| c.dst == IpAddr::V4(ROOT_SERVER))
        .collect();
    assert!(!root_queries.is_empty());
    for q in &root_queries {
        assert_ne!(q.qname, full, "root saw the full qname: {q:?}");
        // Everything the root sees is either its own apex (the DNSKEY
        // fetch for chain validation) or the single next label.
        assert!(
            q.qname == "." || q.qname == "com.",
            "root saw more than one label: {q:?}"
        );
    }

    // Without minimization the root does see the full name.
    let plain = tb.resolver(Vendor::Cloudflare);
    tb.net.start_capture();
    plain.resolve_a("valid.extended-dns-errors.com");
    let capture = tb.net.take_capture();
    assert!(capture
        .iter()
        .any(|c| c.dst == IpAddr::V4(ROOT_SERVER) && c.qname == full));
}

#[test]
fn minimized_results_match_plain_results() {
    let tb = Testbed::build();
    for label in [
        "valid",
        "unsigned",
        "rrsig-exp-all",
        "ds-bad-tag",
        "no-rrsig-ksk",
        "allow-query-none",
        "v4-private-10",
    ] {
        let spec = tb.spec(label).expect("testbed label");
        let qname = tb.query_name(spec);
        let plain = tb.resolver(Vendor::Cloudflare).resolve(&qname, RrType::A);
        let minimized = minimizing_resolver(&tb, Vendor::Cloudflare).resolve(&qname, RrType::A);
        assert_eq!(plain.rcode, minimized.rcode, "{label}");
        assert_eq!(
            plain.ede_codes(),
            minimized.ede_codes(),
            "{label}: {:?}",
            minimized.diagnosis
        );
    }
}

#[test]
fn minimized_nxdomain_still_resolves_cleanly() {
    let tb = Testbed::build();
    let r = minimizing_resolver(&tb, Vendor::Unbound);
    let spec = tb.spec("nsec3-missing").expect("label");
    let res = r.resolve(&tb.query_name(spec), RrType::A);
    // Same as the Table 4 cell: SERVFAIL with NSEC Missing (12).
    assert_eq!(res.rcode, Rcode::ServFail);
    assert_eq!(res.ede_codes(), vec![12], "{:?}", res.diagnosis);
}
