//! Cross-crate integration tests: scenarios that span the zone signer,
//! the authority, the network, the resolver, and the EDE emission.

use extended_dns_errors::prelude::*;
use extended_dns_errors::resolver::policy::{Policy, PolicyAction};
use extended_dns_errors::resolver::ValidationState;

#[test]
fn secure_chain_end_to_end() {
    let tb = Testbed::build();
    for vendor in Vendor::ALL {
        let r = tb.resolver(vendor);
        let res = r.resolve_a("valid.extended-dns-errors.com");
        assert_eq!(res.rcode, Rcode::NoError, "{}", vendor.name());
        assert_eq!(res.validation, ValidationState::Secure);
        assert!(res.authentic_data);
        assert!(res.ede.is_empty());
        assert!(!res.answers.is_empty());
    }
}

#[test]
fn cache_hit_returns_same_answer_without_network() {
    let tb = Testbed::build();
    let r = tb.resolver(Vendor::Cloudflare);
    let first = r.resolve_a("valid.extended-dns-errors.com");
    let t0 = tb.net.clock().now_millis();
    let second = r.resolve_a("valid.extended-dns-errors.com");
    // Cache hits make no network queries, so the virtual clock stands
    // still.
    assert_eq!(tb.net.clock().now_millis(), t0);
    assert_eq!(first.rcode, second.rcode);
    assert_eq!(first.answers, second.answers);
}

#[test]
fn cached_error_is_signaled_with_ede_13() {
    let tb = Testbed::build();
    let r = tb.resolver(Vendor::Cloudflare);
    let first = r.resolve_a("allow-query-none.extended-dns-errors.com");
    assert_eq!(first.rcode, Rcode::ServFail);
    assert!(!first.ede_codes().contains(&13));

    // Second query within the failure TTL: replayed from the error
    // cache, flagged with Cached Error (13) alongside the original
    // codes.
    let second = r.resolve_a("allow-query-none.extended-dns-errors.com");
    assert_eq!(second.rcode, Rcode::ServFail);
    let codes = second.ede_codes();
    assert!(codes.contains(&13), "{codes:?}");
    assert!(codes.contains(&22), "{codes:?}");
}

#[test]
fn policy_codes_are_emitted() {
    let tb = Testbed::build();
    let mut r = tb.resolver(Vendor::Bind9);
    let mut policy = Policy::new();
    policy.add(Name::parse("blocked.example").unwrap(), PolicyAction::Block);
    policy.add(
        Name::parse("censored.example").unwrap(),
        PolicyAction::Censor,
    );
    policy.add(
        Name::parse("filtered.example").unwrap(),
        PolicyAction::Filter,
    );
    policy.add(
        Name::parse("walled.example").unwrap(),
        PolicyAction::Forge("198.51.100.99".parse().unwrap()),
    );
    r.set_policy(policy);

    let res = r.resolve_a("sub.blocked.example");
    assert_eq!(res.rcode, Rcode::NxDomain);
    assert_eq!(res.ede_codes(), vec![15]);

    assert_eq!(r.resolve_a("censored.example").ede_codes(), vec![16]);
    assert_eq!(r.resolve_a("filtered.example").ede_codes(), vec![17]);

    let forged = r.resolve_a("walled.example");
    assert_eq!(forged.rcode, Rcode::NoError);
    assert_eq!(forged.ede_codes(), vec![4]);
    assert_eq!(forged.answers.len(), 1);
}

#[test]
fn vendors_disagree_by_design() {
    // The same broken zone yields different codes per vendor — spot-check
    // the ds-bad-tag row end to end.
    let tb = Testbed::build();
    let qname = Name::parse("ds-bad-tag.extended-dns-errors.com").unwrap();

    let expect: &[(Vendor, &[u16])] = &[
        (Vendor::Bind9, &[]),
        (Vendor::Unbound, &[9]),
        (Vendor::PowerDns, &[9]),
        (Vendor::Knot, &[6]),
        (Vendor::Cloudflare, &[9]),
        (Vendor::Quad9, &[9]),
        (Vendor::OpenDns, &[6]),
    ];
    for (vendor, codes) in expect {
        let r = tb.resolver(*vendor);
        assert_eq!(
            r.resolve(&qname, RrType::A).ede_codes(),
            codes.to_vec(),
            "{}",
            vendor.name()
        );
    }
}

#[test]
fn extra_text_identifies_the_failing_nameserver() {
    let tb = Testbed::build();
    let r = tb.resolver(Vendor::Cloudflare);
    let res = r.resolve_a("allow-query-none.extended-dns-errors.com");
    let net_err = res
        .ede
        .iter()
        .find(|e| e.code == EdeCode::NetworkError)
        .expect("Network Error present");
    // The paper: "1.2.3.4:53 rcode=REFUSED for a.com A".
    assert!(
        net_err.extra_text.contains(":53 rcode=REFUSED for"),
        "{}",
        net_err.extra_text
    );
    assert!(net_err
        .extra_text
        .contains("allow-query-none.extended-dns-errors.com"));
}

#[test]
fn knot_extra_text_for_unsupported_algorithms() {
    let tb = Testbed::build();
    let r = tb.resolver(Vendor::Knot);
    let res = r.resolve_a("rsamd5.extended-dns-errors.com");
    assert_eq!(res.rcode, Rcode::NoError, "treated as unsigned");
    assert_eq!(res.ede.len(), 1);
    assert_eq!(res.ede[0].code, EdeCode::Other);
    assert_eq!(res.ede[0].extra_text, "LSLC: unsupported digest/key");
}

#[test]
fn ad_bit_only_on_validated_answers() {
    let tb = Testbed::build();
    let r = tb.resolver(Vendor::Unbound);
    assert!(r.resolve_a("valid.extended-dns-errors.com").authentic_data);
    assert!(
        !r.resolve_a("unsigned.extended-dns-errors.com")
            .authentic_data
    );
    assert!(!r.resolve_a("no-ds.extended-dns-errors.com").authentic_data);
}
