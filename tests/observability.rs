//! Golden tests for the `ede-trace` observability pipeline: the exact
//! event sequence of one healthy and one broken resolution through the
//! Cloudflare profile, the JSONL export, and the metrics registry's
//! agreement with the transport's own traffic accounting.

use extended_dns_errors::prelude::*;
use extended_dns_errors::trace::{Metrics, ResolutionTrace, TraceEvent};
use std::sync::Arc;

/// The healthy control (`valid`): three signed zone cuts walked with a
/// DNSKEY fetch + two validation steps at each, then the leaf answer and
/// its own chain — and no findings, no EDE, NOERROR.
const HEALTHY_GOLDEN: &[&str] = &[
    "resolution_started",
    "cache_probe",
    // root: referral for the qname, then the root DNSKEY + DS validation
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    // com: same shape, one level down
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    // extended-dns-errors.com: same shape
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    // the leaf zone: answer, then its DNSKEY + answer-RRSIG validation
    "query_sent",
    "authority_answer",
    "response_received",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    "resolution_finished",
];

/// `rrsig-exp-all` diverges from the healthy walk only at the leaf: the
/// expired DNSKEY signature records a finding, fails the validation
/// step, and synthesizes EDE 7 (Signature Expired).
const BROKEN_GOLDEN: &[&str] = &[
    "resolution_started",
    "cache_probe",
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    "query_sent",
    "authority_answer",
    "response_received",
    "referral",
    "query_sent",
    "authority_answer",
    "response_received",
    "validation_step",
    "validation_step",
    "query_sent",
    "authority_answer",
    "response_received",
    "query_sent",
    "authority_answer",
    "response_received",
    "finding_recorded",
    "validation_step",
    "ede_emitted",
    "resolution_finished",
];

fn traced_resolution(label: &str) -> (Arc<ResolutionTrace>, Resolution) {
    let tb = Testbed::build();
    let trace = Arc::new(ResolutionTrace::new(4096));
    tb.attach_trace_sink(Arc::clone(&trace) as _);
    let spec = tb.spec(label).expect("testbed domain");
    let qname = tb.query_name(spec);
    let res = tb.resolver(Vendor::Cloudflare).resolve(&qname, RrType::A);
    (trace, res)
}

#[test]
fn healthy_resolution_matches_golden_sequence() {
    let (trace, res) = traced_resolution("valid");
    assert_eq!(res.rcode, Rcode::NoError);
    assert!(res.ede.is_empty());

    let events = trace.events();
    let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
    assert_eq!(kinds, HEALTHY_GOLDEN);
    assert_eq!(trace.dropped(), 0);

    // Clock order: stamps never go backwards.
    for pair in events.windows(2) {
        assert!(pair[0].at_ms <= pair[1].at_ms);
    }
}

#[test]
fn broken_resolution_matches_golden_sequence() {
    let (trace, res) = traced_resolution("rrsig-exp-all");
    assert_eq!(res.rcode, Rcode::ServFail);
    assert_eq!(res.ede_codes(), vec![7]);

    let events = trace.events();
    let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
    assert_eq!(kinds, BROKEN_GOLDEN);

    // Clock order, and the acceptance-criteria variants all present.
    for pair in events.windows(2) {
        assert!(pair[0].at_ms <= pair[1].at_ms);
    }
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, TraceEvent::QuerySent { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, TraceEvent::ValidationStep { ok: false, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, TraceEvent::FindingRecorded { finding } if finding.contains("SignatureExpired"))));
    assert!(events.iter().any(|e| matches!(
        &e.event,
        TraceEvent::EdeEmitted { vendor, code: 7, .. } if vendor == "Cloudflare DNS"
    )));

    // The JSONL export carries one line per event, in order, each a
    // flat JSON object with the stamp and the kind tag.
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), events.len());
    for (line, kind) in lines.iter().zip(BROKEN_GOLDEN) {
        assert!(line.starts_with("{\"at_ms\":"), "{line}");
        assert!(line.contains(&format!("\"kind\":\"{kind}\"")), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    assert!(jsonl.contains("\"kind\":\"ede_emitted\",\"vendor\":\"Cloudflare DNS\",\"code\":7"));
}

#[test]
fn tracing_does_not_change_resolution_results() {
    let tb = Testbed::build();
    let spec = tb.spec("rrsig-exp-all").expect("testbed domain");
    let qname = tb.query_name(spec);
    let untraced = tb.resolver(Vendor::Cloudflare).resolve(&qname, RrType::A);

    let (_, traced) = traced_resolution("rrsig-exp-all");
    assert_eq!(untraced.rcode, traced.rcode);
    assert_eq!(untraced.ede_codes(), traced.ede_codes());
}

#[test]
fn metrics_registry_agrees_with_transport_accounting() {
    let tb = Testbed::build();
    let metrics = Arc::new(Metrics::new());
    tb.attach_trace_sink(Arc::clone(&metrics) as _);

    let resolver = tb.resolver(Vendor::Cloudflare);
    for label in ["valid", "rrsig-exp-all", "allow-query-none", "valid"] {
        let spec = tb.spec(label).expect("testbed domain");
        resolver.resolve(&tb.query_name(spec), RrType::A);
    }

    let snap = metrics.snapshot();
    let (queries, delivered, failed) = tb.net.stats().snapshot();
    // The QuerySent event is emitted at the exact point the transport
    // counts a query, so the two accountings must agree.
    assert_eq!(snap.queries_sent, queries);
    assert_eq!(snap.responses_received, delivered);
    assert_eq!(snap.timeouts, failed);

    assert_eq!(snap.resolutions, 4);
    assert!(snap.cache_hits >= 1, "second 'valid' lookup hits the cache");
    assert!(snap
        .ede_by_vendor
        .contains_key(&("Cloudflare DNS".to_string(), 7)));
    assert!(snap.render().contains("metrics summary"));
}
