//! The paper's headline quantitative claims, checked end to end against
//! the reproduction.

use extended_dns_errors::resolver::Vendor;
use extended_dns_errors::scan::{
    aggregate::aggregate,
    population::{Population, PopulationConfig},
    scanner::{scan, ScanConfig},
    stats,
    world::ScanWorld,
};
use extended_dns_errors::testbed::{agreement, expectations::table4, Testbed};
use extended_dns_errors::wire::RrType;

/// §3.3: "Only 4 test cases out of 63 triggered the same results across
/// all the seven tested systems […] The remaining 94% of the cases were
/// handled inconsistently." — measured, not read from the expectation
/// table.
#[test]
fn claim_94_percent_inconsistency() {
    let tb = Testbed::build();
    let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
    let rows: Vec<(String, Vec<Vec<u16>>)> = tb
        .specs
        .iter()
        .map(|spec| {
            let qname = tb.query_name(spec);
            let cols = resolvers
                .iter()
                .map(|r| {
                    r.flush();
                    r.resolve(&qname, RrType::A).ede_codes()
                })
                .collect();
            (spec.label.to_string(), cols)
        })
        .collect();

    let agg = agreement::analyze(&rows);
    assert_eq!(agg.consistent, 4);
    assert_eq!(
        agg.consistent_labels,
        vec!["valid", "no-ds", "nsec3-iter-200", "unsigned"]
    );
    assert!((0.93..0.95).contains(&agg.inconsistency_ratio()));

    // "Our test cases triggered 12 unique INFO-CODEs".
    assert_eq!(agreement::unique_codes(&rows).len(), 12);

    // And the measured matrix equals the published Table 4 cell by cell.
    for (row, exp) in rows.iter().zip(table4()) {
        assert_eq!(row.0, exp.label);
        for i in 0..7 {
            assert_eq!(row.1[i], exp.codes[i].to_vec(), "{} col {i}", row.0);
        }
    }
}

/// §4.2: the scan's per-code ordering — 22 > 23 > 10 > 9 > 6 — and the
/// overall EDE rate around 5.8%.
#[test]
fn claim_scan_inventory_shape() {
    let cfg = PopulationConfig {
        scale: 20_000, // ~15k domains: fast but structured
        ..Default::default()
    };
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scan(&pop, &world, &ScanConfig::default());
    let agg = aggregate(&pop, &result);

    let count = |c: u16| agg.per_code.get(&c).copied().unwrap_or(0);
    assert!(count(22) > count(23), "22 dominates 23");
    assert!(count(23) > count(10), "23 dominates 10");
    assert!(count(10) > count(9), "10 dominates 9");
    assert!(count(9) > count(6), "9 dominates 6");

    // 17.7M / 303M = 5.8% — allow slack for the absolute-planted rare
    // categories at this scale.
    let rate = agg.ede_domains as f64 / agg.total_domains as f64;
    assert!((0.04..0.10).contains(&rate), "EDE rate {rate}");

    // Lame delegation (22 ∪ 23) is "the issue affecting the largest
    // number of registered domain names".
    let lame = agg
        .per_combo
        .iter()
        .filter(|(combo, _)| combo.contains(&22) || combo.contains(&23))
        .map(|(_, n)| n)
        .sum::<usize>();
    assert!(lame * 2 > agg.ede_domains, "lame delegation dominates");
}

/// §4.3 / Figure 1: ccTLDs are more likely to carry misconfigured
/// domains than gTLDs; a large share of gTLDs have none at all.
#[test]
fn claim_figure1_tld_concentration() {
    let cfg = PopulationConfig {
        scale: 20_000,
        ..Default::default()
    };
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scan(&pop, &world, &ScanConfig::default());
    let agg = aggregate(&pop, &result);

    let g0 = stats::fraction_at(&agg.tld_ratios_gtld, 0.0);
    let c0 = stats::fraction_at(&agg.tld_ratios_cctld, 0.0);
    assert!(g0 > c0, "more gTLDs than ccTLDs are clean: {g0} vs {c0}");
    assert!(g0 > 0.25, "a large share of gTLDs is clean: {g0}");

    // Fully-broken TLDs exist on both sides (the paper: 11 gTLDs, 2
    // ccTLDs).
    assert!(agg.tld_ratios_gtld.contains(&1.0));
    assert!(agg.tld_ratios_cctld.contains(&1.0));
}

/// §4.3 / Figure 2: EDE-triggering domains are evenly distributed across
/// the popularity ranking, and some of the overlap answers NOERROR.
#[test]
fn claim_figure2_tranco_uniformity() {
    let cfg = PopulationConfig {
        scale: 15_000,
        // The ranked list is sampled from the population independently of
        // its size, so a large list keeps the overlap statistically
        // meaningful even at a small scale.
        tranco_size: 2000,
        ..Default::default()
    };
    let tranco_size = cfg.tranco_size;
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scan(&pop, &world, &ScanConfig::default());
    let agg = aggregate(&pop, &result);

    let overlap = agg.tranco_overlap();
    assert!(overlap > 10, "enough ranked EDE domains to test: {overlap}");

    // Kolmogorov-style check against the uniform CDF.
    let series = agg.figure2();
    let n = f64::from(tranco_size);
    let max_dev = series
        .iter()
        .map(|&(x, y)| (y - x / n).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dev < 0.25, "rank CDF far from uniform: {max_dev}");

    assert!(
        agg.noerror_with_ede > 0,
        "NOERROR responses still carry EDE"
    );
}
