//! Server configuration and the structured serving error type.

use ede_wire::WireError;
use std::fmt;
use std::io;
use std::time::Duration;

/// Errors from the serving front end, split by layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// A socket failed to bind.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
    /// Socket-level failure after binding (receive, send, clone).
    Io(io::Error),
    /// A message could not be encoded to — or decoded from — wire
    /// format.
    Wire(WireError),
    /// The configuration refuses to describe a runnable server.
    InvalidConfig(&'static str),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServerError::Io(e) => write!(f, "socket error: {e}"),
            ServerError::Wire(e) => write!(f, "wire codec error: {e}"),
            ServerError::InvalidConfig(what) => write!(f, "invalid server config: {what}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Bind { source, .. } => Some(source),
            ServerError::Io(e) => Some(e),
            ServerError::Wire(e) => Some(e),
            ServerError::InvalidConfig(_) => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

/// Static serving configuration.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ServerConfig::default()`] or the fluent
/// [`ServerConfig::builder()`], then adjust individual public fields —
/// the same idiom as `ResolverConfig` and `ScanConfig`, so new knobs
/// can land without breaking callers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerConfig {
    /// UDP bind address (`"127.0.0.1:0"` for an ephemeral port).
    pub udp_bind: String,
    /// TCP bind address. `None` (the default) reuses the bound UDP
    /// socket's address, so `dig` reaches both transports on one port
    /// even when the UDP port was ephemeral.
    pub tcp_bind: Option<String>,
    /// Number of UDP shard worker threads, each owning a cloned socket
    /// handle, a private L1 cache tier, and its own receive loop.
    pub workers: usize,
    /// Server-side cap on UDP response payloads, bytes. The effective
    /// limit per response is `min(client's EDNS advertisement, this)`;
    /// larger responses are truncated to TC=1 so the client retries
    /// over TCP. Values below 512 are permitted (handy for forcing the
    /// truncation path in tests) even though RFC 6891 clients never
    /// advertise less.
    pub udp_payload_max: u16,
    /// Upper bound of datagrams a worker drains per wakeup: after one
    /// blocking receive it opportunistically collects up to this many
    /// requests non-blocking, answers them all, then sends the replies
    /// back-to-back (batched receive/send without platform-specific
    /// `recvmmsg`).
    pub udp_batch: usize,
    /// Maximum simultaneously-open TCP connections; further accepts are
    /// closed immediately and counted as refused.
    pub tcp_conn_cap: usize,
    /// How long a TCP connection may sit idle (no complete request
    /// frame) before the server closes it.
    pub tcp_read_timeout: Duration,
    /// How long [`shutdown`](crate::ServerHandle::shutdown) waits for
    /// in-flight TCP connections to finish before abandoning them.
    pub drain_deadline: Duration,
    /// When set, a background thread exports a
    /// [`ServerMetricsSnapshot`](ede_trace::ServerMetricsSnapshot) JSON
    /// document (with qps computed over the interval) to the attached
    /// [`SnapshotSink`](ede_trace::SnapshotSink)s at this cadence. No
    /// exporter thread runs when `None`.
    pub snapshot_cadence: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4);
        ServerConfig {
            udp_bind: "127.0.0.1:0".to_string(),
            tcp_bind: None,
            workers,
            udp_payload_max: 1232,
            udp_batch: 16,
            tcp_conn_cap: 64,
            tcp_read_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(3),
            snapshot_cadence: None,
        }
    }
}

impl ServerConfig {
    /// Start a fluent builder from the defaults.
    ///
    /// ```
    /// use ede_server::ServerConfig;
    /// use std::time::Duration;
    ///
    /// let config = ServerConfig::builder()
    ///     .bind("127.0.0.1:5300")
    ///     .workers(4)
    ///     .udp_payload_max(1232)
    ///     .tcp_conn_cap(128)
    ///     .drain_deadline(Duration::from_secs(1))
    ///     .build();
    /// assert_eq!(config.workers, 4);
    /// ```
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }

    /// Validate invariants the serving loops rely on.
    pub(crate) fn validate(&self) -> Result<(), ServerError> {
        if self.workers == 0 {
            return Err(ServerError::InvalidConfig("workers must be >= 1"));
        }
        if self.udp_batch == 0 {
            return Err(ServerError::InvalidConfig("udp_batch must be >= 1"));
        }
        if self.tcp_conn_cap == 0 {
            return Err(ServerError::InvalidConfig("tcp_conn_cap must be >= 1"));
        }
        Ok(())
    }
}

/// Fluent builder for [`ServerConfig`]; finish with
/// [`build`](ServerConfigBuilder::build).
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Bind both transports at `addr` (the TCP listener reuses the
    /// bound UDP port, so `"127.0.0.1:0"` serves UDP and TCP on one
    /// ephemeral port).
    pub fn bind(mut self, addr: impl Into<String>) -> Self {
        self.config.udp_bind = addr.into();
        self.config.tcp_bind = None;
        self
    }

    /// Bind the UDP transport at `addr` without touching the TCP bind.
    pub fn udp_bind(mut self, addr: impl Into<String>) -> Self {
        self.config.udp_bind = addr.into();
        self
    }

    /// Bind the TCP listener at `addr` instead of mirroring UDP.
    pub fn tcp_bind(mut self, addr: impl Into<String>) -> Self {
        self.config.tcp_bind = Some(addr.into());
        self
    }

    /// Set the UDP shard worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Set the server-side UDP payload cap (bytes).
    pub fn udp_payload_max(mut self, bytes: u16) -> Self {
        self.config.udp_payload_max = bytes;
        self
    }

    /// Set the per-wakeup receive batch bound.
    pub fn udp_batch(mut self, n: usize) -> Self {
        self.config.udp_batch = n;
        self
    }

    /// Set the simultaneous TCP connection cap.
    pub fn tcp_conn_cap(mut self, n: usize) -> Self {
        self.config.tcp_conn_cap = n;
        self
    }

    /// Set the TCP idle read deadline.
    pub fn tcp_read_timeout(mut self, timeout: Duration) -> Self {
        self.config.tcp_read_timeout = timeout;
        self
    }

    /// Set the shutdown drain deadline.
    pub fn drain_deadline(mut self, deadline: Duration) -> Self {
        self.config.drain_deadline = deadline;
        self
    }

    /// Export runtime stats snapshots at this cadence (see
    /// [`ServerConfig::snapshot_cadence`]).
    pub fn snapshot_cadence(mut self, cadence: Option<Duration>) -> Self {
        self.config.snapshot_cadence = cadence;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.udp_payload_max, 1232);
        assert!(c.udp_batch >= 1);
        assert!(c.tcp_conn_cap >= 1);
        assert!(c.tcp_bind.is_none());
        assert!(c.snapshot_cadence.is_none());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let c = ServerConfig::builder()
            .bind("127.0.0.1:5300")
            .tcp_bind("127.0.0.1:5301")
            .workers(7)
            .udp_payload_max(512)
            .udp_batch(32)
            .tcp_conn_cap(9)
            .tcp_read_timeout(Duration::from_millis(750))
            .drain_deadline(Duration::from_millis(250))
            .snapshot_cadence(Some(Duration::from_secs(1)))
            .build();
        assert_eq!(c.udp_bind, "127.0.0.1:5300");
        assert_eq!(c.tcp_bind.as_deref(), Some("127.0.0.1:5301"));
        assert_eq!(c.workers, 7);
        assert_eq!(c.udp_payload_max, 512);
        assert_eq!(c.udp_batch, 32);
        assert_eq!(c.tcp_conn_cap, 9);
        assert_eq!(c.tcp_read_timeout, Duration::from_millis(750));
        assert_eq!(c.drain_deadline, Duration::from_millis(250));
        assert_eq!(c.snapshot_cadence, Some(Duration::from_secs(1)));
    }

    #[test]
    fn zero_workers_rejected() {
        let c = ServerConfig::builder().workers(0).build();
        assert!(matches!(c.validate(), Err(ServerError::InvalidConfig(_))));
    }

    #[test]
    fn error_display_names_the_layer() {
        let bind = ServerError::Bind {
            addr: "127.0.0.1:53".into(),
            source: io::Error::from(io::ErrorKind::PermissionDenied),
        };
        assert!(bind.to_string().contains("cannot bind 127.0.0.1:53"));
        assert!(ServerError::from(WireError::BadCount)
            .to_string()
            .contains("wire codec"));
        assert!(std::error::Error::source(&bind).is_some());
    }
}
