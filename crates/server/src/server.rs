//! The server core: socket setup, worker lifecycle, and the owner's
//! handle.
//!
//! [`Server::spawn`] binds real OS sockets, starts the UDP shard
//! workers and the TCP acceptor, and returns a [`ServerHandle`]. The
//! handle is the only way to interact with a running server: read the
//! bound addresses (ephemeral ports resolve here), sample live
//! [`ServerStats`], and perform the graceful shutdown — raise the stop
//! flag, join the workers, and wait out the connection drain.

use crate::config::{ServerConfig, ServerError};
use crate::{tcp, udp};
use ede_resolver::Resolver;
use ede_trace::{ServerMetrics, ServerMetricsSnapshot, SnapshotSink};
use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared by every worker, acceptor, and connection thread.
pub(crate) struct Shared {
    pub(crate) resolver: Resolver,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) stop: AtomicBool,
    pub(crate) active_conns: AtomicUsize,
    pub(crate) config: ServerConfig,
}

/// The serving front end. A `Server` is not held after start — spawning
/// consumes the configuration and hands back a [`ServerHandle`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Bind sockets and start serving `resolver` per `config`.
    ///
    /// The resolver is moved in and shared across all workers (it is
    /// thread-safe; per-worker L1 cache tiers come on top). Returns the
    /// handle once every thread is running and both transports are
    /// reachable.
    pub fn spawn(resolver: Resolver, config: ServerConfig) -> Result<ServerHandle, ServerError> {
        Server::spawn_inner(resolver, config, Vec::new())
    }

    /// [`spawn`](Server::spawn), additionally streaming periodic
    /// [`ServerMetricsSnapshot`] JSON documents (with a qps gauge
    /// computed over each interval) into `sinks`. Requires
    /// [`snapshot_cadence`](ServerConfig::snapshot_cadence) to be set;
    /// without it the sinks are held but never fed.
    pub fn spawn_with_sinks(
        resolver: Resolver,
        config: ServerConfig,
        sinks: Vec<Arc<dyn SnapshotSink>>,
    ) -> Result<ServerHandle, ServerError> {
        Server::spawn_inner(resolver, config, sinks)
    }

    fn spawn_inner(
        resolver: Resolver,
        config: ServerConfig,
        sinks: Vec<Arc<dyn SnapshotSink>>,
    ) -> Result<ServerHandle, ServerError> {
        config.validate()?;

        let udp = UdpSocket::bind(&config.udp_bind).map_err(|source| ServerError::Bind {
            addr: config.udp_bind.clone(),
            source,
        })?;
        let udp_addr = udp.local_addr()?;
        // No explicit TCP bind → mirror the *bound* UDP address, so an
        // ephemeral UDP port yields both transports on the same port
        // (what a stub resolver doing TC=1 → TCP retry expects).
        let tcp_bind = config
            .tcp_bind
            .clone()
            .unwrap_or_else(|| udp_addr.to_string());
        let listener = TcpListener::bind(&tcp_bind).map_err(|source| ServerError::Bind {
            addr: tcp_bind.clone(),
            source,
        })?;
        let tcp_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            resolver,
            metrics: Arc::new(ServerMetrics::new()),
            stop: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            config,
        });

        let mut threads = Vec::with_capacity(shared.config.workers + 2);
        for w in 0..shared.config.workers {
            let socket = udp.try_clone()?;
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ede-udp-{w}"))
                    .spawn(move || udp::run_udp_worker(&shared, &socket))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ede-tcp-accept".to_string())
                    .spawn(move || tcp::run_acceptor(shared, listener))?,
            );
        }
        if let Some(cadence) = shared.config.snapshot_cadence {
            if !sinks.is_empty() {
                let shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name("ede-stats-export".to_string())
                        .spawn(move || run_exporter(&shared, cadence, &sinks))?,
                );
            }
        }

        Ok(ServerHandle {
            udp_addr,
            tcp_addr,
            started: Instant::now(),
            shared,
            threads,
        })
    }
}

/// Periodically export a stats snapshot with a qps gauge computed over
/// the cadence interval.
fn run_exporter(shared: &Shared, cadence: Duration, sinks: &[Arc<dyn SnapshotSink>]) {
    let started = Instant::now();
    let mut seq: u64 = 0;
    let mut last_queries: u64 = 0;
    let mut last_tick = Instant::now();
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(cadence.min(Duration::from_millis(50)));
        if last_tick.elapsed() < cadence {
            continue;
        }
        let snapshot = shared.metrics.snapshot();
        let queries = snapshot.queries();
        let interval = last_tick.elapsed().as_secs_f64().max(1e-9);
        let qps = (queries - last_queries) as f64 / interval;
        last_queries = queries;
        last_tick = Instant::now();
        seq += 1;
        let json = snapshot.to_json_with(&[("qps", format!("{qps:.1}"))]);
        let vtime_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
        for sink in sinks {
            sink.export_snapshot(seq, vtime_ms, &json);
        }
    }
}

/// Owner's handle to a running server.
///
/// Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) aborts: the stop flag is raised
/// and threads are detached (not joined) — fine for tests, rude for
/// clients mid-request. Call `shutdown` for the graceful drain.
pub struct ServerHandle {
    udp_addr: SocketAddr,
    tcp_addr: SocketAddr,
    started: Instant,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound UDP address (ephemeral ports resolved).
    pub fn udp_addr(&self) -> SocketAddr {
        self.udp_addr
    }

    /// The bound TCP address.
    pub fn tcp_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Sample current serving statistics without stopping anything.
    pub fn stats(&self) -> ServerStats {
        self.build_stats(None)
    }

    /// Raise the stop flag without waiting. Workers finish their
    /// current batch/request and exit; use
    /// [`shutdown`](ServerHandle::shutdown) to also join and drain.
    pub fn trigger_shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Gracefully stop: raise the stop flag, join every worker and the
    /// acceptor, then wait up to the configured drain deadline for
    /// in-flight TCP connections to finish. Returns the final stats;
    /// [`ServerStats::drained`] reports whether every connection closed
    /// inside the deadline.
    pub fn shutdown(mut self) -> Result<ServerStats, ServerError> {
        self.trigger_shutdown();
        for t in self.threads.drain(..) {
            // A panicked worker is already reflected in the metrics gap;
            // joining the rest still matters more than propagating it.
            let _ = t.join();
        }
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while self.shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = self.shared.active_conns.load(Ordering::Acquire) == 0;
        Ok(self.build_stats(Some(drained)))
    }

    fn build_stats(&self, drained: Option<bool>) -> ServerStats {
        ServerStats {
            udp_addr: self.udp_addr,
            tcp_addr: self.tcp_addr,
            workers: self.shared.config.workers,
            uptime: self.started.elapsed(),
            active_tcp_conns: self.shared.active_conns.load(Ordering::Acquire),
            drained: drained.unwrap_or(true),
            metrics: self.shared.metrics.snapshot(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.trigger_shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("udp_addr", &self.udp_addr)
            .field("tcp_addr", &self.tcp_addr)
            .field("workers", &self.shared.config.workers)
            .finish_non_exhaustive()
    }
}

/// A point-in-time view of a server: identity, gauges, and the full
/// metrics snapshot.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServerStats {
    /// Bound UDP address.
    pub udp_addr: SocketAddr,
    /// Bound TCP address.
    pub tcp_addr: SocketAddr,
    /// Configured UDP shard worker count.
    pub workers: usize,
    /// Time since [`Server::spawn`] returned.
    pub uptime: Duration,
    /// TCP connections currently open.
    pub active_tcp_conns: usize,
    /// After [`shutdown`](ServerHandle::shutdown): whether every
    /// connection closed inside the drain deadline. `true` on live
    /// samples.
    pub drained: bool,
    /// Counters and latency histogram.
    pub metrics: ServerMetricsSnapshot,
}

impl ServerStats {
    /// Render as an operator-facing summary block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ede-server on udp {} / tcp {} — {} workers, up {:.1}s, {} open conns{}\n",
            self.udp_addr,
            self.tcp_addr,
            self.workers,
            self.uptime.as_secs_f64(),
            self.active_tcp_conns,
            if self.drained {
                ""
            } else {
                " (DRAIN TIMED OUT)"
            },
        );
        out.push_str(&self.metrics.render());
        out
    }

    /// Serialize as one JSON object line, embedding the metrics
    /// document's fields plus identity/gauge extras.
    pub fn to_json(&self) -> String {
        self.metrics.to_json_with(&[
            ("udp_addr", format!("\"{}\"", self.udp_addr)),
            ("tcp_addr", format!("\"{}\"", self.tcp_addr)),
            ("workers", self.workers.to_string()),
            ("uptime_ms", self.uptime.as_millis().to_string()),
            ("active_tcp_conns", self.active_tcp_conns.to_string()),
            ("drained", self.drained.to_string()),
        ])
    }
}
