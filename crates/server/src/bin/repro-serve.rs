//! `repro-serve` — serve the extended-dns-errors testbed to real DNS
//! clients.
//!
//! Foreground mode binds `127.0.0.1:5300` (UDP and TCP), prints a
//! `dig` quick-start, and reports stats once per second until killed:
//!
//! ```text
//! repro-serve [--bind ADDR] [--vendor NAME] [--workers N]
//! ```
//!
//! `--smoke` runs the CI serving smoke instead: spawn on an ephemeral
//! port, hammer it from concurrent loopback clients across a mix of
//! testbed labels, assert zero errors and nonzero EDE answers, exercise
//! the TC=1 → TCP retry bit-identity contract on a second
//! small-payload server, then drain gracefully. Exits nonzero on any
//! failure.

use ede_resolver::{Resolver, Vendor};
use ede_server::{pipeline, ProbeClient, Server, ServerConfig, ServerHandle};
use ede_testbed::Testbed;
use ede_wire::{Message, Name, RrType};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Testbed labels the smoke mixes: one clean domain plus a spread of
/// misconfigurations that light up distinct RFC 8914 codes.
const SMOKE_LABELS: [&str; 6] = [
    "valid",
    "rrsig-exp-all",
    "no-ds",
    "bad-zsk",
    "nsec3-missing",
    "rrsig-no-all",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--smoke" || a == "--serve-smoke") {
        return match smoke() {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve smoke FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match foreground(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    let vendors: Vec<&str> = Vendor::ALL.iter().map(|v| v.name()).collect();
    format!(
        "repro-serve — serve the extended-dns-errors testbed over UDP+TCP\n\
         \n\
         USAGE:\n\
         \x20 repro-serve [--bind ADDR] [--vendor NAME] [--workers N]\n\
         \x20 repro-serve --smoke\n\
         \n\
         OPTIONS:\n\
         \x20 --bind ADDR     bind address for both transports (default 127.0.0.1:5300)\n\
         \x20 --vendor NAME   EDE emission profile: {}\n\
         \x20 --workers N     UDP shard worker threads (default: CPU count, max 4)\n\
         \x20 --smoke         run the CI serving smoke on an ephemeral port and exit\n",
        vendors.join(", ")
    )
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_vendor(name: &str) -> Result<Vendor, String> {
    Vendor::ALL
        .into_iter()
        .find(|v| v.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let known: Vec<&str> = Vendor::ALL.iter().map(|v| v.name()).collect();
            format!("unknown vendor {name:?}; known: {}", known.join(", "))
        })
}

fn foreground(args: &[String]) -> Result<(), String> {
    let bind = flag_value(args, "--bind").unwrap_or("127.0.0.1:5300");
    let vendor = match flag_value(args, "--vendor") {
        Some(name) => parse_vendor(name)?,
        None => Vendor::Cloudflare,
    };
    let mut builder = ServerConfig::builder()
        .bind(bind)
        .snapshot_cadence(Some(Duration::from_secs(1)));
    if let Some(n) = flag_value(args, "--workers") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("bad --workers value {n:?}"))?;
        builder = builder.workers(n);
    }

    eprintln!(
        "building testbed ({} zones)...",
        ede_testbed::all_specs().len()
    );
    let tb = Testbed::build();
    let handle = Server::spawn(tb.resolver(vendor), builder.build())
        .map_err(|e| format!("cannot start server: {e}"))?;

    let udp = handle.udp_addr();
    println!(
        "serving testbed as {} on udp {udp} / tcp {}",
        vendor.name(),
        handle.tcp_addr()
    );
    println!("try:");
    println!(
        "  dig @{} -p {} valid.extended-dns-errors.com A",
        udp.ip(),
        udp.port()
    );
    println!(
        "  dig @{} -p {} rrsig-exp-all.extended-dns-errors.com A   # SERVFAIL + EDE 7",
        udp.ip(),
        udp.port()
    );
    println!(
        "  dig @{} -p {} +tcp no-ds.extended-dns-errors.com A",
        udp.ip(),
        udp.port()
    );
    println!("(ctrl-c to stop)");

    let mut last_queries = 0;
    loop {
        std::thread::sleep(Duration::from_secs(5));
        let stats = handle.stats();
        let queries = stats.metrics.queries();
        if queries != last_queries {
            last_queries = queries;
            print!("{}", stats.render());
        }
    }
}

/// Spawn a server and return it with a ready client.
fn spawn_pair(
    resolver: Resolver,
    config: ServerConfig,
) -> Result<(ServerHandle, ProbeClient), String> {
    let handle = Server::spawn(resolver, config).map_err(|e| format!("spawn failed: {e}"))?;
    let client = ProbeClient::connect(handle.udp_addr(), handle.tcp_addr())
        .map_err(|e| format!("client connect failed: {e}"))?;
    Ok((handle, client))
}

fn smoke() -> Result<String, String> {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 100;

    let tb = Testbed::build();

    // Leg 1: concurrent mixed-label load, zero tolerance for errors.
    let (handle, _) = spawn_pair(
        tb.resolver(Vendor::Cloudflare),
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(2)
            .drain_deadline(Duration::from_secs(2))
            .build(),
    )?;
    let udp_addr = handle.udp_addr();
    let tcp_addr = handle.tcp_addr();
    let ede_answers = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let ede_answers = Arc::clone(&ede_answers);
        joins.push(std::thread::spawn(move || -> Result<(), String> {
            let client = ProbeClient::connect(udp_addr, tcp_addr)
                .map_err(|e| format!("client {c}: connect: {e}"))?;
            for i in 0..QUERIES_PER_CLIENT {
                let label = SMOKE_LABELS[(c + i) % SMOKE_LABELS.len()];
                let qname = Name::parse(&format!("{label}.extended-dns-errors.com"))
                    .map_err(|e| format!("client {c}: bad name: {e}"))?;
                let id = (c * QUERIES_PER_CLIENT + i) as u16;
                let query = Message::query(id, qname, RrType::A);
                let exchange = client
                    .query(&query)
                    .map_err(|e| format!("client {c} query {i} ({label}): {e}"))?;
                if exchange.response.id != id {
                    return Err(format!("client {c}: id mismatch on {label}"));
                }
                if !exchange.response.ede_codes().is_empty() {
                    ede_answers.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        }));
    }
    for join in joins {
        join.join()
            .map_err(|_| "smoke client panicked".to_string())??;
    }
    let stats = handle.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    let expected = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    if stats.metrics.queries() < expected {
        return Err(format!(
            "server saw {} queries, clients sent {expected}",
            stats.metrics.queries()
        ));
    }
    if stats.metrics.encode_errors != 0 || stats.metrics.dropped != 0 {
        return Err(format!(
            "unexpected server-side errors: {} encode, {} dropped",
            stats.metrics.encode_errors, stats.metrics.dropped
        ));
    }
    let ede_answers = ede_answers.load(Ordering::Relaxed);
    if ede_answers == 0 {
        return Err("no EDE codes observed on the wire".to_string());
    }
    if !stats.drained {
        return Err("drain deadline exceeded".to_string());
    }

    // Leg 2: TC=1 → TCP retry must be bit-identical to the untruncated
    // answer. A sub-512 payload cap forces truncation of every testbed
    // answer.
    let resolver = tb.resolver(Vendor::Cloudflare);
    let expected_full = {
        let qname = Name::parse("valid.extended-dns-errors.com").unwrap();
        let query = Message::query(0x7C01, qname, RrType::A);
        let reply = pipeline::answer(&resolver, None, &query);
        (query, reply.encode().map_err(|e| format!("encode: {e}"))?)
    };
    let (handle, client) = spawn_pair(
        resolver,
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(1)
            .udp_payload_max(96)
            .build(),
    )?;
    let exchange = client
        .query(&expected_full.0)
        .map_err(|e| format!("TC leg: {e}"))?;
    if !exchange.retried_over_tcp {
        return Err("TC leg: UDP answer was not truncated".to_string());
    }
    if exchange.response_wire != expected_full.1 {
        return Err("TC leg: TCP retry bytes differ from the untruncated answer".to_string());
    }
    let tc_stats = handle.shutdown().map_err(|e| format!("TC shutdown: {e}"))?;
    if tc_stats.metrics.udp_truncated != 1 || tc_stats.metrics.tcp_responses != 1 {
        return Err(format!(
            "TC leg counters off: {} truncated, {} tcp responses",
            tc_stats.metrics.udp_truncated, tc_stats.metrics.tcp_responses
        ));
    }

    Ok(format!(
        "serve smoke OK: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, {ede_answers} EDE answers, \
         TC=1 retry bit-identical over TCP\n{}",
        stats.render()
    ))
}
