//! The transport-independent request pipeline.
//!
//! Every front end — UDP shard workers, TCP connection handlers, the
//! deprecated single-threaded `UdpFrontend` shim in the facade crate —
//! funnels raw request bytes through the same three steps:
//!
//! 1. [`classify`] decides what the bytes are: a resolvable query, a
//!    protocol violation answered with FORMERR/NOTIMP/REFUSED, or
//!    garbage that is silently dropped. The policy is explicit (and
//!    tested) rather than the historical demo behaviour of answering
//!    FORMERR to anything:
//!
//!    | Input | Disposition |
//!    |---|---|
//!    | shorter than a 12-byte DNS header | **drop** (no ID to echo — any reply would be a forgery oracle) |
//!    | QR bit set (a response, not a query) | **drop** (never answer answers: reflection-loop hygiene) |
//!    | opcode ≠ QUERY (IQUERY, STATUS, NOTIFY, UPDATE …) | **NOTIMP**, echoing ID and opcode |
//!    | header valid but body undecodable / no question | **FORMERR**, echoing ID, opcode and RD |
//!    | question class ≠ IN | **REFUSED**, echoing the question |
//!    | otherwise | resolve |
//!
//! 2. [`answer`] resolves the query through the attached [`Resolver`]
//!    (full recursion, validation, vendor EDE emission) and renders the
//!    response, honoring EDNS presence: a client that sent no OPT
//!    record gets none back (and therefore no EDE options — RFC 8914
//!    signals require EDNS).
//! 3. [`encode_udp`] encodes for the datagram transport, truncating to
//!    TC=1 when the response exceeds the negotiated payload limit so
//!    the client retries over TCP. Stream transports encode directly —
//!    a TCP answer is never truncated, which is what makes the TC=1 →
//!    TCP retry bit-identical to the untruncated message.

use ede_resolver::{L1Cache, Resolver};
use ede_wire::{Class, Header, Message, Opcode, Rcode, WireError};

/// Why a datagram was dropped without any reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Fewer than 12 bytes: no complete header, so no ID to echo.
    TooShort,
    /// The QR bit was set — this is a response, and answering responses
    /// builds reflection loops.
    UnexpectedResponse,
}

/// Which rejection RCODE a malformed query earned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Undecodable body or empty question section.
    FormErr,
    /// An opcode this server does not implement.
    NotImp,
    /// A question outside the served class (IN).
    Refused,
}

/// What [`classify`] decided about one request's bytes.
#[derive(Debug)]
pub enum QueryDisposition {
    /// A well-formed IN-class QUERY: resolve it.
    Resolve(Box<Message>),
    /// A protocol violation with enough structure to answer: send the
    /// pre-built rejection.
    Reject(Box<Message>, RejectKind),
    /// Not answerable at all.
    Drop(DropReason),
}

/// Build a minimal rejection echoing what the request gave us.
fn reject(header: &Header, rcode: Rcode) -> Message {
    Message {
        id: header.id,
        response: true,
        opcode: header.opcode,
        recursion_desired: header.recursion_desired,
        recursion_available: true,
        rcode,
        ..Default::default()
    }
}

/// Classify one request's raw bytes (see the module table for the
/// policy).
pub fn classify(wire: &[u8]) -> QueryDisposition {
    if wire.len() < Header::LEN {
        return QueryDisposition::Drop(DropReason::TooShort);
    }
    let header = match Header::decode(wire) {
        Ok(h) => h,
        Err(_) => return QueryDisposition::Drop(DropReason::TooShort),
    };
    if header.response {
        return QueryDisposition::Drop(DropReason::UnexpectedResponse);
    }
    if header.opcode != Opcode::Query {
        return QueryDisposition::Reject(
            Box::new(reject(&header, Rcode::NotImp)),
            RejectKind::NotImp,
        );
    }
    let query = match Message::decode(wire) {
        Ok(q) => q,
        Err(_) => {
            return QueryDisposition::Reject(
                Box::new(reject(&header, Rcode::FormErr)),
                RejectKind::FormErr,
            )
        }
    };
    let Some(q) = query.first_question() else {
        let mut m = reject(&header, Rcode::FormErr);
        m.edns = query.edns.as_ref().map(|_| Default::default());
        return QueryDisposition::Reject(Box::new(m), RejectKind::FormErr);
    };
    if q.qclass != Class::In {
        let mut m = reject(&header, Rcode::Refused);
        m.questions = query.questions.clone();
        m.edns = query.edns.as_ref().map(|_| Default::default());
        return QueryDisposition::Reject(Box::new(m), RejectKind::Refused);
    }
    QueryDisposition::Resolve(Box::new(query))
}

/// Resolve a classified query and render the wire response.
///
/// `l1` is the calling worker's private cache tier (UDP shard workers
/// each own one); pass `None` to resolve against the shared tiers only
/// (the TCP path and one-shot callers do).
pub fn answer(resolver: &Resolver, l1: Option<&L1Cache>, query: &Message) -> Message {
    let q = query
        .first_question()
        .expect("classify() only yields Resolve for messages with a question");
    let resolution = match l1 {
        Some(l1) => resolver.resolve_l1(&q.name, q.qtype, l1),
        None => resolver.resolve(&q.name, q.qtype),
    };
    let mut resp = resolution.to_message(query);
    if query.edns.is_none() {
        // RFC 6891: never volunteer an OPT record (or EDE options riding
        // on it) to a client that did not signal EDNS support.
        resp.edns = None;
    }
    resp
}

/// Encode `reply` for the UDP transport, truncating when it exceeds the
/// negotiated payload limit.
///
/// The limit is `min(client's EDNS advertisement floored at 512,
/// server-side cap)`; over-limit responses become a TC=1 copy carrying
/// header, question and OPT only (partial sections must never be
/// consumed). Returns the bytes to send and whether they carry TC=1.
pub fn encode_udp(
    reply: &Message,
    query: &Message,
    udp_payload_max: u16,
) -> Result<(Vec<u8>, bool), WireError> {
    let wire = reply.encode()?;
    let limit = usize::from(query.advertised_payload_size().min(udp_payload_max));
    if wire.len() <= limit {
        Ok((wire, false))
    } else {
        Ok((reply.truncated_copy().encode()?, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_resolver::Vendor;
    use ede_testbed::Testbed;
    use ede_wire::{Edns, Name, Question, RrType};

    fn query_bytes(mutate: impl FnOnce(&mut Message)) -> Vec<u8> {
        let mut m = Message::query(
            0x1234,
            Name::parse("valid.extended-dns-errors.com").unwrap(),
            RrType::A,
        );
        mutate(&mut m);
        m.encode().unwrap()
    }

    #[test]
    fn too_short_is_dropped() {
        assert!(matches!(
            classify(&[0xAB, 0xCD, 0xFF]),
            QueryDisposition::Drop(DropReason::TooShort)
        ));
        assert!(matches!(
            classify(&[]),
            QueryDisposition::Drop(DropReason::TooShort)
        ));
    }

    #[test]
    fn responses_are_dropped_not_answered() {
        let wire = query_bytes(|m| m.response = true);
        assert!(matches!(
            classify(&wire),
            QueryDisposition::Drop(DropReason::UnexpectedResponse)
        ));
    }

    #[test]
    fn unknown_opcode_gets_notimp_with_echoed_identity() {
        let wire = query_bytes(|m| m.opcode = Opcode::Status);
        match classify(&wire) {
            QueryDisposition::Reject(m, RejectKind::NotImp) => {
                assert_eq!(m.id, 0x1234);
                assert_eq!(m.opcode, Opcode::Status);
                assert_eq!(m.rcode, Rcode::NotImp);
                assert!(m.response && m.recursion_available);
            }
            other => panic!("expected NOTIMP, got {other:?}"),
        }
    }

    #[test]
    fn undecodable_body_gets_formerr_with_echoed_id() {
        // Valid header claiming one question, followed by garbage.
        let mut wire = query_bytes(|_| {});
        wire.truncate(14); // cut mid-question
        match classify(&wire) {
            QueryDisposition::Reject(m, RejectKind::FormErr) => {
                assert_eq!(m.id, 0x1234);
                assert_eq!(m.rcode, Rcode::FormErr);
                assert!(m.questions.is_empty());
            }
            other => panic!("expected FORMERR, got {other:?}"),
        }
    }

    #[test]
    fn empty_question_section_gets_formerr() {
        let mut m = Message {
            id: 7,
            recursion_desired: true,
            edns: Some(Edns::with_do()),
            ..Default::default()
        };
        m.response = false;
        let wire = m.encode().unwrap();
        match classify(&wire) {
            QueryDisposition::Reject(r, RejectKind::FormErr) => {
                assert_eq!(r.id, 7);
                assert!(r.edns.is_some(), "EDNS presence echoed");
            }
            other => panic!("expected FORMERR, got {other:?}"),
        }
    }

    #[test]
    fn non_in_class_gets_refused_with_question_echoed() {
        let wire = query_bytes(|m| m.questions[0].qclass = Class::Ch);
        match classify(&wire) {
            QueryDisposition::Reject(m, RejectKind::Refused) => {
                assert_eq!(m.rcode, Rcode::Refused);
                assert_eq!(m.questions.len(), 1);
                assert_eq!(m.questions[0].qclass, Class::Ch);
            }
            other => panic!("expected REFUSED, got {other:?}"),
        }
    }

    #[test]
    fn well_formed_query_resolves() {
        let wire = query_bytes(|_| {});
        assert!(matches!(classify(&wire), QueryDisposition::Resolve(_)));
    }

    #[test]
    fn answer_honors_edns_absence() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Cloudflare);
        let qname = Name::parse("rrsig-exp-all.extended-dns-errors.com").unwrap();

        let with_edns = Message::query(1, qname.clone(), RrType::A);
        let resp = answer(&resolver, None, &with_edns);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert!(!resp.ede_codes().is_empty(), "EDE rides on the OPT record");

        let plain = Message {
            id: 2,
            recursion_desired: true,
            questions: vec![Question::new(qname, RrType::A)],
            ..Default::default()
        };
        let resp = answer(&resolver, None, &plain);
        assert_eq!(resp.rcode, Rcode::ServFail);
        assert!(resp.edns.is_none(), "no OPT for a non-EDNS client");
        assert!(resp.ede_codes().is_empty());
    }

    #[test]
    fn encode_udp_truncates_past_the_limit() {
        let tb = Testbed::build();
        let resolver = tb.resolver(Vendor::Cloudflare);
        let qname = Name::parse("valid.extended-dns-errors.com").unwrap();
        let query = Message::query(9, qname, RrType::A);
        let reply = answer(&resolver, None, &query);

        let (full, tc) = encode_udp(&reply, &query, 1232).unwrap();
        assert!(!tc);
        assert_eq!(full, reply.encode().unwrap());

        // A tiny server-side cap forces the truncation path.
        let (short, tc) = encode_udp(&reply, &query, 64).unwrap();
        assert!(tc);
        assert!(short.len() < full.len());
        let decoded = Message::decode(&short).unwrap();
        assert!(decoded.truncated);
        assert!(decoded.answers.is_empty());
        assert_eq!(decoded.questions, query.questions);
    }
}
