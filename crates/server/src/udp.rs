//! UDP shard workers: the datagram receive/answer/send loop.
//!
//! Each worker owns a cloned handle of the one bound socket — blocked
//! receivers on the same socket are load-balanced by the kernel, which
//! gives SO_REUSEPORT-style sharding with nothing but `try_clone()` —
//! plus a private [`L1Cache`] tier, so the hot path never contends on a
//! lock for cached answers.
//!
//! Batching without `recvmmsg`: a worker blocks (with a short timeout so
//! it can observe the stop flag) until one datagram arrives, then flips
//! the socket non-blocking and drains up to `udp_batch - 1` more before
//! answering the whole batch and sending the replies back-to-back. Under
//! load this amortizes the mode flips across many datagrams; when idle
//! it degrades to plain blocking receive.

use crate::pipeline::{self, QueryDisposition, RejectKind};
use crate::server::Shared;
use ede_resolver::L1Cache;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Largest datagram a client can send us; EDNS advertisements beyond
/// this are legal but nothing in the testbed produces queries near it.
const RECV_BUF: usize = 4096;

/// How long a blocking receive waits before re-checking the stop flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// One received datagram waiting for its answer.
struct Pending {
    wire: Vec<u8>,
    peer: SocketAddr,
    started: Instant,
}

/// Drive one shard worker until the stop flag is raised. Any socket
/// error other than a timeout ends the loop (the handle surfaces
/// nothing; the remaining shards keep serving).
pub(crate) fn run_udp_worker(shared: &Shared, socket: &UdpSocket) {
    let l1 = L1Cache::new();
    if socket.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let mut buf = [0u8; RECV_BUF];
    let mut batch: Vec<Pending> = Vec::with_capacity(shared.config.udp_batch);

    while !shared.stop.load(Ordering::Acquire) {
        batch.clear();
        // Block (bounded by POLL_TICK) for the first datagram.
        match socket.recv_from(&mut buf) {
            Ok((n, peer)) => batch.push(Pending {
                wire: buf[..n].to_vec(),
                peer,
                started: Instant::now(),
            }),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => break,
        }
        // Opportunistically drain more without blocking.
        if shared.config.udp_batch > 1 && socket.set_nonblocking(true).is_ok() {
            while batch.len() < shared.config.udp_batch {
                match socket.recv_from(&mut buf) {
                    Ok((n, peer)) => batch.push(Pending {
                        wire: buf[..n].to_vec(),
                        peer,
                        started: Instant::now(),
                    }),
                    Err(_) => break,
                }
            }
            if socket.set_nonblocking(false).is_err()
                || socket.set_read_timeout(Some(POLL_TICK)).is_err()
            {
                break;
            }
        }
        for pending in &batch {
            serve_datagram(shared, socket, &l1, pending);
        }
    }
}

/// Answer one datagram end-to-end, recording every metrics decision.
fn serve_datagram(shared: &Shared, socket: &UdpSocket, l1: &L1Cache, pending: &Pending) {
    let metrics = &shared.metrics;
    metrics.udp_query(pending.wire.len());
    match pipeline::classify(&pending.wire) {
        QueryDisposition::Drop(_) => {
            metrics.dropped();
        }
        QueryDisposition::Reject(reply, kind) => {
            match kind {
                RejectKind::FormErr => metrics.rejected_formerr(),
                RejectKind::NotImp => metrics.rejected_notimp(),
                RejectKind::Refused => metrics.rejected_refused(),
            }
            match reply.encode() {
                Ok(wire) => {
                    if socket.send_to(&wire, pending.peer).is_ok() {
                        metrics.udp_response(wire.len(), false);
                    }
                }
                Err(_) => metrics.encode_error(),
            }
        }
        QueryDisposition::Resolve(query) => {
            let reply = pipeline::answer(&shared.resolver, Some(l1), &query);
            match pipeline::encode_udp(&reply, &query, shared.config.udp_payload_max) {
                Ok((wire, truncated)) => {
                    if socket.send_to(&wire, pending.peer).is_ok() {
                        metrics.udp_response(wire.len(), truncated);
                        metrics.observe_handle_us(elapsed_us(pending.started));
                    }
                }
                Err(_) => metrics.encode_error(),
            }
        }
    }
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}
