//! `ede-server` — the concurrent serving front end: the simulated
//! extended-dns-errors world, reachable by real DNS clients over real
//! OS sockets.
//!
//! Everything below this crate is sans-IO and deterministic (`ede-wire`
//! codecs, `ede-netsim` virtual transport, `ede-resolver` engines, the
//! `ede-testbed` misconfiguration zoo). This crate is the boundary
//! where that world meets the operating system: bind `127.0.0.1:5300`,
//! point `dig` at it, and every testbed label answers with the same
//! RCODEs and RFC 8914 extended DNS errors the in-process scanner sees.
//!
//! # Architecture
//!
//! * **UDP shards** — one bound socket, cloned into N worker threads
//!   that each run a blocking receive loop with opportunistic batch
//!   drain; the kernel load-balances blocked receivers, giving
//!   SO_REUSEPORT-style sharding with std only. Each worker owns a
//!   private L1 cache tier over the shared thread-safe
//!   [`Resolver`](ede_resolver::Resolver).
//! * **TCP path** — a non-blocking acceptor with a connection cap,
//!   detached per-connection handler threads, RFC 1035 §4.2.2
//!   length-prefixed framing via `ede_wire::stream`, and per-connection
//!   idle deadlines.
//! * **One pipeline** — both transports classify, resolve, and encode
//!   through [`pipeline`], so the malformed-query policy (drop vs
//!   FORMERR vs NOTIMP vs REFUSED) and the EDNS/EDE rules are identical
//!   on the wire regardless of transport.
//! * **Truncation contract** — UDP responses honor
//!   `min(client EDNS advertisement, server cap)`; larger answers go
//!   out truncated with TC=1 and the TCP retry returns bytes identical
//!   to the untruncated message.
//! * **Observability** — every transport decision lands in an
//!   `ede_trace::ServerMetrics` registry; an optional exporter thread
//!   streams JSON snapshots (with a qps gauge) into
//!   `ede_trace::SnapshotSink`s.
//!
//! # Quick start
//!
//! ```
//! use ede_server::{ProbeClient, Server, ServerConfig};
//! use ede_resolver::Vendor;
//! use ede_testbed::Testbed;
//! use ede_wire::{Message, Name, RrType};
//!
//! let tb = Testbed::build();
//! let handle = Server::spawn(
//!     tb.resolver(Vendor::Bind9),
//!     ServerConfig::builder().bind("127.0.0.1:0").workers(2).build(),
//! ).unwrap();
//!
//! let client = ProbeClient::connect(handle.udp_addr(), handle.tcp_addr()).unwrap();
//! let query = Message::query(1, Name::parse("valid.extended-dns-errors.com").unwrap(), RrType::A);
//! let exchange = client.query(&query).unwrap();
//! assert!(!exchange.response.answers.is_empty());
//!
//! let stats = handle.shutdown().unwrap();
//! assert_eq!(stats.metrics.udp_queries, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod pipeline;
mod server;
mod tcp;
mod udp;

pub use client::{Exchange, ProbeClient};
pub use config::{ServerConfig, ServerConfigBuilder, ServerError};
pub use pipeline::{DropReason, QueryDisposition, RejectKind};
pub use server::{Server, ServerHandle, ServerStats};
