//! The TCP path: acceptor loop and per-connection handlers.
//!
//! RFC 1035 §4.2.2 framing (two-byte length prefix per message) over
//! plain `TcpStream`s. The acceptor runs non-blocking with a short poll
//! sleep so it can observe the stop flag without `epoll`; each accepted
//! connection gets a detached handler thread, bounded by
//! `tcp_conn_cap` — connections over the cap are closed immediately and
//! counted as refused rather than left to queue.
//!
//! Handlers enforce an idle deadline (`tcp_read_timeout`) by reading in
//! short timeout chunks and tracking time since the last complete
//! frame. On shutdown a handler finishes the request it is parsing (the
//! graceful-drain contract: an in-flight query gets its answer), then
//! closes; [`ServerHandle::shutdown`](crate::ServerHandle::shutdown)
//! polls the live-connection gauge until the drain deadline.

use crate::pipeline::{self, QueryDisposition, RejectKind};
use crate::server::Shared;
use ede_wire::stream::{frame, FrameReader, MAX_FRAME_LEN};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handler read-chunk timeout (bounds how often a handler re-checks
/// the stop flag and its idle deadline; data arriving mid-read returns
/// immediately, so this adds no request latency).
const POLL_TICK: Duration = Duration::from_millis(20);

/// Acceptor poll sleep. Every fresh connection waits for the next poll
/// on average half this long, so it is the floor on TCP connect
/// latency — kept tight, at the cost of ~500 idle wakeups/s on one
/// thread.
const ACCEPT_TICK: Duration = Duration::from_millis(2);

/// Accept connections until the stop flag is raised.
pub(crate) fn run_acceptor(shared: Arc<Shared>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reserve a slot before spawning; release on refusal.
                let occupied = shared.active_conns.fetch_add(1, Ordering::AcqRel);
                if occupied >= shared.config.tcp_conn_cap {
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    shared.metrics.tcp_conn_refused();
                    drop(stream);
                    continue;
                }
                shared.metrics.tcp_conn_accepted();
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("ede-tcp-conn".to_string())
                    .spawn(move || {
                        serve_conn(&conn_shared, stream);
                        conn_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // Thread spawn failed: give the slot back.
                    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(_) => break,
        }
    }
}

/// Serve one connection: framed queries in, framed responses out.
fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new(MAX_FRAME_LEN);
    let mut buf = [0u8; 4096];
    let mut last_activity = Instant::now();

    loop {
        // Drain any already-buffered complete frames first (pipelining).
        while let Some(request) = reader.next_frame() {
            last_activity = Instant::now();
            if !serve_frame(shared, &mut stream, &request) {
                return;
            }
        }
        // Stop only between requests — never abandon a frame we have
        // already started to receive, unless the peer stalls past the
        // drain window.
        if shared.stop.load(Ordering::Acquire)
            && (!reader.has_partial() || last_activity.elapsed() >= shared.config.drain_deadline)
        {
            return;
        }
        if last_activity.elapsed() >= shared.config.tcp_read_timeout {
            shared.metrics.tcp_read_timeout();
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if reader.push(&buf[..n]).is_err() {
                    // Oversized frame claim: protocol violation, close.
                    return;
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answer one framed request. Returns `false` when the connection must
/// close (drop disposition or write failure).
fn serve_frame(shared: &Shared, stream: &mut TcpStream, request: &[u8]) -> bool {
    let metrics = &shared.metrics;
    let started = Instant::now();
    metrics.tcp_query(request.len());
    let reply = match pipeline::classify(request) {
        QueryDisposition::Drop(_) => {
            metrics.dropped();
            return false;
        }
        QueryDisposition::Reject(reply, kind) => {
            match kind {
                RejectKind::FormErr => metrics.rejected_formerr(),
                RejectKind::NotImp => metrics.rejected_notimp(),
                RejectKind::Refused => metrics.rejected_refused(),
            }
            *reply
        }
        // No TC on a stream: the full answer always fits the frame.
        QueryDisposition::Resolve(query) => pipeline::answer(&shared.resolver, None, &query),
    };
    match reply.encode().and_then(|wire| frame(&wire)) {
        Ok(framed) => {
            if stream.write_all(&framed).is_err() {
                return false;
            }
            metrics.tcp_response(framed.len() - 2);
            metrics.observe_handle_us(
                u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
            true
        }
        Err(_) => {
            metrics.encode_error();
            false
        }
    }
}
