//! A minimal loopback client for exercising a running server.
//!
//! `ProbeClient` speaks exactly the stub-resolver subset the
//! integration tests, the smoke harness, and the serving benchmark
//! need: one UDP exchange, one framed TCP exchange, and the composite
//! [`query`](ProbeClient::query) that retries over TCP when the UDP
//! answer came back truncated — reusing the *identical* query bytes, so
//! a TC=1 retry can be compared bit-for-bit against the untruncated
//! response.
//!
//! It is deliberately not a general resolver client (no retries over
//! loss, no 0x20 encoding, no cookies); it exists so tests and benches
//! measure the server, not a client's cleverness.

use crate::config::ServerError;
use ede_wire::stream::{frame, FrameReader, MAX_FRAME_LEN};
use ede_wire::Message;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

/// One completed query exchange.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// The exact query bytes that were sent (both transports reuse
    /// them verbatim).
    pub wire: Vec<u8>,
    /// The decoded final response (the TCP one when a retry happened).
    pub response: Message,
    /// Raw bytes of the final response.
    pub response_wire: Vec<u8>,
    /// Whether the UDP answer carried TC=1 and the exchange was
    /// completed over TCP.
    pub retried_over_tcp: bool,
}

/// Blocking loopback client bound to one server's two transports.
#[derive(Debug)]
pub struct ProbeClient {
    udp: UdpSocket,
    tcp_addr: SocketAddr,
    timeout: Duration,
}

impl ProbeClient {
    /// Connect a client to a server's bound addresses.
    pub fn connect(udp_addr: SocketAddr, tcp_addr: SocketAddr) -> Result<Self, ServerError> {
        let udp = UdpSocket::bind(("127.0.0.1", 0)).map_err(|source| ServerError::Bind {
            addr: "127.0.0.1:0".to_string(),
            source,
        })?;
        udp.connect(udp_addr)?;
        let timeout = Duration::from_secs(5);
        udp.set_read_timeout(Some(timeout))?;
        Ok(ProbeClient {
            udp,
            tcp_addr,
            timeout,
        })
    }

    /// Change the per-exchange timeout (default 5 s).
    pub fn set_timeout(&mut self, timeout: Duration) -> Result<(), ServerError> {
        self.udp.set_read_timeout(Some(timeout))?;
        self.timeout = timeout;
        Ok(())
    }

    /// Send raw query bytes over UDP and return the raw response bytes.
    pub fn query_udp(&self, wire: &[u8]) -> Result<Vec<u8>, ServerError> {
        self.udp.send(wire)?;
        let mut buf = [0u8; 4096];
        let n = self.udp.recv(&mut buf)?;
        Ok(buf[..n].to_vec())
    }

    /// Send raw query bytes over a fresh TCP connection (RFC 1035
    /// framing) and return the raw response bytes.
    pub fn query_tcp(&self, wire: &[u8]) -> Result<Vec<u8>, ServerError> {
        let mut stream = TcpStream::connect_timeout(&self.tcp_addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        let _ = stream.set_nodelay(true);
        stream.write_all(&frame(wire)?)?;
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut buf = [0u8; 4096];
        let deadline = Instant::now() + self.timeout;
        loop {
            if let Some(response) = reader.next_frame() {
                return Ok(response);
            }
            if Instant::now() >= deadline {
                return Err(ServerError::Io(ErrorKind::TimedOut.into()));
            }
            match stream.read(&mut buf) {
                Ok(0) => return Err(ServerError::Io(ErrorKind::UnexpectedEof.into())),
                Ok(n) => reader.push(&buf[..n])?,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServerError::Io(e)),
            }
        }
    }

    /// Full stub-resolver exchange: UDP first, and on a TC=1 answer
    /// retry the identical bytes over TCP.
    pub fn query(&self, query: &Message) -> Result<Exchange, ServerError> {
        let wire = query.encode()?;
        let udp_response = self.query_udp(&wire)?;
        let decoded = Message::decode(&udp_response)?;
        if !decoded.truncated {
            return Ok(Exchange {
                wire,
                response: decoded,
                response_wire: udp_response,
                retried_over_tcp: false,
            });
        }
        let tcp_response = self.query_tcp(&wire)?;
        let decoded = Message::decode(&tcp_response)?;
        Ok(Exchange {
            wire,
            response: decoded,
            response_wire: tcp_response,
            retried_over_tcp: true,
        })
    }
}
