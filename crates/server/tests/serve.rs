//! Integration tests over real loopback sockets: concurrent UDP load,
//! EDE codes on the wire, the TC=1 → TCP retry contract, the
//! malformed-query policy, connection capping, and graceful shutdown.

use ede_resolver::Vendor;
use ede_server::{pipeline, ProbeClient, Server, ServerConfig, ServerError};
use ede_testbed::Testbed;
use ede_wire::ede::EdeCode;
use ede_wire::stream::{frame, FrameReader, MAX_FRAME_LEN};
use ede_wire::{Message, Name, Opcode, Rcode, RrType};
use std::io::{Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::Duration;

fn testbed() -> &'static Testbed {
    use std::sync::OnceLock;
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(Testbed::build)
}

fn qname(label: &str) -> Name {
    Name::parse(&format!("{label}.extended-dns-errors.com")).unwrap()
}

fn spawn(config: ServerConfig) -> (ede_server::ServerHandle, ProbeClient) {
    let handle = Server::spawn(testbed().resolver(Vendor::Cloudflare), config).unwrap();
    let client = ProbeClient::connect(handle.udp_addr(), handle.tcp_addr()).unwrap();
    (handle, client)
}

#[test]
fn concurrent_udp_clients_get_correct_ede_codes() {
    let (handle, _) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(2)
            .build(),
    );
    let (udp_addr, tcp_addr) = (handle.udp_addr(), handle.tcp_addr());

    // Each case: (label, expected rcode, expected EDE codes on the wire).
    let cases: &[(&str, Rcode, &[EdeCode])] = &[
        ("valid", Rcode::NoError, &[]),
        (
            "rrsig-exp-all",
            Rcode::ServFail,
            &[EdeCode::SignatureExpired],
        ),
        ("bad-zsk", Rcode::ServFail, &[EdeCode::DnssecBogus]),
        ("rrsig-no-all", Rcode::ServFail, &[EdeCode::RrsigsMissing]),
    ];

    let mut joins = Vec::new();
    for (t, &(label, rcode, ede)) in cases.iter().enumerate() {
        joins.push(std::thread::spawn(move || {
            let client = ProbeClient::connect(udp_addr, tcp_addr).unwrap();
            for i in 0..25u16 {
                let id = (t as u16) << 8 | i;
                let exchange = client
                    .query(&Message::query(id, qname(label), RrType::A))
                    .unwrap();
                assert_eq!(exchange.response.id, id);
                assert_eq!(exchange.response.rcode, rcode, "{label}");
                // Repeat queries may add EDE 25 (Cached Error) from the
                // servfail cache on top of the diagnostic code.
                let codes = exchange.response.ede_codes();
                for expected in ede {
                    assert!(codes.contains(expected), "{label}: {codes:?}");
                }
                for code in &codes {
                    assert!(
                        ede.contains(code) || *code == EdeCode::CachedError,
                        "{label}: unexpected {code:?}"
                    );
                }
                assert!(!exchange.retried_over_tcp);
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }

    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.metrics.udp_queries, 100);
    assert_eq!(stats.metrics.udp_responses, 100);
    assert_eq!(stats.metrics.udp_truncated, 0);
    assert_eq!(stats.metrics.encode_errors, 0);
    assert!(stats.drained);
    assert!(stats.metrics.handle_latency.total >= 100);
}

#[test]
fn truncated_udp_answer_retries_over_tcp_bit_identical() {
    // Compute the untruncated response out-of-band on an identical
    // resolver, then force the server to truncate every UDP answer.
    let resolver = testbed().resolver(Vendor::Cloudflare);
    let query = Message::query(0x4242, qname("valid"), RrType::A);
    let expected_full = pipeline::answer(&resolver, None, &query).encode().unwrap();

    let (handle, client) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(1)
            .udp_payload_max(96)
            .build(),
    );

    // Raw UDP leg: the answer must be a TC=1 header+question skeleton.
    let wire = query.encode().unwrap();
    let udp_answer = client.query_udp(&wire).unwrap();
    let udp_decoded = Message::decode(&udp_answer).unwrap();
    assert!(udp_decoded.truncated);
    assert!(udp_decoded.answers.is_empty());
    assert!(udp_answer.len() < expected_full.len());

    // Composite exchange: TC observed, retried over TCP, and the TCP
    // bytes are identical to the untruncated message.
    let exchange = client.query(&query).unwrap();
    assert!(exchange.retried_over_tcp);
    assert_eq!(exchange.response_wire, expected_full);
    assert_eq!(
        exchange.response.ede_codes(),
        Vec::<EdeCode>::new(),
        "valid domain answers clean"
    );

    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.metrics.udp_truncated, 2);
    assert_eq!(stats.metrics.tcp_queries, 1);
    assert_eq!(stats.metrics.tcp_responses, 1);
    assert_eq!(stats.metrics.tcp_conns_accepted, 1);
}

#[test]
fn malformed_query_policy_on_the_wire() {
    let (handle, _) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(1)
            .build(),
    );
    let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
    probe.connect(handle.udp_addr()).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut buf = [0u8; 512];

    // Too short for a header: silently dropped.
    probe.send(&[0xAB, 0xCD, 0xFF]).unwrap();
    assert!(
        probe.recv(&mut buf).is_err(),
        "short datagram must be dropped"
    );

    // A response where a query belongs: silently dropped.
    let mut resp = Message::query(7, qname("valid"), RrType::A);
    resp.response = true;
    probe.send(&resp.encode().unwrap()).unwrap();
    assert!(probe.recv(&mut buf).is_err(), "responses must be dropped");

    // Valid header, garbage body: FORMERR echoing the ID.
    let mut garbage = Message::query(0xBEEF, qname("valid"), RrType::A)
        .encode()
        .unwrap();
    garbage.truncate(14);
    probe.send(&garbage).unwrap();
    let n = probe.recv(&mut buf).unwrap();
    let reply = Message::decode(&buf[..n]).unwrap();
    assert_eq!(reply.id, 0xBEEF);
    assert_eq!(reply.rcode, Rcode::FormErr);

    // Unimplemented opcode: NOTIMP.
    let mut status = Message::query(0x5151, qname("valid"), RrType::A);
    status.opcode = Opcode::Status;
    probe.send(&status.encode().unwrap()).unwrap();
    let n = probe.recv(&mut buf).unwrap();
    let reply = Message::decode(&buf[..n]).unwrap();
    assert_eq!(reply.id, 0x5151);
    assert_eq!(reply.rcode, Rcode::NotImp);
    assert_eq!(reply.opcode, Opcode::Status);

    // Out-of-class question: REFUSED with the question echoed.
    let mut chaos = Message::query(0x6161, qname("valid"), RrType::Txt);
    chaos.questions[0].qclass = ede_wire::Class::Ch;
    probe.send(&chaos.encode().unwrap()).unwrap();
    let n = probe.recv(&mut buf).unwrap();
    let reply = Message::decode(&buf[..n]).unwrap();
    assert_eq!(reply.id, 0x6161);
    assert_eq!(reply.rcode, Rcode::Refused);
    assert_eq!(reply.questions.len(), 1);

    let stats = handle.shutdown().unwrap();
    assert_eq!(stats.metrics.dropped, 2);
    assert_eq!(stats.metrics.rejected_formerr, 1);
    assert_eq!(stats.metrics.rejected_notimp, 1);
    assert_eq!(stats.metrics.rejected_refused, 1);
    assert_eq!(stats.metrics.udp_queries, 5);
    assert_eq!(stats.metrics.udp_responses, 3);
}

#[test]
fn tcp_connection_cap_refuses_excess_conns() {
    let (handle, client) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(1)
            .tcp_conn_cap(1)
            .tcp_read_timeout(Duration::from_secs(10))
            .build(),
    );

    // Occupy the one slot with an idle connection.
    let holder = TcpStream::connect(handle.tcp_addr()).unwrap();
    // Give the acceptor time to register it.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(handle.stats().active_tcp_conns, 1);

    // Any further connection is closed without an answer.
    let mut refused = TcpStream::connect(handle.tcp_addr()).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let wire = Message::query(1, qname("valid"), RrType::A)
        .encode()
        .unwrap();
    // The write may succeed (buffered) but the read must hit EOF.
    let _ = refused.write_all(&frame(&wire).unwrap());
    let mut buf = [0u8; 64];
    let n = refused.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "over-cap connection must be closed unanswered");

    drop(holder);
    std::thread::sleep(Duration::from_millis(150));

    // With the slot free, TCP service resumes.
    let answer = client.query_tcp(&wire).unwrap();
    assert_eq!(Message::decode(&answer).unwrap().rcode, Rcode::NoError);

    let stats = handle.shutdown().unwrap();
    assert!(stats.metrics.tcp_conns_refused >= 1);
    assert!(stats.metrics.tcp_conns_accepted >= 2);
    assert_eq!(stats.metrics.tcp_responses, 1);
}

#[test]
fn graceful_shutdown_answers_in_flight_tcp_request() {
    let (handle, _) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(1)
            .drain_deadline(Duration::from_secs(2))
            .build(),
    );
    let tcp_addr = handle.tcp_addr();

    // Open a connection and send only half a frame, then complete it
    // *after* shutdown has been triggered: the drain contract says the
    // in-flight request still gets its answer.
    let mut stream = TcpStream::connect(tcp_addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let wire = Message::query(0x0D0D, qname("rrsig-exp-all"), RrType::A)
        .encode()
        .unwrap();
    let framed = frame(&wire).unwrap();
    let (first, rest) = framed.split_at(framed.len() / 2);
    stream.write_all(first).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let handle = Arc::new(handle);
    let shutdown = {
        let handle = Arc::clone(&handle);
        std::thread::spawn(move || {
            handle.trigger_shutdown();
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    stream.write_all(rest).unwrap();

    let mut reader = FrameReader::new(MAX_FRAME_LEN);
    let mut buf = [0u8; 2048];
    let answer = loop {
        if let Some(frame) = reader.next_frame() {
            break frame;
        }
        let n = stream.read(&mut buf).unwrap();
        assert_ne!(n, 0, "connection closed before answering in-flight request");
        reader.push(&buf[..n]).unwrap();
    };
    let decoded = Message::decode(&answer).unwrap();
    assert_eq!(decoded.id, 0x0D0D);
    assert_eq!(decoded.rcode, Rcode::ServFail);
    assert_eq!(decoded.ede_codes(), vec![EdeCode::SignatureExpired]);
    shutdown.join().unwrap();

    // Every response the client received is accounted for in the final
    // stats: nothing was lost in the drain. The handler thread records
    // tcp_responses after its write returns, which can land a moment
    // after the client has already read the bytes — poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(1);
    let stats = loop {
        let stats = handle.stats();
        if stats.metrics.tcp_responses == 1 || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(stats.metrics.tcp_queries, 1);
    assert_eq!(stats.metrics.tcp_responses, 1);
}

#[test]
fn udp_burst_reconciles_with_stats() {
    let (handle, _) = spawn(
        ServerConfig::builder()
            .bind("127.0.0.1:0")
            .workers(3)
            .udp_batch(8)
            .build(),
    );
    let (udp_addr, tcp_addr) = (handle.udp_addr(), handle.tcp_addr());

    let mut joins = Vec::new();
    for c in 0..3 {
        joins.push(std::thread::spawn(move || {
            let client = ProbeClient::connect(udp_addr, tcp_addr).unwrap();
            let mut received = 0u64;
            for i in 0..40u16 {
                let label = ["valid", "no-ds", "bad-zsk"][usize::from(i) % 3];
                let exchange = client
                    .query(&Message::query(c * 100 + i, qname(label), RrType::A))
                    .unwrap();
                assert_eq!(exchange.response.id, c * 100 + i);
                received += 1;
            }
            received
        }));
    }
    let received: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();

    let stats = handle.shutdown().unwrap();
    assert_eq!(received, 120);
    assert_eq!(stats.metrics.udp_responses, received);
    assert_eq!(stats.metrics.udp_queries, received);
    assert!(stats.drained);
}

#[test]
fn bind_failure_is_a_structured_error() {
    // 192.0.2.0/24 is TEST-NET-1: never assigned to a local interface,
    // so the bind fails regardless of privileges.
    let err = Server::spawn(
        testbed().resolver(Vendor::Bind9),
        ServerConfig::builder().bind("192.0.2.1:0").build(),
    )
    .unwrap_err();
    match err {
        ServerError::Bind { addr, .. } => assert_eq!(addr, "192.0.2.1:0"),
        other => panic!("expected Bind error, got {other:?}"),
    }

    let err = Server::spawn(
        testbed().resolver(Vendor::Bind9),
        ServerConfig::builder().workers(0).build(),
    )
    .unwrap_err();
    assert!(matches!(err, ServerError::InvalidConfig(_)));
}
