//! Randomized tests for the crypto substrate, driven by an in-file
//! deterministic PRNG (SplitMix64) so every failure reproduces from the
//! fixed seed.

use ede_crypto::simsig::{self, SigningKey};
use ede_crypto::{base32, hmac::hmac, keytag, nsec3hash, Digest, Sha1, Sha256, Sha384};

/// Deterministic SplitMix64 stream driving the randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Random bytes, length uniform in `lo..hi`.
    fn bytes(&mut self, lo: u64, hi: u64) -> Vec<u8> {
        let len = self.range(lo, hi);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn base32hex_roundtrip() {
    let mut rng = Rng(0x0011_5eed);
    for _ in 0..256 {
        let data = rng.bytes(0, 64);
        let encoded = base32::encode(&data);
        let decoded = base32::decode(&encoded);
        assert_eq!(decoded.as_deref(), Some(data.as_slice()));
        // Alphabet check: all output chars are in [0-9a-v].
        assert!(encoded
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'v').contains(&b)));
    }
}

#[test]
fn base32hex_case_insensitive() {
    let mut rng = Rng(0x0012_5eed);
    for _ in 0..256 {
        let data = rng.bytes(0, 32);
        let encoded = base32::encode(&data).to_ascii_uppercase();
        assert_eq!(base32::decode(&encoded), Some(data));
    }
}

#[test]
fn sha_incremental_equals_oneshot() {
    let mut rng = Rng(0x0013_5eed);
    for _ in 0..64 {
        let chunks: Vec<Vec<u8>> = (0..rng.below(8)).map(|_| rng.bytes(0, 200)).collect();
        let flat: Vec<u8> = chunks.iter().flatten().copied().collect();
        let mut s1 = Sha1::new();
        let mut s256 = Sha256::new();
        let mut s384 = Sha384::new();
        for chunk in &chunks {
            s1.update(chunk);
            s256.update(chunk);
            s384.update(chunk);
        }
        assert_eq!(s1.finalize(), Sha1::digest(&flat));
        assert_eq!(s256.finalize(), Sha256::digest(&flat));
        assert_eq!(s384.finalize(), Sha384::digest(&flat));
    }
}

#[test]
fn hmac_distinguishes_keys_and_messages() {
    let mut rng = Rng(0x0014_5eed);
    for _ in 0..128 {
        let key_a = rng.bytes(1, 64);
        let key_b = rng.bytes(1, 64);
        let msg_a = rng.bytes(0, 64);
        let msg_b = rng.bytes(0, 64);
        let base = hmac::<Sha256>(&key_a, &msg_a);
        if key_a != key_b {
            assert_ne!(&base, &hmac::<Sha256>(&key_b, &msg_a));
        }
        if msg_a != msg_b {
            assert_ne!(&base, &hmac::<Sha256>(&key_a, &msg_b));
        }
    }
}

#[test]
fn simsig_sign_verify_roundtrip() {
    let mut rng = Rng(0x0015_5eed);
    for _ in 0..64 {
        let alg = rng.range(1, 20) as u8;
        let bits = [256u16, 512, 1024, 2048][rng.below(4) as usize];
        let seed = rng.bytes(1, 32);
        let msg = rng.bytes(0, 256);
        let key = SigningKey::from_seed(alg, bits, &seed);
        let sig = key.sign(&msg);
        assert_eq!(simsig::verify(&key.public_key(), alg, &msg, &sig), Ok(()));
    }
}

#[test]
fn simsig_rejects_tampering() {
    let mut rng = Rng(0x0016_5eed);
    for _ in 0..64 {
        let seed = rng.bytes(1, 16);
        let msg = rng.bytes(1, 128);
        let key = SigningKey::from_seed(8, 2048, &seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let idx = rng.below(tampered.len() as u64) as usize;
        tampered[idx] ^= 1 << rng.below(8);
        assert!(simsig::verify(&key.public_key(), 8, &tampered, &sig).is_err());
    }
}

#[test]
fn keytag_is_deterministic() {
    let mut rng = Rng(0x0017_5eed);
    for _ in 0..256 {
        let rdata = rng.bytes(4, 64);
        assert_eq!(keytag::key_tag(&rdata), keytag::key_tag(&rdata));
    }
}

#[test]
fn nsec3_hash_is_20_bytes_and_iteration_sensitive() {
    let mut rng = Rng(0x0018_5eed);
    for _ in 0..128 {
        let name = rng.bytes(1, 40);
        let salt = rng.bytes(0, 8);
        let iters = rng.below(16) as u16;
        let h = nsec3hash::nsec3_hash(&name, &salt, iters);
        assert_eq!(h.len(), 20);
        assert_ne!(h, nsec3hash::nsec3_hash(&name, &salt, iters + 1));
    }
}
