//! Property tests for the crypto substrate.

use ede_crypto::simsig::{self, SigningKey};
use ede_crypto::{base32, hmac::hmac, keytag, nsec3hash, Digest, Sha1, Sha256, Sha384};
use proptest::prelude::*;

proptest! {
    #[test]
    fn base32hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let encoded = base32::encode(&data);
        let decoded = base32::decode(&encoded);
        prop_assert_eq!(decoded.as_deref(), Some(data.as_slice()));
        // Alphabet check: all output chars are in [0-9a-v].
        prop_assert!(encoded.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'v').contains(&b)));
    }

    #[test]
    fn base32hex_case_insensitive(data in proptest::collection::vec(any::<u8>(), 0..32)) {
        let encoded = base32::encode(&data).to_ascii_uppercase();
        prop_assert_eq!(base32::decode(&encoded), Some(data));
    }

    #[test]
    fn sha_incremental_equals_oneshot(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 0..8)
    ) {
        let flat: Vec<u8> = chunks.iter().flatten().copied().collect();
        let mut s1 = Sha1::new();
        let mut s256 = Sha256::new();
        let mut s384 = Sha384::new();
        for chunk in &chunks {
            s1.update(chunk);
            s256.update(chunk);
            s384.update(chunk);
        }
        prop_assert_eq!(s1.finalize(), Sha1::digest(&flat));
        prop_assert_eq!(s256.finalize(), Sha256::digest(&flat));
        prop_assert_eq!(s384.finalize(), Sha384::digest(&flat));
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        key_a in proptest::collection::vec(any::<u8>(), 1..64),
        key_b in proptest::collection::vec(any::<u8>(), 1..64),
        msg_a in proptest::collection::vec(any::<u8>(), 0..64),
        msg_b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let base = hmac::<Sha256>(&key_a, &msg_a);
        if key_a != key_b {
            prop_assert_ne!(&base, &hmac::<Sha256>(&key_b, &msg_a));
        }
        if msg_a != msg_b {
            prop_assert_ne!(&base, &hmac::<Sha256>(&key_a, &msg_b));
        }
    }

    #[test]
    fn simsig_sign_verify_roundtrip(
        alg in 1u8..20,
        bits in prop_oneof![Just(256u16), Just(512), Just(1024), Just(2048)],
        seed in proptest::collection::vec(any::<u8>(), 1..32),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let key = SigningKey::from_seed(alg, bits, &seed);
        let sig = key.sign(&msg);
        prop_assert_eq!(simsig::verify(&key.public_key(), alg, &msg, &sig), Ok(()));
    }

    #[test]
    fn simsig_rejects_tampering(
        seed in proptest::collection::vec(any::<u8>(), 1..16),
        msg in proptest::collection::vec(any::<u8>(), 1..128),
        flip_bit in 0usize..8,
        flip_at_frac in 0.0f64..1.0,
    ) {
        let key = SigningKey::from_seed(8, 2048, &seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let idx = ((tampered.len() - 1) as f64 * flip_at_frac) as usize;
        tampered[idx] ^= 1 << flip_bit;
        prop_assert!(simsig::verify(&key.public_key(), 8, &tampered, &sig).is_err());
    }

    #[test]
    fn keytag_is_deterministic(rdata in proptest::collection::vec(any::<u8>(), 4..64)) {
        prop_assert_eq!(keytag::key_tag(&rdata), keytag::key_tag(&rdata));
    }

    #[test]
    fn nsec3_hash_is_20_bytes_and_iteration_sensitive(
        name in proptest::collection::vec(any::<u8>(), 1..40),
        salt in proptest::collection::vec(any::<u8>(), 0..8),
        iters in 0u16..16,
    ) {
        let h = nsec3hash::nsec3_hash(&name, &salt, iters);
        prop_assert_eq!(h.len(), 20);
        prop_assert_ne!(h, nsec3hash::nsec3_hash(&name, &salt, iters + 1));
    }
}
