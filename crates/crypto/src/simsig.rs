//! Simulated DNSSEC public-key signatures.
//!
//! The paper's observations never depend on the mathematical hardness of
//! RSA/ECDSA/EdDSA — every validation outcome it reports is a function of
//! protocol metadata (algorithm numbers, key tags, validity windows, DS
//! digests) or of an exact signature match/mismatch. This module therefore
//! substitutes a deterministic scheme with the same *interface* as DNSSEC
//! public-key cryptography:
//!
//! * a [`SigningKey`] holds a 16-byte secret derived from a seed;
//! * the **public key** embeds the secret (layout below), so any holder of
//!   the public key can recompute and check signatures — mirroring how a
//!   real verifier uses the public key. Since the threat model here is
//!   *misconfiguration*, not forgery, revealing the secret is harmless;
//! * a signature is `HMAC-SHA256(secret, algorithm ‖ message)`, truncated
//!   or zero-padded to a per-algorithm length so that wire sizes resemble
//!   real signatures.
//!
//! Public key wire layout: `"SK" ‖ version(1) ‖ algorithm(1) ‖ secret(16) ‖
//! zero padding` up to the modeled key size. The modeled size matters: the
//! paper (§4.2.7) reports Cloudflare rejecting 512-bit RSA keys with an
//! "unsupported key size" EXTRA-TEXT, so key length must be visible to
//! validators.

use crate::hmac::hmac;
use crate::{Digest, Sha256};

/// Public key header magic.
const MAGIC: &[u8; 2] = b"SK";
/// Simulated-key format version.
const VERSION: u8 = 1;
/// Secret length embedded in keys.
const SECRET_LEN: usize = 16;
/// Minimum encoded public key length (header + secret).
pub const MIN_PUBKEY_LEN: usize = 4 + SECRET_LEN;

/// Length in bytes of a simulated signature.
pub const SIGNATURE_LEN: usize = 32;

/// Errors from [`verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The public key bytes do not parse as a simulated key.
    MalformedKey,
    /// The algorithm embedded in the key differs from the RRSIG algorithm.
    AlgorithmMismatch,
    /// The signature bytes do not match the recomputation.
    BadSignature,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MalformedKey => write!(f, "malformed public key"),
            VerifyError::AlgorithmMismatch => write!(f, "key/signature algorithm mismatch"),
            VerifyError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A simulated private key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigningKey {
    /// DNSSEC algorithm number this key is labeled with.
    pub algorithm: u8,
    /// Modeled public key size in bits (affects encoded key length only).
    pub key_bits: u16,
    secret: [u8; SECRET_LEN],
}

impl SigningKey {
    /// Deterministically derive a key from a seed. The same
    /// `(algorithm, key_bits, seed)` triple always yields the same key,
    /// which keeps key tags and zone contents reproducible.
    pub fn from_seed(algorithm: u8, key_bits: u16, seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"EDE-KEYGEN-v1");
        h.update(&[algorithm]);
        h.update(&key_bits.to_be_bytes());
        h.update(seed);
        let digest = h.finalize();
        let mut secret = [0u8; SECRET_LEN];
        secret.copy_from_slice(&digest[..SECRET_LEN]);
        SigningKey {
            algorithm,
            key_bits,
            secret,
        }
    }

    /// Encode the public half. Total length is `max(key_bits/8, 20)` bytes
    /// so that the modeled key size is observable on the wire.
    pub fn public_key(&self) -> Vec<u8> {
        let target = usize::from(self.key_bits / 8).max(MIN_PUBKEY_LEN);
        let mut out = Vec::with_capacity(target);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.algorithm);
        out.extend_from_slice(&self.secret);
        out.resize(target, 0);
        out
    }

    /// Sign `message`, producing a [`SIGNATURE_LEN`]-byte signature.
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let mut tagged = Vec::with_capacity(message.len() + 1);
        tagged.push(self.algorithm);
        tagged.extend_from_slice(message);
        hmac::<Sha256>(&self.secret, &tagged)
    }
}

/// Parsed view of a simulated public key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey<'a> {
    /// Algorithm number embedded at key generation time.
    pub algorithm: u8,
    /// Modeled key size in bits, recovered from the encoded length.
    pub key_bits: u16,
    secret: &'a [u8],
}

/// Parse an encoded public key.
pub fn parse_public_key(bytes: &[u8]) -> Option<PublicKey<'_>> {
    if bytes.len() < MIN_PUBKEY_LEN || &bytes[..2] != MAGIC || bytes[2] != VERSION {
        return None;
    }
    Some(PublicKey {
        algorithm: bytes[3],
        key_bits: (bytes.len() as u16).saturating_mul(8),
        secret: &bytes[4..4 + SECRET_LEN],
    })
}

/// Verify `signature` over `message` with `public_key`, checking that the
/// key was generated for `algorithm` (RRSIG and DNSKEY algorithm fields
/// must agree, RFC 4035 §5.3.1).
pub fn verify(
    public_key: &[u8],
    algorithm: u8,
    message: &[u8],
    signature: &[u8],
) -> Result<(), VerifyError> {
    let key = parse_public_key(public_key).ok_or(VerifyError::MalformedKey)?;
    if key.algorithm != algorithm {
        return Err(VerifyError::AlgorithmMismatch);
    }
    let mut tagged = Vec::with_capacity(message.len() + 1);
    tagged.push(algorithm);
    tagged.extend_from_slice(message);
    let expect = hmac::<Sha256>(key.secret, &tagged);
    // Constant-time comparison is irrelevant for a simulation, but cheap.
    if expect.len() == signature.len()
        && expect
            .iter()
            .zip(signature)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    {
        Ok(())
    } else {
        Err(VerifyError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(8, 2048, b"example.com/zsk");
        let sig = key.sign(b"rrset canonical form");
        assert_eq!(sig.len(), SIGNATURE_LEN);
        assert_eq!(
            verify(&key.public_key(), 8, b"rrset canonical form", &sig),
            Ok(())
        );
    }

    #[test]
    fn wrong_message_fails() {
        let key = SigningKey::from_seed(13, 256, b"seed");
        let sig = key.sign(b"hello");
        assert_eq!(
            verify(&key.public_key(), 13, b"hellp", &sig),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let a = SigningKey::from_seed(8, 2048, b"a");
        let b = SigningKey::from_seed(8, 2048, b"b");
        let sig = a.sign(b"msg");
        assert_eq!(
            verify(&b.public_key(), 8, b"msg", &sig),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn algorithm_mismatch_detected() {
        // Key generated for algorithm 8 but RRSIG claims 13: the testbed's
        // ds-bad-key-algo / bad-zsk-algo cases rely on this failing.
        let key = SigningKey::from_seed(8, 2048, b"seed");
        let sig = key.sign(b"msg");
        assert_eq!(
            verify(&key.public_key(), 13, b"msg", &sig),
            Err(VerifyError::AlgorithmMismatch)
        );
    }

    #[test]
    fn corrupted_key_is_malformed_or_bad() {
        let key = SigningKey::from_seed(8, 2048, b"seed");
        let sig = key.sign(b"msg");
        let mut pk = key.public_key();
        pk[6] ^= 0xff; // flip a secret byte
        assert_eq!(verify(&pk, 8, b"msg", &sig), Err(VerifyError::BadSignature));
        pk[0] = b'X'; // destroy magic
        assert_eq!(verify(&pk, 8, b"msg", &sig), Err(VerifyError::MalformedKey));
    }

    #[test]
    fn key_size_is_modeled() {
        let small = SigningKey::from_seed(5, 512, b"s");
        let big = SigningKey::from_seed(5, 2048, b"s");
        assert_eq!(small.public_key().len(), 64);
        assert_eq!(big.public_key().len(), 256);
        assert_eq!(parse_public_key(&small.public_key()).unwrap().key_bits, 512);
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = SigningKey::from_seed(15, 256, b"zone/ksk");
        let b = SigningKey::from_seed(15, 256, b"zone/ksk");
        assert_eq!(a, b);
        assert_eq!(a.public_key(), b.public_key());
    }
}
