//! Hardware-accelerated compression functions (x86-64 SHA extensions).
//!
//! SHA-1 and SHA-256 dominate the scan's CPU profile: every NSEC3 owner
//! hash is `iterations + 1` chained SHA-1 invocations (RFC 5155), and
//! every simulated signature is an HMAC-SHA-256 — at reproduction scale
//! that is tens of millions of compression-function calls per scan. On
//! CPUs with the SHA new instructions (`sha_ni`), the exact FIPS 180-4
//! compression functions exist in silicon; this module dispatches to
//! them at runtime and falls back to the portable scalar cores
//! otherwise.
//!
//! Determinism: the SHA extensions compute the same mathematical
//! function as the scalar code — identical state words in, identical
//! state words out — so digests (and therefore NSEC3 owner names, DS
//! digests, key tags, and simulated signatures) are bit-identical on
//! every dispatch path. The cross-check tests below pin that.
//!
//! This is the one module in the crate that needs `unsafe`: the
//! intrinsics demand it (`#[target_feature]` functions are unsafe to
//! call), and every call site is guarded by a cached runtime CPUID
//! check. Everything outside this module remains `#![deny(unsafe_code)]`
//! territory.

#![allow(unsafe_code)]

/// True when the CPU supports the SHA extensions (plus the SSSE3/SSE4.1
/// shuffles the kernels lean on), checked once and cached.
#[cfg(target_arch = "x86_64")]
pub fn sha_ni_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
    })
}

/// Non-x86-64 targets have no accelerated path.
#[cfg(not(target_arch = "x86_64"))]
pub fn sha_ni_available() -> bool {
    false
}

/// Compress one SHA-256 block in hardware if the CPU supports it.
/// Returns `false` (without touching `state`) when it doesn't, so the
/// caller falls through to the scalar core. Safe: the feature check
/// guards the kernel call.
#[cfg(target_arch = "x86_64")]
pub fn sha256_compress(state: &mut [u32; 8], block: &[u8; 64], k256: &[u32; 64]) -> bool {
    if !sha_ni_available() {
        return false;
    }
    // SAFETY: sha/ssse3/sse4.1 presence verified above.
    unsafe { sha256_kernel(state, block, k256) };
    true
}

/// Scalar-only fallback stub for non-x86-64 targets.
#[cfg(not(target_arch = "x86_64"))]
pub fn sha256_compress(_state: &mut [u32; 8], _block: &[u8; 64], _k256: &[u32; 64]) -> bool {
    false
}

/// Compress one SHA-1 block in hardware if the CPU supports it.
/// Returns `false` (without touching `state`) when it doesn't.
#[cfg(target_arch = "x86_64")]
pub fn sha1_compress(state: &mut [u32; 5], block: &[u8; 64]) -> bool {
    if !sha_ni_available() {
        return false;
    }
    // SAFETY: sha/ssse3/sse4.1 presence verified above.
    unsafe { sha1_kernel(state, block) };
    true
}

/// Scalar-only fallback stub for non-x86-64 targets.
#[cfg(not(target_arch = "x86_64"))]
pub fn sha1_compress(_state: &mut [u32; 5], _block: &[u8; 64]) -> bool {
    false
}

/// SHA-256 compression of one 512-bit block using the SHA extensions.
///
/// # Safety
/// Callers must have verified [`sha_ni_available`] first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn sha256_kernel(state: &mut [u32; 8], block: &[u8; 64], k256: &[u32; 64]) {
    use core::arch::x86_64::*;

    // Byte shuffle turning the big-endian message words into lane order.
    let mask = _mm_set_epi64x(
        0x0c0d_0e0f_0809_0a0bu64 as i64,
        0x0405_0607_0001_0203u64 as i64,
    );

    // Load state and rearrange into the (ABEF, CDGH) layout the
    // SHA256RNDS2 instruction works on.
    let tmp = _mm_loadu_si128(state.as_ptr() as *const __m128i); // DCBA
    let st1 = _mm_loadu_si128(state.as_ptr().add(4) as *const __m128i); // HGFE
    let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
    let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
    let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
    let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

    let abef_save = state0;
    let cdgh_save = state1;

    // Four rounds of SHA-256 for one 4-word message chunk (+K already
    // folded in by the caller of the macro).
    macro_rules! rounds4 {
        ($m:expr, $k:expr) => {{
            let msg = _mm_add_epi32($m, _mm_loadu_si128($k.as_ptr() as *const __m128i));
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            let msg = _mm_shuffle_epi32(msg, 0x0E);
            state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
        }};
    }
    // Next 4 message-schedule words from the previous 16 (FIPS 180-4
    // §6.2.2 schedule, four lanes at a time).
    macro_rules! schedule {
        ($m0:expr, $m1:expr, $m2:expr, $m3:expr) => {{
            let t = _mm_sha256msg1_epu32($m0, $m1);
            let t = _mm_add_epi32(t, _mm_alignr_epi8($m3, $m2, 4));
            _mm_sha256msg2_epu32(t, $m3)
        }};
    }

    let mut m0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), mask);
    let mut m1 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
        mask,
    );
    let mut m2 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
        mask,
    );
    let mut m3 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
        mask,
    );

    rounds4!(m0, k256[0..4]);
    rounds4!(m1, k256[4..8]);
    rounds4!(m2, k256[8..12]);
    rounds4!(m3, k256[12..16]);
    for g in 1..4 {
        m0 = schedule!(m0, m1, m2, m3);
        rounds4!(m0, k256[g * 16..g * 16 + 4]);
        m1 = schedule!(m1, m2, m3, m0);
        rounds4!(m1, k256[g * 16 + 4..g * 16 + 8]);
        m2 = schedule!(m2, m3, m0, m1);
        rounds4!(m2, k256[g * 16 + 8..g * 16 + 12]);
        m3 = schedule!(m3, m0, m1, m2);
        rounds4!(m3, k256[g * 16 + 12..g * 16 + 16]);
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    // Rearrange back to linear A..H and store.
    let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
    let st1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    let out0 = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
    let out1 = _mm_alignr_epi8(st1, tmp, 8); // HGFE
    _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, out0);
    _mm_storeu_si128(state.as_mut_ptr().add(4) as *mut __m128i, out1);
}

/// SHA-1 compression of one 512-bit block using the SHA extensions.
///
/// # Safety
/// Callers must have verified [`sha_ni_available`] first.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn sha1_kernel(state: &mut [u32; 5], block: &[u8; 64]) {
    use core::arch::x86_64::*;

    // Full 16-byte reversal: big-endian words, word order reversed so
    // w[0] lands in the high lane as SHA1RNDS4 expects.
    let mask = _mm_set_epi64x(
        0x0001_0203_0405_0607u64 as i64,
        0x0809_0a0b_0c0d_0e0fu64 as i64,
    );

    let mut abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
    abcd = _mm_shuffle_epi32(abcd, 0x1B); // A in the high lane
    let e_save = _mm_set_epi32(state[4] as i32, 0, 0, 0);
    let abcd_save = abcd;

    let mut m = [
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), mask),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
            mask,
        ),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
            mask,
        ),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
            mask,
        ),
    ];

    // Group 0 seeds E directly; groups 1..19 thread it through
    // SHA1NEXTE. `saved` is always the ABCD value entering the previous
    // group's rounds (the hardware's implicit E pipeline).
    let mut saved = abcd;
    let e0 = _mm_add_epi32(e_save, m[0]);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

    // One four-round group: refresh this group's schedule chunk (from
    // group 4 on), derive E from the saved ABCD, run the rounds. The
    // round-function immediate must be a literal, hence the macro.
    macro_rules! group {
        ($g:expr, $f:literal) => {{
            if $g >= 4 {
                let t = _mm_sha1msg1_epu32(m[$g % 4], m[($g + 1) % 4]);
                let t = _mm_xor_si128(t, m[($g + 2) % 4]);
                m[$g % 4] = _mm_sha1msg2_epu32(t, m[($g + 3) % 4]);
            }
            let e = _mm_sha1nexte_epu32(saved, m[$g % 4]);
            saved = abcd;
            abcd = _mm_sha1rnds4_epu32(abcd, e, $f);
        }};
    }

    group!(1, 0);
    group!(2, 0);
    group!(3, 0);
    group!(4, 0);
    group!(5, 1);
    group!(6, 1);
    group!(7, 1);
    group!(8, 1);
    group!(9, 1);
    group!(10, 2);
    group!(11, 2);
    group!(12, 2);
    group!(13, 2);
    group!(14, 2);
    group!(15, 3);
    group!(16, 3);
    group!(17, 3);
    group!(18, 3);
    group!(19, 3);

    let e_final = _mm_sha1nexte_epu32(saved, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);

    abcd = _mm_shuffle_epi32(abcd, 0x1B);
    _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
    state[4] = _mm_extract_epi32(e_final, 3) as u32;
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use crate::{Digest, Sha1, Sha256};

    /// Deterministic byte stream for cross-checks.
    fn pattern(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u32).wrapping_mul(2654435761) as u8)
            .collect()
    }

    // The scalar cores are pinned by FIPS vectors in `sha1.rs` /
    // `sha2.rs`; these tests pin the accelerated path to the scalar one
    // across block boundaries and partial blocks. On CPUs without the
    // SHA extensions both paths are the scalar core and the tests are
    // vacuous (but still green).

    #[test]
    fn sha256_matches_fips_vectors_on_this_cpu() {
        let hex = |b: &[u8]| b.iter().map(|x| format!("{x:02x}")).collect::<String>();
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha1_matches_fips_vectors_on_this_cpu() {
        let hex = |b: &[u8]| b.iter().map(|x| format!("{x:02x}")).collect::<String>();
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn hardware_kernels_match_scalar_core_on_random_blocks() {
        if !super::sha_ni_available() {
            return; // nothing to cross-check on this CPU
        }
        // Feed both compression cores the same chained states and
        // pseudo-random blocks; every intermediate state must agree.
        let mut s256_hw = [
            0x6a09e667u32,
            0xbb67ae85,
            0x3c6ef372,
            0xa54ff53a,
            0x510e527f,
            0x9b05688c,
            0x1f83d9ab,
            0x5be0cd19,
        ];
        let mut s256_sc = s256_hw;
        let mut s1_hw = [
            0x67452301u32,
            0xEFCDAB89,
            0x98BADCFE,
            0x10325476,
            0xC3D2E1F0,
        ];
        let mut s1_sc = s1_hw;
        for round in 0..256 {
            let bytes = pattern(64 + round); // shifting content per round
            let block: &[u8; 64] = bytes[round..round + 64].try_into().unwrap();
            assert!(super::sha256_compress(
                &mut s256_hw,
                block,
                &crate::sha2::K256
            ));
            crate::Sha256::compress_scalar(&mut s256_sc, block);
            assert_eq!(s256_hw, s256_sc, "sha256 diverged at round {round}");
            assert!(super::sha1_compress(&mut s1_hw, block));
            crate::Sha1::compress_scalar(&mut s1_sc, block);
            assert_eq!(s1_hw, s1_sc, "sha1 diverged at round {round}");
        }
    }

    #[test]
    fn every_length_to_three_blocks_is_consistent() {
        // Streaming updates split at every offset must agree with the
        // one-shot digest for messages spanning 0..=3 compression
        // blocks — exercises the buffered path, the bulk path, and
        // padding interplay on whatever dispatch the CPU picks.
        for len in 0..=192 {
            let data = pattern(len);
            let oneshot256 = Sha256::digest(&data);
            let oneshot1 = Sha1::digest(&data);
            for split in [0, 1, len / 2, len.saturating_sub(1), len].map(|s| s.min(len)) {
                let mut h = Sha256::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                assert_eq!(h.finalize(), oneshot256, "sha256 len {len} split {split}");
                let mut h = Sha1::new();
                h.update(&data[..split]);
                h.update(&data[split..]);
                assert_eq!(h.finalize(), oneshot1, "sha1 len {len} split {split}");
            }
        }
    }
}
