//! DNSKEY key tag computation (RFC 4034 Appendix B).
//!
//! The key tag is a 16-bit checksum over the DNSKEY RDATA that DS and RRSIG
//! records carry to pre-select candidate keys. It is *not* a hash: distinct
//! keys may share a tag, and validators must treat it as a hint only. The
//! paper's `ds-bad-tag` testbed case works precisely because validators
//! compare this value against the DS key tag field.

/// Compute the key tag over a DNSKEY RDATA (flags ‖ protocol ‖ algorithm ‖
/// public key), exactly as RFC 4034 Appendix B specifies.
///
/// `algorithm` 1 (RSA/MD5) uses the historical formula from Appendix B.1:
/// the tag is the 16 most significant bits of the 24 least significant bits
/// of the public key modulus. All other algorithms use the ones'-complement
/// style accumulation.
pub fn key_tag(rdata: &[u8]) -> u16 {
    // RDATA layout: 2 bytes flags, 1 byte protocol, 1 byte algorithm, key.
    if rdata.len() >= 4 && rdata[3] == 1 {
        // RSA/MD5: key tag from the modulus trailer.
        if rdata.len() >= 7 {
            let n = rdata.len();
            return u16::from_be_bytes([rdata[n - 3], rdata[n - 2]]);
        }
        return 0;
    }

    let mut acc: u32 = 0;
    for (i, &b) in rdata.iter().enumerate() {
        if i & 1 == 0 {
            acc += u32::from(b) << 8;
        } else {
            acc += u32::from(b);
        }
    }
    acc += (acc >> 16) & 0xffff;
    (acc & 0xffff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4034 §5.4 example: the DS record for dskey.example.com carries
    /// key tag 60485 for the given DNSKEY. Reconstruct the RDATA from the
    /// RFC's base64 key material and check.
    #[test]
    fn rfc4034_example_key() {
        // DNSKEY 256 3 5 ( AQOeiiR0GOMYkDshWoSKz9Xz...
        // Decoded public key bytes (from the RFC example, 130 bytes).
        const KEY_B64: &str = "AQOeiiR0GOMYkDshWoSKz9XzfwJr1AYtsmx3TGkJaNXVbfi/\
                               2pHm822aJ5iI9BMzNXxeYCmZDRD99WYwYqUSdjMmmAphXdvx\
                               egXd/M5+X7OrzKBaMbCVdFLUUh6DhweJBjEVv5f2wwjM9Xzc\
                               nOf+EPbtG9DMBmADjFDc2w/rljwvFw==";
        let key = b64(KEY_B64);
        let mut rdata = vec![0x01, 0x00, 3, 5]; // flags 256, proto 3, alg 5
        rdata.extend_from_slice(&key);
        assert_eq!(key_tag(&rdata), 60485);
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = key_tag(&[0x01, 0x01, 3, 8, 1, 2, 3, 4]);
        let b = key_tag(&[0x01, 0x01, 3, 8, 1, 2, 4, 3]);
        assert_eq!(a, key_tag(&[0x01, 0x01, 3, 8, 1, 2, 3, 4]));
        assert_ne!(a, b);
    }

    #[test]
    fn rsamd5_uses_modulus_trailer() {
        // Algorithm 1: tag must be read from the 3rd/2nd trailing bytes.
        let mut rdata = vec![0x01, 0x00, 3, 1];
        rdata.extend_from_slice(&[0xaa; 10]);
        rdata.extend_from_slice(&[0x12, 0x34, 0x56]);
        assert_eq!(key_tag(&rdata), 0x1234);
    }

    /// Minimal base64 decoder for the test vector only.
    fn b64(s: &str) -> Vec<u8> {
        const T: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
        let mut out = Vec::new();
        let mut acc = 0u32;
        let mut bits = 0;
        for c in s.bytes() {
            if c == b'=' || c.is_ascii_whitespace() {
                continue;
            }
            let v = T.iter().position(|&t| t == c).expect("valid base64") as u32;
            acc = (acc << 6) | v;
            bits += 6;
            if bits >= 8 {
                bits -= 8;
                out.push(((acc >> bits) & 0xff) as u8);
            }
        }
        out
    }
}
