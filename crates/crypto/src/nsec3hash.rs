//! NSEC3 owner-name hashing (RFC 5155 §5).
//!
//! `IH(salt, x, 0) = H(x ‖ salt)` and
//! `IH(salt, x, k) = H(IH(salt, x, k-1) ‖ salt)`; the hashed owner name is
//! `IH(salt, owner, iterations)` where `owner` is the canonical
//! (lowercased) wire-format name. Hash algorithm 1 (SHA-1) is the only
//! value ever registered.
//!
//! RFC 9276 ("Guidance for NSEC3 Parameter Settings") requires an iteration
//! count of 0; the testbed's `nsec3-iter-200` case deliberately violates
//! that guidance, and resolvers cap the iterations they are willing to
//! compute (Cloudflare's "iteration limit exceeded" EXTRA-TEXT in §4.2.14
//! of the paper comes from such a cap).

use crate::{base32, Digest, Sha1};

/// The single registered NSEC3 hash algorithm (SHA-1).
pub const NSEC3_HASH_ALG_SHA1: u8 = 1;

/// Hash a canonical wire-format owner name with the given salt and
/// iteration count, returning the 20-byte SHA-1 based digest.
///
/// The caller must supply the name already lowercased (canonical form);
/// this function performs no case folding.
pub fn nsec3_hash(name_wire: &[u8], salt: &[u8], iterations: u16) -> Vec<u8> {
    let mut digest = {
        let mut h = Sha1::new();
        h.update(name_wire);
        h.update(salt);
        h.finalize()
    };
    for _ in 0..iterations {
        let mut h = Sha1::new();
        h.update(&digest);
        h.update(salt);
        digest = h.finalize();
    }
    digest
}

/// Hash an owner name and return the base32hex label used as the NSEC3
/// owner (RFC 5155 §3).
pub fn nsec3_hash_label(name_wire: &[u8], salt: &[u8], iterations: u16) -> String {
    base32::encode(&nsec3_hash(name_wire, salt, iterations))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encode a dotted name into wire format for the vectors below.
    fn wire(name: &str) -> Vec<u8> {
        let mut out = Vec::new();
        if !name.is_empty() {
            for label in name.split('.') {
                out.push(label.len() as u8);
                out.extend_from_slice(label.as_bytes());
            }
        }
        out.push(0);
        out
    }

    /// RFC 5155 Appendix A: salt aabbccdd, 12 iterations.
    #[test]
    fn rfc5155_appendix_a_example() {
        let salt = [0xaa, 0xbb, 0xcc, 0xdd];
        assert_eq!(
            nsec3_hash_label(&wire("example"), &salt, 12),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"
        );
    }

    #[test]
    fn rfc5155_appendix_a_a_example() {
        let salt = [0xaa, 0xbb, 0xcc, 0xdd];
        assert_eq!(
            nsec3_hash_label(&wire("a.example"), &salt, 12),
            "35mthgpgcu1qg68fab165klnsnk3dpvl"
        );
    }

    #[test]
    fn rfc5155_appendix_a_ai_example() {
        let salt = [0xaa, 0xbb, 0xcc, 0xdd];
        assert_eq!(
            nsec3_hash_label(&wire("ai.example"), &salt, 12),
            "gjeqe526plbf1g8mklp59enfd789njgi"
        );
    }

    #[test]
    fn iterations_change_output() {
        let name = wire("example.com");
        let h0 = nsec3_hash(&name, b"", 0);
        let h1 = nsec3_hash(&name, b"", 1);
        let h200 = nsec3_hash(&name, b"", 200);
        assert_ne!(h0, h1);
        assert_ne!(h1, h200);
        assert_eq!(h0.len(), 20);
    }

    #[test]
    fn salt_changes_output() {
        let name = wire("example.com");
        assert_ne!(nsec3_hash(&name, b"", 0), nsec3_hash(&name, b"\x01", 0));
    }
}
