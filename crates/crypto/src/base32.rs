//! Base 32 encoding with the extended hex alphabet (base32hex, RFC 4648 §7).
//!
//! NSEC3 owner names are the base32hex encoding of the hashed name
//! (RFC 5155 §3). DNS uses the *unpadded*, case-insensitive form; we emit
//! lowercase (as zone files conventionally do) and accept either case when
//! decoding.

const ALPHABET: &[u8; 32] = b"0123456789abcdefghijklmnopqrstuv";

/// Encode `data` as unpadded lowercase base32hex.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    for chunk in data.chunks(5) {
        let mut buf = [0u8; 5];
        buf[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from(buf[0]) << 32
            | u64::from(buf[1]) << 24
            | u64::from(buf[2]) << 16
            | u64::from(buf[3]) << 8
            | u64::from(buf[4]);
        // ceil(bits / 5) output symbols for the bytes actually present.
        let symbols = match chunk.len() {
            1 => 2,
            2 => 4,
            3 => 5,
            4 => 7,
            _ => 8,
        };
        for i in 0..symbols {
            let shift = 35 - 5 * i;
            out.push(ALPHABET[((v >> shift) & 0x1f) as usize] as char);
        }
    }
    out
}

/// Decode unpadded base32hex (either case). Returns `None` on any
/// non-alphabet character or an impossible length.
pub fn decode(text: &str) -> Option<Vec<u8>> {
    // Lengths congruent to 1, 3 or 6 mod 8 cannot arise from whole bytes.
    if matches!(text.len() % 8, 1 | 3 | 6) {
        return None;
    }
    let mut out = Vec::with_capacity(text.len() * 5 / 8);
    let bytes = text.as_bytes();
    for chunk in bytes.chunks(8) {
        let mut v: u64 = 0;
        for &c in chunk {
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'v' => c - b'a' + 10,
                b'A'..=b'V' => c - b'A' + 10,
                _ => return None,
            };
            v = (v << 5) | u64::from(d);
        }
        // Left-align the symbols inside the 40-bit group.
        v <<= 5 * (8 - chunk.len());
        let n_bytes = chunk.len() * 5 / 8;
        for i in 0..n_bytes {
            out.push(((v >> (32 - 8 * i)) & 0xff) as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 base32hex vectors, with padding stripped.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "co"),
            (b"fo", "cpng"),
            (b"foo", "cpnmu"),
            (b"foob", "cpnmuog"),
            (b"fooba", "cpnmuoj1"),
            (b"foobar", "cpnmuoj1e8"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), *enc);
            assert_eq!(decode(enc).as_deref(), Some(*raw));
        }
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("CPNMUOJ1E8").as_deref(), Some(b"foobar".as_slice()));
    }

    #[test]
    fn rejects_bad_chars_and_lengths() {
        assert!(decode("cpn!").is_none());
        assert!(decode("w").is_none()); // 'w' not in hex alphabet
        assert!(decode("c").is_none()); // impossible length 1
        assert!(decode("cpn").is_none()); // impossible length 3
    }

    // RFC 5155 Appendix A hashes encode to 32 characters (SHA-1 = 20 bytes).
    #[test]
    fn sha1_width() {
        assert_eq!(encode(&[0u8; 20]).len(), 32);
    }
}
