//! Cryptographic substrate for the Extended DNS Errors reproduction.
//!
//! This crate provides every cryptographic primitive the DNSSEC pipeline
//! needs, in two tiers:
//!
//! * **Real implementations** where the *value* of the computation is
//!   protocol-visible and must match deployed DNS behaviour bit for bit:
//!   [`sha1`], [`sha2`] (SHA-256 / SHA-384), [`hmac`], [`base32`]
//!   (base32hex used for NSEC3 owner names), [`keytag`] (RFC 4034
//!   Appendix B) and [`nsec3hash`] (RFC 5155 iterated, salted SHA-1).
//!   All are implemented from scratch and verified against the official
//!   FIPS / RFC test vectors.
//!
//! * **A simulated public-key signature scheme** ([`simsig`]) replacing
//!   RSA / ECDSA / EdDSA / DSA / GOST. DNSSEC validation outcomes observed
//!   by the paper (bogus signatures, expired or not-yet-valid windows,
//!   DS ↔ DNSKEY mismatches, unsupported algorithms) are all driven by
//!   metadata or by exact signature (mis)match — properties the simulated
//!   scheme preserves. Only adversarial unforgeability is lost, which the
//!   paper never exercises. See DESIGN.md for the substitution rationale.
//!
//! The crate is `std`-only, dependency-free, and deterministic. On
//! x86-64 CPUs with the SHA extensions, SHA-1 and SHA-256 dispatch to
//! hardware compression kernels ([`accel`]) that compute the identical
//! FIPS 180-4 function — digests are bit-for-bit the same on every
//! path. That module is the crate's only `unsafe` (intrinsics require
//! it); everything else stays forbidden via `deny(unsafe_code)`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod base32;
pub mod base64;
pub mod hmac;
pub mod keytag;
pub mod nsec3hash;
pub mod sha1;
pub mod sha2;
pub mod simsig;

pub use sha1::Sha1;
pub use sha2::{Sha256, Sha384};

/// A minimal streaming digest abstraction shared by all hash functions in
/// this crate.
///
/// The trait is deliberately small: the DNSSEC pipeline only ever needs
/// "feed bytes, read digest". Output length is conveyed by the returned
/// `Vec` so that callers can stay object-safe over digest algorithms of
/// different widths (SHA-1 for NSEC3, SHA-256/384 for DS records).
pub trait Digest {
    /// Digest output size in bytes.
    const OUTPUT_LEN: usize;

    /// Create a fresh hasher state.
    fn new() -> Self;

    /// Absorb `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consume the state and produce the digest.
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
