//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! SHA-1 is cryptographically broken for collision resistance, but DNS still
//! depends on it in two protocol-visible places this reproduction needs:
//! NSEC3 owner-name hashing (RFC 5155 defines hash algorithm 1 = SHA-1, the
//! only one ever registered) and DS digest type 1. The implementation is the
//! classic 80-round compression function over 512-bit blocks.

use crate::Digest;

const BLOCK_LEN: usize = 64;

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        if crate::accel::sha1_compress(&mut self.state, block) {
            return;
        }
        Self::compress_scalar(&mut self.state, block);
    }

    /// Portable compression core; also the reference the accelerated
    /// kernel is cross-checked against.
    pub(crate) fn compress_scalar(state: &mut [u32; 5], block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = *state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;

    fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Bypass `update` for the length so `self.len` bookkeeping can't
        // interfere (it is no longer needed).
        let mut block = self.buf;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);

        let mut out = Vec::with_capacity(20);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 999] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }
}
