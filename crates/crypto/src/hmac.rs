//! HMAC (RFC 2104) over any [`Digest`] in this crate.
//!
//! Used by the simulated signature scheme to bind signatures to key
//! material, and available for TSIG-style experiments.

use crate::Digest;

/// Compute `HMAC(key, message)` with hash function `H`.
///
/// Keys longer than the block size are hashed first, exactly as RFC 2104
/// prescribes. The block size is inferred from the digest width (64 bytes
/// for SHA-1/SHA-256, 128 for SHA-384).
pub fn hmac<H: Digest>(key: &[u8], message: &[u8]) -> Vec<u8> {
    let block_len = if H::OUTPUT_LEN > 32 { 128 } else { 64 };

    let mut key_block = vec![0u8; block_len];
    if key.len() > block_len {
        let hashed = H::digest(key);
        key_block[..hashed.len()].copy_from_slice(&hashed);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();

    let mut inner = H::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = H::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sha1, Sha256};

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test case 1 (HMAC-SHA1).
    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac::<Sha1>(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    // RFC 2202 test case 2.
    #[test]
    fn rfc2202_sha1_case2() {
        assert_eq!(
            hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    // RFC 4231 test case 1 (HMAC-SHA256).
    #[test]
    fn rfc4231_sha256_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2.
    #[test]
    fn rfc4231_sha256_case2() {
        assert_eq!(
            hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_sha256_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&hmac::<Sha256>(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }
}
