//! Base 64 (RFC 4648 §4), used by zone-file presentation of DNSKEY
//! public keys and RRSIG signatures.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode with padding, as zone files print key material.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let mut buf = [0u8; 3];
        buf[..chunk.len()].copy_from_slice(chunk);
        let v = u32::from(buf[0]) << 16 | u32::from(buf[1]) << 8 | u32::from(buf[2]);
        let symbols = [
            ALPHABET[(v >> 18) as usize & 0x3f],
            ALPHABET[(v >> 12) as usize & 0x3f],
            ALPHABET[(v >> 6) as usize & 0x3f],
            ALPHABET[v as usize & 0x3f],
        ];
        let keep = chunk.len() + 1;
        for (i, s) in symbols.iter().enumerate() {
            out.push(if i < keep { *s as char } else { '=' });
        }
    }
    out
}

/// Decode, accepting padding and embedded whitespace (zone files wrap
/// long key material across lines).
pub fn decode(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(text.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut bits = 0u8;
    for c in text.bytes() {
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            b'=' => continue,
            c if c.is_ascii_whitespace() => continue,
            _ => return None,
        };
        acc = (acc << 6) | u32::from(v);
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push(((acc >> bits) & 0xff) as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), *enc);
            assert_eq!(decode(enc).as_deref(), Some(*raw));
        }
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(decode("Zm9v\n YmFy").as_deref(), Some(b"foobar".as_slice()));
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode("Zm9*").is_none());
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
