//! The zone container: RRsets indexed by owner name and type.

use crate::rrset::Rrset;
use ede_wire::{Name, Rdata, Record, RrType};
use std::collections::BTreeMap;

/// An authoritative zone: an apex and the RRsets at and below it.
///
/// Names are kept in RFC 4034 canonical order (the `Ord` of
/// [`ede_wire::Name`]), which the NSEC3 chain builder and negative-answer
/// logic rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    apex: Name,
    /// owner → (numeric type → rrset). The inner map is tiny (a handful of
    /// types per name), the outer map is ordered canonically.
    rrsets: BTreeMap<Name, BTreeMap<u16, Rrset>>,
}

impl Zone {
    /// An empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            rrsets: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// Insert one record, merging into an existing RRset of the same
    /// (owner, type) when present.
    pub fn add(&mut self, record: Record) {
        let rtype = record.rtype();
        let by_type = self.rrsets.entry(record.name.clone()).or_default();
        by_type
            .entry(rtype.to_u16())
            .and_modify(|set| set.rdatas.push(record.rdata.clone()))
            .or_insert_with(|| Rrset::new(record.name, record.ttl, record.rdata));
    }

    /// Insert a whole RRset, replacing any existing set of the same key.
    pub fn add_rrset(&mut self, rrset: Rrset) {
        self.rrsets
            .entry(rrset.name.clone())
            .or_default()
            .insert(rrset.rtype.to_u16(), rrset);
    }

    /// Look up the RRset at (name, rtype).
    pub fn get(&self, name: &Name, rtype: RrType) -> Option<&Rrset> {
        self.rrsets.get(name)?.get(&rtype.to_u16())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &Name, rtype: RrType) -> Option<&mut Rrset> {
        self.rrsets.get_mut(name)?.get_mut(&rtype.to_u16())
    }

    /// Remove and return the RRset at (name, rtype).
    pub fn remove(&mut self, name: &Name, rtype: RrType) -> Option<Rrset> {
        let by_type = self.rrsets.get_mut(name)?;
        let removed = by_type.remove(&rtype.to_u16());
        if by_type.is_empty() {
            self.rrsets.remove(name);
        }
        removed
    }

    /// Does any RRset exist at `name`?
    pub fn name_exists(&self, name: &Name) -> bool {
        self.rrsets.contains_key(name)
    }

    /// Does `name` exist either directly or as an empty non-terminal
    /// (some owner exists beneath it)? In RFC 4034 canonical order every
    /// descendant of `name` sorts immediately after it, so one ordered
    /// range probe answers this in O(log n).
    pub fn name_exists_or_ent(&self, name: &Name) -> bool {
        self.rrsets
            .range(name.clone()..)
            .next()
            .is_some_and(|(k, _)| k.is_subdomain_of(name))
    }

    /// The types present at `name`, in numeric order.
    pub fn types_at(&self, name: &Name) -> Vec<RrType> {
        self.rrsets
            .get(name)
            .map(|m| m.keys().map(|&t| RrType::from_u16(t)).collect())
            .unwrap_or_default()
    }

    /// Iterate all owner names in canonical order.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.rrsets.keys()
    }

    /// Iterate all RRsets (canonical owner order, numeric type order).
    pub fn iter(&self) -> impl Iterator<Item = &Rrset> {
        self.rrsets.values().flat_map(|m| m.values())
    }

    /// Mutable iteration over all RRsets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Rrset> {
        self.rrsets.values_mut().flat_map(|m| m.values_mut())
    }

    /// The SOA RRset at the apex.
    pub fn soa(&self) -> Option<&Rrset> {
        self.get(&self.apex, RrType::Soa)
    }

    /// True when `name` is a delegation point (an NS RRset at a non-apex
    /// owner).
    pub fn is_delegation(&self, name: &Name) -> bool {
        name != &self.apex && self.get(name, RrType::Ns).is_some()
    }

    /// The closest delegation point at or above `qname` (strictly below
    /// the apex), if any. Resolution through this zone for `qname` must
    /// be referred there.
    pub fn find_delegation(&self, qname: &Name) -> Option<&Rrset> {
        // Walk from qname up to (but excluding) the apex.
        let mut current = Some(qname.clone());
        let mut found: Option<&Rrset> = None;
        while let Some(name) = current {
            if name == self.apex {
                break;
            }
            if !name.is_subdomain_of(&self.apex) {
                return None;
            }
            if let Some(ns) = self.get(&name, RrType::Ns) {
                // Keep walking up: the *highest* delegation below the apex
                // wins (a zone cut hides everything beneath it).
                found = Some(ns);
            }
            current = name.parent();
        }
        found
    }

    /// True when `name` sits at or below a delegation point (glue —
    /// non-authoritative data that must not be signed or answered
    /// authoritatively).
    pub fn is_glue(&self, name: &Name) -> bool {
        let mut current = name.parent();
        while let Some(n) = current {
            if n == self.apex {
                return false;
            }
            if self.get(&n, RrType::Ns).is_some() {
                return true;
            }
            current = n.parent();
        }
        // Names at a delegation owner itself: address records there are
        // glue too (the NS set is the only authoritative-ish data).
        self.is_delegation(name) && self.get(name, RrType::A).is_some()
            || self.is_delegation(name) && self.get(name, RrType::Aaaa).is_some()
    }

    /// Glue address records (A/AAAA) for a nameserver name, if present in
    /// this zone.
    pub fn glue_for(&self, ns_name: &Name) -> Vec<Record> {
        let mut out = Vec::new();
        for rtype in [RrType::A, RrType::Aaaa] {
            if let Some(set) = self.get(ns_name, rtype) {
                out.extend(set.records());
            }
        }
        out
    }

    /// Convenience used throughout the testbed: add an A record.
    pub fn add_a(&mut self, name: Name, addr: std::net::Ipv4Addr) {
        self.add(Record::new(name, 3600, Rdata::A(addr)));
    }

    /// Convenience: add an AAAA record.
    pub fn add_aaaa(&mut self, name: Name, addr: std::net::Ipv6Addr) {
        self.add(Record::new(name, 3600, Rdata::Aaaa(addr)));
    }

    /// Total number of RRsets (for reports and sanity checks).
    pub fn rrset_count(&self) -> usize {
        self.rrsets.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::rdata::Soa;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn test_zone() -> Zone {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.53".parse().unwrap());
        z.add_a(apex, "192.0.2.80".parse().unwrap());
        // A delegation with glue.
        z.add(Record::new(
            n("child.example.com"),
            3600,
            Rdata::Ns(n("ns.child.example.com")),
        ));
        z.add_a(n("ns.child.example.com"), "192.0.2.54".parse().unwrap());
        z
    }

    #[test]
    fn add_merges_rrsets() {
        let mut z = test_zone();
        z.add_a(n("example.com"), "192.0.2.81".parse().unwrap());
        assert_eq!(z.get(&n("example.com"), RrType::A).unwrap().rdatas.len(), 2);
    }

    #[test]
    fn delegation_detection() {
        let z = test_zone();
        assert!(z.is_delegation(&n("child.example.com")));
        assert!(!z.is_delegation(&n("example.com"))); // apex NS is not a cut
        let deleg = z.find_delegation(&n("www.child.example.com")).unwrap();
        assert_eq!(deleg.name, n("child.example.com"));
        assert!(z.find_delegation(&n("www.example.com")).is_none());
        assert!(z.find_delegation(&n("other.org")).is_none());
    }

    #[test]
    fn glue_classification() {
        let z = test_zone();
        assert!(z.is_glue(&n("ns.child.example.com")));
        assert!(!z.is_glue(&n("ns1.example.com")));
        assert!(!z.is_glue(&n("example.com")));
        assert_eq!(z.glue_for(&n("ns.child.example.com")).len(), 1);
    }

    #[test]
    fn remove_cleans_empty_names() {
        let mut z = test_zone();
        assert!(z.remove(&n("ns1.example.com"), RrType::A).is_some());
        assert!(!z.name_exists(&n("ns1.example.com")));
        assert!(z.remove(&n("ns1.example.com"), RrType::A).is_none());
    }

    #[test]
    fn types_at_apex() {
        let z = test_zone();
        let types = z.types_at(&n("example.com"));
        assert!(types.contains(&RrType::Soa));
        assert!(types.contains(&RrType::Ns));
        assert!(types.contains(&RrType::A));
    }
}
