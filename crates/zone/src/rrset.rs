//! RRsets: a set of records sharing (owner, type), with attached RRSIGs.

use ede_wire::rdata::Rrsig;
use ede_wire::{Name, Rdata, Record, RrType};

/// One RRset plus the RRSIG records covering it.
///
/// DNSSEC operates on RRsets, not individual records: one signature covers
/// the whole set, and validators reassemble the set before checking. Keeping
/// the covering signatures *inside* the set mirrors that and makes the
/// Table 3 mutations ("remove the RRSIG over the A RRset", "corrupt the
/// RRSIG over the DNSKEY RRset") single-object edits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rrset {
    /// Owner name.
    pub name: Name,
    /// RR type of every rdata in the set.
    pub rtype: RrType,
    /// Shared TTL.
    pub ttl: u32,
    /// The member rdatas. Invariant: each `rdata.rtype() == self.rtype`.
    pub rdatas: Vec<Rdata>,
    /// RRSIGs covering this set (empty when unsigned).
    pub sigs: Vec<Rrsig>,
}

impl Rrset {
    /// New, unsigned RRset from one rdata.
    pub fn new(name: Name, ttl: u32, rdata: Rdata) -> Self {
        Rrset {
            name,
            rtype: rdata.rtype(),
            ttl,
            rdatas: vec![rdata],
            sigs: Vec::new(),
        }
    }

    /// New, empty RRset of an explicit type (rdatas added later).
    pub fn empty(name: Name, rtype: RrType, ttl: u32) -> Self {
        Rrset {
            name,
            rtype,
            ttl,
            rdatas: Vec::new(),
            sigs: Vec::new(),
        }
    }

    /// Add an rdata. Panics in debug builds if the type disagrees —
    /// that is always a caller bug, never runtime data.
    pub fn push(&mut self, rdata: Rdata) {
        debug_assert_eq!(rdata.rtype(), self.rtype);
        self.rdatas.push(rdata);
    }

    /// Materialize the data records (without signatures).
    pub fn records(&self) -> impl Iterator<Item = Record> + '_ {
        self.rdatas
            .iter()
            .map(move |rd| Record::new(self.name.clone(), self.ttl, rd.clone()))
    }

    /// Materialize the RRSIG records.
    pub fn sig_records(&self) -> impl Iterator<Item = Record> + '_ {
        self.sigs
            .iter()
            .map(move |sig| Record::new(self.name.clone(), self.ttl, Rdata::Rrsig(sig.clone())))
    }

    /// True when the set holds no rdatas.
    pub fn is_empty(&self) -> bool {
        self.rdatas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_materialize() {
        let mut set = Rrset::new(
            Name::parse("example.com").unwrap(),
            300,
            Rdata::A("192.0.2.1".parse().unwrap()),
        );
        set.push(Rdata::A("192.0.2.2".parse().unwrap()));
        let recs: Vec<Record> = set.records().collect();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.rtype() == RrType::A && r.ttl == 300));
        assert!(set.sig_records().next().is_none());
    }
}
