//! NSEC3 chain generation (RFC 5155).

use crate::rrset::Rrset;
use crate::zone::Zone;
use ede_crypto::{base32, nsec3hash};
use ede_wire::rdata::TypeBitmap;
use ede_wire::{Name, Rdata, RrType};
use std::collections::BTreeSet;

/// NSEC3 parameters used when signing a zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nsec3Config {
    /// Extra hash iterations. RFC 9276 says 0; the testbed's
    /// `nsec3-iter-200` case sets 200 on purpose.
    pub iterations: u16,
    /// Salt, possibly empty.
    pub salt: Vec<u8>,
}

impl Default for Nsec3Config {
    fn default() -> Self {
        Nsec3Config {
            iterations: 0,
            salt: vec![0xab, 0xcd],
        }
    }
}

impl Nsec3Config {
    /// Hash `name` under these parameters, returning the owner label.
    pub fn hash_label(&self, name: &Name) -> String {
        nsec3hash::nsec3_hash_label(&name.to_wire(), &self.salt, self.iterations)
    }

    /// Hash `name`, returning the raw digest (the `next_hashed` form).
    pub fn hash_raw(&self, name: &Name) -> Vec<u8> {
        nsec3hash::nsec3_hash(&name.to_wire(), &self.salt, self.iterations)
    }
}

/// All owner names the NSEC3 chain must cover: every authoritative owner
/// plus empty non-terminals, excluding glue below zone cuts.
fn chain_names(zone: &Zone) -> BTreeSet<Name> {
    let mut names: BTreeSet<Name> = BTreeSet::new();
    for name in zone.names() {
        if zone.is_glue(name) && !zone.is_delegation(name) {
            continue;
        }
        names.insert(name.clone());
        // Empty non-terminals between this owner and the apex.
        let mut current = name.parent();
        while let Some(n) = current {
            if !n.is_subdomain_of(zone.apex()) || n == *zone.apex() {
                break;
            }
            names.insert(n.clone());
            current = n.parent();
        }
    }
    names.insert(zone.apex().clone());
    names
}

/// The type bitmap for one owner (RFC 5155 §7.1 rules).
fn bitmap_for(zone: &Zone, name: &Name, signed: bool) -> TypeBitmap {
    let mut bm = TypeBitmap::new();
    if zone.is_delegation(name) {
        // Delegation point: only NS and (when present) DS are
        // authoritative at the cut; glue addresses are not listed.
        bm.insert(RrType::Ns);
        if zone.get(name, RrType::Ds).is_some() {
            bm.insert(RrType::Ds);
            if signed {
                bm.insert(RrType::Rrsig);
            }
        }
        return bm;
    }
    for t in zone.types_at(name) {
        if t != RrType::Nsec3 {
            bm.insert(t);
        }
    }
    if signed && !bm.is_empty() {
        bm.insert(RrType::Rrsig);
    }
    bm
}

/// Build the NSEC3 chain for `zone` and insert the NSEC3 RRsets plus the
/// apex NSEC3PARAM record. Must run *before* RRSIG generation so that the
/// chain itself gets signed.
pub fn build_chain(zone: &mut Zone, config: &Nsec3Config) {
    let apex = zone.apex().clone();
    let soa_minimum = match zone.soa().and_then(|s| s.rdatas.first()) {
        Some(Rdata::Soa(soa)) => soa.minimum,
        _ => 300,
    };

    // Publish NSEC3PARAM first so the apex bitmap lists it.
    zone.add_rrset(Rrset::new(
        apex.clone(),
        0,
        Rdata::Nsec3param {
            hash_alg: nsec3hash::NSEC3_HASH_ALG_SHA1,
            flags: 0,
            iterations: config.iterations,
            salt: config.salt.clone(),
        },
    ));

    let names = chain_names(zone);
    // (raw hash, source name) sorted by hash — the chain order.
    let mut hashed: Vec<(Vec<u8>, Name)> = names
        .into_iter()
        .map(|n| (config.hash_raw(&n), n))
        .collect();
    hashed.sort();

    let count = hashed.len();
    for i in 0..count {
        let (hash, name) = &hashed[i];
        let (next_hash, _) = &hashed[(i + 1) % count];
        let owner = apex.child(&base32::encode(hash)).expect("hash label fits");
        let rdata = Rdata::Nsec3 {
            hash_alg: nsec3hash::NSEC3_HASH_ALG_SHA1,
            flags: 0,
            iterations: config.iterations,
            salt: config.salt.clone(),
            next_hashed: next_hash.clone(),
            types: bitmap_for(zone, name, true),
        };
        zone.add_rrset(Rrset::new(owner, soa_minimum, rdata));
    }
}

/// Find the NSEC3 RRset in `zone` whose owner hash *matches* `name`
/// exactly (used for NODATA proofs).
pub fn find_matching<'a>(zone: &'a Zone, config: &Nsec3Config, name: &Name) -> Option<&'a Rrset> {
    let owner = zone.apex().child(&config.hash_label(name)).ok()?;
    zone.get(&owner, RrType::Nsec3)
}

/// Find the NSEC3 RRset whose (hash, next-hash) interval *covers* the
/// hash of `name` (used for NXDOMAIN proofs).
pub fn find_covering<'a>(zone: &'a Zone, config: &Nsec3Config, name: &Name) -> Option<&'a Rrset> {
    let target = config.hash_raw(name);
    for rrset in zone.iter() {
        if rrset.rtype != RrType::Nsec3 {
            continue;
        }
        let Some(Rdata::Nsec3 { next_hashed, .. }) = rrset.rdatas.first() else {
            continue;
        };
        let Some(label) = rrset.name.first_label() else {
            continue;
        };
        let Some(owner_hash) = base32::decode(std::str::from_utf8(label).ok()?) else {
            continue;
        };
        let covers = if owner_hash < *next_hashed {
            target > owner_hash && target < *next_hashed
        } else {
            // Wrap-around interval (last chain link).
            target > owner_hash || target < *next_hashed
        };
        if covers {
            return Some(rrset);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::rdata::Soa;
    use ede_wire::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn base_zone() -> Zone {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.53".parse().unwrap());
        z.add_a(apex, "192.0.2.80".parse().unwrap());
        z.add_a(n("www.example.com"), "192.0.2.81".parse().unwrap());
        z
    }

    #[test]
    fn chain_covers_every_name_circularly() {
        let mut z = base_zone();
        let cfg = Nsec3Config::default();
        build_chain(&mut z, &cfg);

        let nsec3s: Vec<&Rrset> = z.iter().filter(|r| r.rtype == RrType::Nsec3).collect();
        // apex, ns1, www — three authoritative names.
        assert_eq!(nsec3s.len(), 3);

        // The next_hashed pointers must form one cycle over the owner set.
        let owners: BTreeSet<Vec<u8>> = nsec3s
            .iter()
            .map(|r| {
                base32::decode(std::str::from_utf8(r.name.first_label().unwrap()).unwrap()).unwrap()
            })
            .collect();
        for r in &nsec3s {
            match r.rdatas.first().unwrap() {
                Rdata::Nsec3 { next_hashed, .. } => assert!(owners.contains(next_hashed)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn param_record_added_at_apex() {
        let mut z = base_zone();
        build_chain(&mut z, &Nsec3Config::default());
        assert!(z.get(&n("example.com"), RrType::Nsec3param).is_some());
    }

    #[test]
    fn matching_and_covering_lookups() {
        let mut z = base_zone();
        let cfg = Nsec3Config::default();
        build_chain(&mut z, &cfg);

        // Existing name: exact match.
        assert!(find_matching(&z, &cfg, &n("www.example.com")).is_some());
        // Non-existent name: a covering interval must exist.
        assert!(find_covering(&z, &cfg, &n("nonexistent.example.com")).is_some());
        // An existing name's hash is never "covered" (it is an endpoint).
        assert!(find_covering(&z, &cfg, &n("www.example.com")).is_none());
    }

    #[test]
    fn apex_bitmap_lists_apex_types() {
        let mut z = base_zone();
        let cfg = Nsec3Config::default();
        build_chain(&mut z, &cfg);
        let apex_match = find_matching(&z, &cfg, &n("example.com")).unwrap();
        match apex_match.rdatas.first().unwrap() {
            Rdata::Nsec3 { types, .. } => {
                assert!(types.contains(RrType::Soa));
                assert!(types.contains(RrType::Ns));
                assert!(types.contains(RrType::A));
                assert!(types.contains(RrType::Nsec3param));
                assert!(!types.contains(RrType::Ds));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn delegation_bitmap_is_ns_and_ds_only() {
        let mut z = base_zone();
        z.add(Record::new(
            n("child.example.com"),
            3600,
            Rdata::Ns(n("ns.child.example.com")),
        ));
        z.add_a(n("ns.child.example.com"), "192.0.2.99".parse().unwrap());
        z.add(Record::new(
            n("child.example.com"),
            3600,
            Rdata::Ds {
                key_tag: 1,
                algorithm: 8,
                digest_type: 2,
                digest: vec![0; 32],
            },
        ));
        let cfg = Nsec3Config::default();
        build_chain(&mut z, &cfg);

        let deleg = find_matching(&z, &cfg, &n("child.example.com")).unwrap();
        match deleg.rdatas.first().unwrap() {
            Rdata::Nsec3 { types, .. } => {
                assert!(types.contains(RrType::Ns));
                assert!(types.contains(RrType::Ds));
                assert!(!types.contains(RrType::A));
                assert!(!types.contains(RrType::Soa));
            }
            _ => unreachable!(),
        }
        // Glue below the cut gets no NSEC3 record of its own.
        assert!(find_matching(&z, &cfg, &n("ns.child.example.com")).is_none());
    }

    #[test]
    fn high_iteration_count_changes_hashes() {
        let cfg0 = Nsec3Config {
            iterations: 0,
            salt: vec![],
        };
        let cfg200 = Nsec3Config {
            iterations: 200,
            salt: vec![],
        };
        assert_ne!(
            cfg0.hash_label(&n("example.com")),
            cfg200.hash_label(&n("example.com"))
        );
    }
}
