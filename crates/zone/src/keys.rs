//! Zone key management: KSK/ZSK pairs, DNSKEY records, DS production.

use crate::canonical::ds_digest_input;
use ede_crypto::simsig::SigningKey;
use ede_crypto::{keytag, Digest, Sha1, Sha256, Sha384};
use ede_wire::{DigestAlg, Name, Rdata};

/// DNSKEY flags value for a Zone Signing Key (Zone Key bit).
pub const FLAGS_ZSK: u16 = 256;
/// DNSKEY flags value for a Key Signing Key (Zone Key + SEP bits).
pub const FLAGS_KSK: u16 = 257;

/// One zone key: the signing key plus its DNSKEY metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneKey {
    /// The (simulated) private key.
    pub signing: SigningKey,
    /// DNSKEY flags (256 = ZSK, 257 = KSK).
    pub flags: u16,
}

impl ZoneKey {
    /// Deterministically derive a key for `apex` with the given role.
    /// `role` is folded into the seed so KSK ≠ ZSK.
    pub fn generate(apex: &Name, role: &str, algorithm: u8, key_bits: u16, flags: u16) -> Self {
        let mut seed = apex.to_wire();
        seed.extend_from_slice(role.as_bytes());
        ZoneKey {
            signing: SigningKey::from_seed(algorithm, key_bits, &seed),
            flags,
        }
    }

    /// The DNSKEY RDATA for this key.
    pub fn dnskey_rdata(&self) -> Rdata {
        Rdata::Dnskey {
            flags: self.flags,
            protocol: 3,
            algorithm: self.signing.algorithm,
            public_key: self.signing.public_key(),
        }
    }

    /// RFC 4034 Appendix B key tag over the DNSKEY RDATA.
    pub fn key_tag(&self) -> u16 {
        let mut buf = Vec::new();
        self.dnskey_rdata().encode(&mut buf, None);
        keytag::key_tag(&buf)
    }

    /// Produce the DS RDATA a parent would publish for this key.
    ///
    /// Digest types 1 (SHA-1), 2 (SHA-256) and 4 (SHA-384) are computed
    /// for real. Type 3 (GOST) — which no modeled validator supports, the
    /// point of the paper's §4.2.10 — is emitted as a SHA-256 digest
    /// relabeled, since its value can never be checked by anyone here.
    /// Unassigned types get a fixed-length placeholder digest.
    pub fn ds_rdata(&self, owner: &Name, digest_type: DigestAlg) -> Rdata {
        let input = ds_digest_input(owner, &self.dnskey_rdata());
        let digest = match digest_type {
            DigestAlg::SHA1 => Sha1::digest(&input),
            DigestAlg::SHA256 | DigestAlg::GOST => Sha256::digest(&input),
            DigestAlg::SHA384 => Sha384::digest(&input),
            _ => Sha256::digest(&input), // unassigned: value is never verified
        };
        Rdata::Ds {
            key_tag: self.key_tag(),
            algorithm: self.signing.algorithm,
            digest_type: digest_type.0,
            digest,
        }
    }
}

/// The KSK/ZSK pair of a signed zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneKeys {
    /// Key Signing Key: matched by the parent's DS, signs the DNSKEY
    /// RRset.
    pub ksk: ZoneKey,
    /// Zone Signing Key: signs everything else.
    pub zsk: ZoneKey,
}

impl ZoneKeys {
    /// Generate a deterministic KSK/ZSK pair for `apex`.
    pub fn generate(apex: &Name, algorithm: u8, key_bits: u16) -> Self {
        ZoneKeys {
            ksk: ZoneKey::generate(apex, "ksk", algorithm, key_bits, FLAGS_KSK),
            zsk: ZoneKey::generate(apex, "zsk", algorithm, key_bits, FLAGS_ZSK),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn ksk_and_zsk_differ() {
        let keys = ZoneKeys::generate(&n("example.com"), 8, 2048);
        assert_ne!(keys.ksk, keys.zsk);
        assert_ne!(keys.ksk.key_tag(), keys.zsk.key_tag());
        assert_eq!(keys.ksk.flags, 257);
        assert_eq!(keys.zsk.flags, 256);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ZoneKeys::generate(&n("example.com"), 13, 256);
        let b = ZoneKeys::generate(&n("example.com"), 13, 256);
        assert_eq!(a, b);
    }

    #[test]
    fn key_tag_tracks_rdata() {
        let keys = ZoneKeys::generate(&n("example.com"), 8, 2048);
        let tag = keys.ksk.key_tag();
        // Changing the flags changes the RDATA and therefore the tag —
        // this is why the no-dnskey-257 testbed case breaks DS matching.
        let mut altered = keys.ksk.clone();
        altered.flags = 256;
        assert_ne!(altered.key_tag(), tag);
    }

    #[test]
    fn ds_digest_lengths() {
        let keys = ZoneKeys::generate(&n("example.com"), 8, 2048);
        let owner = n("example.com");
        for (alg, len) in [
            (DigestAlg::SHA1, 20),
            (DigestAlg::SHA256, 32),
            (DigestAlg::SHA384, 48),
        ] {
            match keys.ksk.ds_rdata(&owner, alg) {
                Rdata::Ds {
                    digest,
                    digest_type,
                    ..
                } => {
                    assert_eq!(digest.len(), len);
                    assert_eq!(digest_type, alg.0);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn ds_matches_key_tag() {
        let keys = ZoneKeys::generate(&n("example.com"), 8, 2048);
        match keys.ksk.ds_rdata(&n("example.com"), DigestAlg::SHA256) {
            Rdata::Ds {
                key_tag, algorithm, ..
            } => {
                assert_eq!(key_tag, keys.ksk.key_tag());
                assert_eq!(algorithm, 8);
            }
            _ => unreachable!(),
        }
    }
}
