//! Misconfiguration mutators — the operations of the paper's Table 3.
//!
//! Each [`Misconfig`] value reproduces one way the authors broke a
//! testbed zone. Mutations are applied *after* signing, which is exactly
//! how the original infrastructure was built (sign with `dnssec-signzone`,
//! then edit the zone file): removing or corrupting a DNSKEY therefore
//! also silently invalidates the stale RRSIG over the DNSKEY RRset, and
//! the reproduction inherits those second-order effects for free.
//!
//! Signature-window cases (`rrsig-exp-*`, `rrsig-not-yet-*`) are the one
//! exception: they **re-sign** with a pathological validity window so the
//! signature bytes genuinely verify and only the window is wrong —
//! matching zones signed with forced inception/expiration times.

use crate::keys::{ZoneKeys, FLAGS_KSK, FLAGS_ZSK};
use crate::signer::{self, DAY, SIM_NOW};
use crate::zone::Zone;
use ede_wire::{DigestAlg, Name, Rdata, RrType};

/// Which RRsets a signature-affecting mutation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeSel {
    /// Every RRset in the zone.
    All,
    /// Only the A RRset at the zone apex.
    OnlyApexA,
}

/// One Table 3 mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misconfig {
    // --- Group 2: DS records at the parent ---------------------------
    /// `no-ds`: correctly signed, but the parent publishes no DS.
    NoDs,
    /// `ds-bad-tag`: DS key tag does not match the KSK.
    DsBadTag,
    /// `ds-bad-key-algo`: DS algorithm field disagrees with the KSK.
    DsBadKeyAlgo,
    /// `ds-unassigned-key-algo`: DS algorithm value 100.
    DsUnassignedKeyAlgo,
    /// `ds-reserved-key-algo`: DS algorithm value 200.
    DsReservedKeyAlgo,
    /// `ds-unassigned-digest-algo`: DS digest type 100.
    DsUnassignedDigestAlgo,
    /// `ds-bogus-digest-value`: DS digest bytes do not match the KSK.
    DsBogusDigestValue,

    // --- Group 3: RRSIG validity -------------------------------------
    /// `rrsig-exp-all` / `rrsig-exp-a`: expired signatures.
    RrsigExpired(TypeSel),
    /// `rrsig-not-yet-all` / `rrsig-not-yet-a`: future signatures.
    RrsigNotYetValid(TypeSel),
    /// `rrsig-no-all` / `rrsig-no-a`: signatures removed.
    RrsigMissing(TypeSel),
    /// `rrsig-exp-before-all` / `rrsig-exp-before-a`: expiration earlier
    /// than inception.
    RrsigExpiredBeforeValid(TypeSel),

    // --- Group 4: NSEC3 ----------------------------------------------
    /// `nsec3-missing`: the whole NSEC3 chain removed.
    Nsec3Missing,
    /// `bad-nsec3-hash`: hashed owner names mangled.
    BadNsec3Hash,
    /// `bad-nsec3-next`: next-hashed fields mangled.
    BadNsec3Next,
    /// `bad-nsec3-rrsig`: RRSIGs over NSEC3 RRsets corrupted.
    BadNsec3Rrsig,
    /// `nsec3-rrsig-missing`: RRSIGs over NSEC3 RRsets removed.
    Nsec3RrsigMissing,
    /// `nsec3param-missing`: the apex NSEC3PARAM removed.
    Nsec3ParamMissing,
    /// `bad-nsec3param-salt`: NSEC3PARAM salt disagrees with the chain.
    BadNsec3ParamSalt,
    /// `no-nsec3param-nsec3`: both NSEC3PARAM and the chain removed.
    NoNsec3ParamNsec3,

    // --- Group 5: DNSKEY ----------------------------------------------
    /// `no-zsk`: ZSK removed from the DNSKEY RRset.
    NoZsk,
    /// `bad-zsk`: ZSK public key corrupted.
    BadZsk,
    /// `no-ksk`: KSK removed from the DNSKEY RRset.
    NoKsk,
    /// `no-rrsig-ksk`: the KSK-made RRSIG over the DNSKEY RRset removed.
    NoRrsigKsk,
    /// `bad-rrsig-ksk`: that RRSIG corrupted.
    BadRrsigKsk,
    /// `bad-ksk`: KSK public key corrupted.
    BadKsk,
    /// `no-rrsig-dnskey`: every RRSIG over the DNSKEY RRset removed.
    NoRrsigDnskey,
    /// `bad-rrsig-dnskey`: every RRSIG over the DNSKEY RRset corrupted.
    BadRrsigDnskey,
    /// `no-dnskey-256`: the ZSK's Zone Key bit cleared.
    NoZoneKeyBitZsk,
    /// `no-dnskey-257`: the KSK's Zone Key bit cleared.
    NoZoneKeyBitKsk,
    /// `no-dnskey-256-257`: both Zone Key bits cleared.
    NoZoneKeyBitBoth,
    /// `bad-zsk-algo`: ZSK algorithm number swapped to another assigned
    /// algorithm.
    BadZskAlgo,
    /// `unassigned-zsk-algo`: ZSK algorithm number set to 100.
    UnassignedZskAlgo,
    /// `reserved-zsk-algo`: ZSK algorithm number set to 200.
    ReservedZskAlgo,
}

impl Misconfig {
    /// Apply this mutation to a signed zone.
    pub fn apply(&self, zone: &mut Zone, keys: &ZoneKeys) {
        let apex = zone.apex().clone();
        let expired = (SIM_NOW - 60 * DAY, SIM_NOW - 30 * DAY);
        let future = (SIM_NOW + 30 * DAY, SIM_NOW + 60 * DAY);
        let inverted = (SIM_NOW + 30 * DAY, SIM_NOW - 30 * DAY);

        match self {
            // DS-side cases mutate nothing in the child zone.
            Misconfig::NoDs
            | Misconfig::DsBadTag
            | Misconfig::DsBadKeyAlgo
            | Misconfig::DsUnassignedKeyAlgo
            | Misconfig::DsReservedKeyAlgo
            | Misconfig::DsUnassignedDigestAlgo
            | Misconfig::DsBogusDigestValue => {}

            Misconfig::RrsigExpired(sel) => resign_selected(zone, keys, *sel, expired),
            Misconfig::RrsigNotYetValid(sel) => resign_selected(zone, keys, *sel, future),
            Misconfig::RrsigExpiredBeforeValid(sel) => resign_selected(zone, keys, *sel, inverted),
            Misconfig::RrsigMissing(sel) => match sel {
                TypeSel::All => {
                    for set in zone.iter_mut() {
                        set.sigs.clear();
                    }
                }
                TypeSel::OnlyApexA => {
                    if let Some(set) = zone.get_mut(&apex, RrType::A) {
                        set.sigs.clear();
                    }
                }
            },

            Misconfig::Nsec3Missing => remove_nsec3_chain(zone),
            Misconfig::BadNsec3Hash => {
                // Re-own every NSEC3 RRset under a mangled hash label.
                let nsec3_names: Vec<Name> = zone
                    .iter()
                    .filter(|s| s.rtype == RrType::Nsec3)
                    .map(|s| s.name.clone())
                    .collect();
                for name in nsec3_names {
                    if let Some(mut set) = zone.remove(&name, RrType::Nsec3) {
                        let label = name
                            .first_label()
                            .map(mangle_hash_label)
                            .unwrap_or_else(|| "0000000000000000000000000000000v".into());
                        let new_owner = apex.child(&label).expect("label fits");
                        set.name = new_owner;
                        zone.add_rrset(set);
                    }
                }
            }
            Misconfig::BadNsec3Next => {
                // Point every link's next-hash at "owner + 1": the
                // resulting open intervals (H, H+1) contain no 20-byte
                // value, so no name can ever be covered — the chain is
                // deterministically broken.
                for set in zone.iter_mut() {
                    if set.rtype != RrType::Nsec3 {
                        continue;
                    }
                    let owner_hash = set
                        .name
                        .first_label()
                        .and_then(|l| std::str::from_utf8(l).ok())
                        .and_then(ede_crypto::base32::decode);
                    if let Some(mut hash) = owner_hash {
                        for b in hash.iter_mut().rev() {
                            let (v, carry) = b.overflowing_add(1);
                            *b = v;
                            if !carry {
                                break;
                            }
                        }
                        for rd in &mut set.rdatas {
                            if let Rdata::Nsec3 { next_hashed, .. } = rd {
                                *next_hashed = hash.clone();
                            }
                        }
                    }
                }
            }
            Misconfig::BadNsec3Rrsig => {
                for set in zone.iter_mut() {
                    if set.rtype == RrType::Nsec3 {
                        corrupt_sigs(set);
                    }
                }
            }
            Misconfig::Nsec3RrsigMissing => {
                for set in zone.iter_mut() {
                    if set.rtype == RrType::Nsec3 {
                        set.sigs.clear();
                    }
                }
            }
            Misconfig::Nsec3ParamMissing => {
                zone.remove(&apex, RrType::Nsec3param);
            }
            Misconfig::BadNsec3ParamSalt => {
                if let Some(set) = zone.get_mut(&apex, RrType::Nsec3param) {
                    for rd in &mut set.rdatas {
                        if let Rdata::Nsec3param { salt, .. } = rd {
                            // A salt the chain was definitely not hashed
                            // with.
                            *salt = vec![0xde, 0xad, 0xbe, 0xef];
                        }
                    }
                }
            }
            Misconfig::NoNsec3ParamNsec3 => {
                zone.remove(&apex, RrType::Nsec3param);
                remove_nsec3_chain(zone);
            }

            Misconfig::NoZsk => remove_dnskey(zone, &apex, FLAGS_ZSK),
            Misconfig::NoKsk => remove_dnskey(zone, &apex, FLAGS_KSK),
            Misconfig::BadZsk => corrupt_dnskey(zone, &apex, FLAGS_ZSK),
            Misconfig::BadKsk => corrupt_dnskey(zone, &apex, FLAGS_KSK),
            Misconfig::NoRrsigKsk => {
                let ksk_tag = keys.ksk.key_tag();
                if let Some(set) = zone.get_mut(&apex, RrType::Dnskey) {
                    set.sigs.retain(|s| s.key_tag != ksk_tag);
                }
            }
            Misconfig::BadRrsigKsk => {
                let ksk_tag = keys.ksk.key_tag();
                if let Some(set) = zone.get_mut(&apex, RrType::Dnskey) {
                    for sig in set.sigs.iter_mut().filter(|s| s.key_tag == ksk_tag) {
                        if let Some(b) = sig.signature.first_mut() {
                            *b ^= 0xff;
                        }
                    }
                }
            }
            Misconfig::NoRrsigDnskey => {
                if let Some(set) = zone.get_mut(&apex, RrType::Dnskey) {
                    set.sigs.clear();
                }
            }
            Misconfig::BadRrsigDnskey => {
                if let Some(set) = zone.get_mut(&apex, RrType::Dnskey) {
                    corrupt_sigs(set);
                }
            }
            Misconfig::NoZoneKeyBitZsk => clear_zone_key_bit(zone, &apex, FLAGS_ZSK),
            Misconfig::NoZoneKeyBitKsk => clear_zone_key_bit(zone, &apex, FLAGS_KSK),
            Misconfig::NoZoneKeyBitBoth => {
                clear_zone_key_bit(zone, &apex, FLAGS_ZSK);
                clear_zone_key_bit(zone, &apex, FLAGS_KSK);
            }
            Misconfig::BadZskAlgo => swap_zsk_algorithm(zone, &apex, 13),
            Misconfig::UnassignedZskAlgo => swap_zsk_algorithm(zone, &apex, 100),
            Misconfig::ReservedZskAlgo => swap_zsk_algorithm(zone, &apex, 200),
        }
    }

    /// The DS RDATA(s) the parent zone should publish for a child mutated
    /// with this misconfiguration. The default (for child-side cases) is
    /// the correct SHA-256 DS of the KSK.
    pub fn parent_ds(&self, keys: &ZoneKeys, child_apex: &Name) -> Vec<Rdata> {
        let correct = keys.ksk.ds_rdata(child_apex, DigestAlg::SHA256);
        match self {
            Misconfig::NoDs => Vec::new(),
            Misconfig::DsBadTag => vec![patch_ds(correct, |tag, alg, dt, _| {
                (tag.wrapping_add(1), alg, dt, None)
            })],
            Misconfig::DsBadKeyAlgo => {
                // Algorithm field disagrees with the KSK's actual
                // algorithm but is itself a valid, assigned algorithm.
                let other = if keys.ksk.signing.algorithm == 13 {
                    8
                } else {
                    13
                };
                vec![patch_ds(correct, move |tag, _, dt, _| {
                    (tag, other, dt, None)
                })]
            }
            Misconfig::DsUnassignedKeyAlgo => {
                vec![patch_ds(correct, |tag, _, dt, _| (tag, 100, dt, None))]
            }
            Misconfig::DsReservedKeyAlgo => {
                vec![patch_ds(correct, |tag, _, dt, _| (tag, 200, dt, None))]
            }
            Misconfig::DsUnassignedDigestAlgo => {
                vec![patch_ds(correct, |tag, alg, _, _| (tag, alg, 100, None))]
            }
            Misconfig::DsBogusDigestValue => vec![patch_ds(correct, |tag, alg, dt, digest| {
                let mut d = digest;
                for b in &mut d {
                    *b ^= 0xa5;
                }
                (tag, alg, dt, Some(d))
            })],
            _ => vec![correct],
        }
    }

    /// Dotted label used for this misconfiguration in the paper
    /// (Table 2/3), for reports.
    pub fn is_parent_side(&self) -> bool {
        matches!(
            self,
            Misconfig::NoDs
                | Misconfig::DsBadTag
                | Misconfig::DsBadKeyAlgo
                | Misconfig::DsUnassignedKeyAlgo
                | Misconfig::DsReservedKeyAlgo
                | Misconfig::DsUnassignedDigestAlgo
                | Misconfig::DsBogusDigestValue
        )
    }
}

/// Re-sign the selected RRsets with `window`.
fn resign_selected(zone: &mut Zone, keys: &ZoneKeys, sel: TypeSel, window: (u32, u32)) {
    match sel {
        TypeSel::All => signer::resign_all(zone, keys, window),
        TypeSel::OnlyApexA => {
            let apex = zone.apex().clone();
            signer::resign_rrset(zone, &apex, RrType::A, keys, window);
        }
    }
}

/// Remove every NSEC3 RRset (the chain), leaving NSEC3PARAM alone.
fn remove_nsec3_chain(zone: &mut Zone) {
    let names: Vec<Name> = zone
        .iter()
        .filter(|s| s.rtype == RrType::Nsec3)
        .map(|s| s.name.clone())
        .collect();
    for name in names {
        zone.remove(&name, RrType::Nsec3);
    }
}

/// Flip the leading byte of every signature over `set`.
fn corrupt_sigs(set: &mut crate::rrset::Rrset) {
    for sig in &mut set.sigs {
        if let Some(b) = sig.signature.first_mut() {
            *b ^= 0xff;
        }
    }
}

/// Remove the DNSKEY rdata with the given flags value from the apex
/// DNSKEY RRset. The stale RRSIGs over the set remain — and no longer
/// verify, exactly as post-sign zone-file editing behaves.
fn remove_dnskey(zone: &mut Zone, apex: &Name, flags: u16) {
    if let Some(set) = zone.get_mut(apex, RrType::Dnskey) {
        set.rdatas
            .retain(|rd| !matches!(rd, Rdata::Dnskey { flags: f, .. } if *f == flags));
    }
}

/// Corrupt the public key bytes of the DNSKEY with the given flags.
fn corrupt_dnskey(zone: &mut Zone, apex: &Name, flags: u16) {
    if let Some(set) = zone.get_mut(apex, RrType::Dnskey) {
        for rd in &mut set.rdatas {
            if let Rdata::Dnskey {
                flags: f,
                public_key,
                ..
            } = rd
            {
                if *f == flags {
                    for b in public_key.iter_mut().take(8) {
                        *b ^= 0x55;
                    }
                }
            }
        }
    }
}

/// Clear the Zone Key bit (0x0100) of the DNSKEY currently carrying
/// `flags`, keeping any SEP bit.
fn clear_zone_key_bit(zone: &mut Zone, apex: &Name, flags: u16) {
    if let Some(set) = zone.get_mut(apex, RrType::Dnskey) {
        for rd in &mut set.rdatas {
            if let Rdata::Dnskey { flags: f, .. } = rd {
                if *f == flags {
                    *f &= !0x0100;
                }
            }
        }
    }
}

/// Rewrite the ZSK's algorithm number in the published DNSKEY RRset.
fn swap_zsk_algorithm(zone: &mut Zone, apex: &Name, new_alg: u8) {
    if let Some(set) = zone.get_mut(apex, RrType::Dnskey) {
        for rd in &mut set.rdatas {
            if let Rdata::Dnskey {
                flags, algorithm, ..
            } = rd
            {
                if *flags == FLAGS_ZSK {
                    *algorithm = new_alg;
                }
            }
        }
    }
}

/// Rebuild a DS RDATA with patched fields.
fn patch_ds(
    ds: Rdata,
    patch: impl FnOnce(u16, u8, u8, Vec<u8>) -> (u16, u8, u8, Option<Vec<u8>>),
) -> Rdata {
    match ds {
        Rdata::Ds {
            key_tag,
            algorithm,
            digest_type,
            digest,
        } => {
            let (tag, alg, dt, new_digest) = patch(key_tag, algorithm, digest_type, digest.clone());
            Rdata::Ds {
                key_tag: tag,
                algorithm: alg,
                digest_type: dt,
                digest: new_digest.unwrap_or(digest),
            }
        }
        other => other,
    }
}

/// Mangle a base32hex hash label while keeping it a valid label.
fn mangle_hash_label(label: &[u8]) -> String {
    let mut out: Vec<u8> = label.to_vec();
    for b in out.iter_mut() {
        *b = match *b {
            b'0'..=b'8' => *b + 1,
            b'9' => b'a',
            b'a'..=b'u' => *b + 1,
            _ => b'0',
        };
    }
    String::from_utf8(out).expect("ascii stays ascii")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, SignerConfig};
    use ede_wire::rdata::Soa;
    use ede_wire::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn signed_zone() -> (Zone, ZoneKeys) {
        let apex = n("case.example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.case.example.com"),
                rname: n("hostmaster.case.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.case.example.com")),
        ));
        z.add_a(n("ns1.case.example.com"), "192.0.2.10".parse().unwrap());
        z.add_a(apex.clone(), "192.0.2.11".parse().unwrap());
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        sign_zone(&mut z, &keys, &SignerConfig::default());
        (z, keys)
    }

    #[test]
    fn rrsig_expired_only_a() {
        let (mut z, keys) = signed_zone();
        Misconfig::RrsigExpired(TypeSel::OnlyApexA).apply(&mut z, &keys);
        let apex = n("case.example.com");
        let a = z.get(&apex, RrType::A).unwrap();
        assert!(a.sigs[0].expiration < SIM_NOW);
        // SOA untouched.
        let soa = z.get(&apex, RrType::Soa).unwrap();
        assert!(soa.sigs[0].expiration > SIM_NOW);
    }

    #[test]
    fn rrsig_exp_before_valid_inverts_window() {
        let (mut z, keys) = signed_zone();
        Misconfig::RrsigExpiredBeforeValid(TypeSel::All).apply(&mut z, &keys);
        let a = z.get(&n("case.example.com"), RrType::A).unwrap();
        assert!(a.sigs[0].expiration < a.sigs[0].inception);
    }

    #[test]
    fn rrsig_missing_clears_sigs() {
        let (mut z, keys) = signed_zone();
        Misconfig::RrsigMissing(TypeSel::All).apply(&mut z, &keys);
        assert!(z.iter().all(|s| s.sigs.is_empty()));
    }

    #[test]
    fn nsec3_chain_removal() {
        let (mut z, keys) = signed_zone();
        assert!(z.iter().any(|s| s.rtype == RrType::Nsec3));
        Misconfig::Nsec3Missing.apply(&mut z, &keys);
        assert!(!z.iter().any(|s| s.rtype == RrType::Nsec3));
        // NSEC3PARAM stays.
        assert!(z.get(&n("case.example.com"), RrType::Nsec3param).is_some());
    }

    #[test]
    fn bad_nsec3_hash_moves_owners() {
        let (mut z, keys) = signed_zone();
        let before: Vec<Name> = z
            .iter()
            .filter(|s| s.rtype == RrType::Nsec3)
            .map(|s| s.name.clone())
            .collect();
        Misconfig::BadNsec3Hash.apply(&mut z, &keys);
        let after: Vec<Name> = z
            .iter()
            .filter(|s| s.rtype == RrType::Nsec3)
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(before.len(), after.len());
        for name in &after {
            assert!(!before.contains(name), "owner {name} should have moved");
        }
    }

    #[test]
    fn no_zsk_removes_only_zsk() {
        let (mut z, keys) = signed_zone();
        Misconfig::NoZsk.apply(&mut z, &keys);
        let dnskey = z.get(&n("case.example.com"), RrType::Dnskey).unwrap();
        assert_eq!(dnskey.rdatas.len(), 1);
        match &dnskey.rdatas[0] {
            Rdata::Dnskey { flags, .. } => assert_eq!(*flags, FLAGS_KSK),
            _ => unreachable!(),
        }
        // The stale KSK signature is still attached (and now invalid).
        assert!(!dnskey.sigs.is_empty());
    }

    #[test]
    fn no_rrsig_ksk_keeps_zsk_sig() {
        let (mut z, keys) = signed_zone();
        Misconfig::NoRrsigKsk.apply(&mut z, &keys);
        let dnskey = z.get(&n("case.example.com"), RrType::Dnskey).unwrap();
        assert_eq!(dnskey.sigs.len(), 1);
        assert_eq!(dnskey.sigs[0].key_tag, keys.zsk.key_tag());
    }

    #[test]
    fn zone_key_bit_clearing_changes_tag() {
        let (mut z, keys) = signed_zone();
        Misconfig::NoZoneKeyBitKsk.apply(&mut z, &keys);
        let dnskey = z.get(&n("case.example.com"), RrType::Dnskey).unwrap();
        let patched = dnskey
            .rdatas
            .iter()
            .find_map(|rd| match rd {
                Rdata::Dnskey { flags, .. } if *flags & 0x0100 == 0 => Some(*flags),
                _ => None,
            })
            .expect("one key lost its zone bit");
        assert_eq!(patched, 1); // SEP bit survives
    }

    #[test]
    fn ds_policies() {
        let (_z, keys) = signed_zone();
        let apex = n("case.example.com");
        let correct_tag = keys.ksk.key_tag();

        assert!(Misconfig::NoDs.parent_ds(&keys, &apex).is_empty());

        match &Misconfig::DsBadTag.parent_ds(&keys, &apex)[0] {
            Rdata::Ds { key_tag, .. } => assert_ne!(*key_tag, correct_tag),
            _ => unreachable!(),
        }
        match &Misconfig::DsUnassignedKeyAlgo.parent_ds(&keys, &apex)[0] {
            Rdata::Ds { algorithm, .. } => assert_eq!(*algorithm, 100),
            _ => unreachable!(),
        }
        match &Misconfig::DsReservedKeyAlgo.parent_ds(&keys, &apex)[0] {
            Rdata::Ds { algorithm, .. } => assert_eq!(*algorithm, 200),
            _ => unreachable!(),
        }
        match &Misconfig::DsUnassignedDigestAlgo.parent_ds(&keys, &apex)[0] {
            Rdata::Ds { digest_type, .. } => assert_eq!(*digest_type, 100),
            _ => unreachable!(),
        }
        // Child-side misconfigs publish the correct DS.
        match &Misconfig::NoZsk.parent_ds(&keys, &apex)[0] {
            Rdata::Ds {
                key_tag,
                algorithm,
                digest_type,
                ..
            } => {
                assert_eq!(*key_tag, correct_tag);
                assert_eq!(*algorithm, 8);
                assert_eq!(*digest_type, 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn bogus_digest_differs_from_correct() {
        let (_z, keys) = signed_zone();
        let apex = n("case.example.com");
        let correct = keys.ksk.ds_rdata(&apex, DigestAlg::SHA256);
        let bogus = &Misconfig::DsBogusDigestValue.parent_ds(&keys, &apex)[0];
        match (correct, bogus) {
            (Rdata::Ds { digest: a, .. }, Rdata::Ds { digest: b, .. }) => assert_ne!(&a, b),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parent_side_classification() {
        assert!(Misconfig::NoDs.is_parent_side());
        assert!(Misconfig::DsBogusDigestValue.is_parent_side());
        assert!(!Misconfig::NoZsk.is_parent_side());
        assert!(!Misconfig::RrsigExpired(TypeSel::All).is_parent_side());
    }

    #[test]
    fn mangled_label_is_valid_base32_alphabet() {
        let label = b"0p9mhaveqvm6t7vbl5lop2u3t2rp3tom";
        let mangled = mangle_hash_label(label);
        assert_eq!(mangled.len(), label.len());
        assert_ne!(mangled.as_bytes(), label);
        assert!(mangled.bytes().all(|b| b.is_ascii_alphanumeric()));
    }
}
