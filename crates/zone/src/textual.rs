//! Zone-file (RFC 1035 master file) presentation.
//!
//! The paper's artifact release includes "instructions on how to set up
//! all the misconfigured domains"; this module lets the reproduction
//! emit every zone it builds — including the deliberately broken ones —
//! in standard master-file syntax that `named-checkzone`-class tooling
//! can read.

use crate::rrset::Rrset;
use crate::zone::Zone;
use ede_crypto::{base32, base64};
use ede_wire::rdata::{Rdata, Rrsig};
use ede_wire::Name;
use std::fmt::Write as _;

fn hex(data: &[u8]) -> String {
    if data.is_empty() {
        return "-".into(); // empty NSEC3 salt presentation
    }
    data.iter().map(|b| format!("{b:02X}")).collect()
}

/// RRSIG timestamps print as YYYYMMDDHHmmSS (RFC 4034 §3.2).
fn sig_time(epoch: u32) -> String {
    // Civil-time conversion (proleptic Gregorian), no external deps.
    let days = epoch / 86_400;
    let secs = epoch % 86_400;
    let (h, m, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
    // Howard Hinnant's days-to-civil algorithm.
    let z = i64::from(days) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}{month:02}{d:02}{h:02}{m:02}{s:02}")
}

/// Present one RDATA in zone-file syntax.
pub fn rdata_text(rdata: &Rdata) -> String {
    match rdata {
        Rdata::A(a) => a.to_string(),
        Rdata::Aaaa(a) => a.to_string(),
        Rdata::Ns(n) | Rdata::Cname(n) | Rdata::Ptr(n) => n.to_string(),
        Rdata::Mx {
            preference,
            exchange,
        } => format!("{preference} {exchange}"),
        Rdata::Txt(strings) => strings
            .iter()
            .map(|s| format!("\"{}\"", String::from_utf8_lossy(s)))
            .collect::<Vec<_>>()
            .join(" "),
        Rdata::Soa(soa) => format!(
            "{} {} {} {} {} {} {}",
            soa.mname, soa.rname, soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum
        ),
        Rdata::Ds {
            key_tag,
            algorithm,
            digest_type,
            digest,
        } => {
            format!("{key_tag} {algorithm} {digest_type} {}", hex(digest))
        }
        Rdata::Dnskey {
            flags,
            protocol,
            algorithm,
            public_key,
        } => {
            format!(
                "{flags} {protocol} {algorithm} {}",
                base64::encode(public_key)
            )
        }
        Rdata::Rrsig(sig) => rrsig_text(sig),
        Rdata::Nsec { next, types } => format!("{next} {types}"),
        Rdata::Nsec3 {
            hash_alg,
            flags,
            iterations,
            salt,
            next_hashed,
            types,
        } => format!(
            "{hash_alg} {flags} {iterations} {} {} {types}",
            hex(salt),
            base32::encode(next_hashed).to_uppercase(),
        ),
        Rdata::Nsec3param {
            hash_alg,
            flags,
            iterations,
            salt,
        } => {
            format!("{hash_alg} {flags} {iterations} {}", hex(salt))
        }
        Rdata::Unknown { data, .. } => format!("\\# {} {}", data.len(), hex(data)),
    }
}

fn rrsig_text(sig: &Rrsig) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {}",
        sig.type_covered,
        sig.algorithm,
        sig.labels,
        sig.original_ttl,
        sig_time(sig.expiration),
        sig_time(sig.inception),
        sig.key_tag,
        sig.signer,
        base64::encode(&sig.signature),
    )
}

fn write_rrset(out: &mut String, set: &Rrset) {
    for rd in &set.rdatas {
        let _ = writeln!(
            out,
            "{:<40} {:>6} IN {:<10} {}",
            set.name.to_string(),
            set.ttl,
            set.rtype.to_string(),
            rdata_text(rd)
        );
    }
    for sig in &set.sigs {
        let _ = writeln!(
            out,
            "{:<40} {:>6} IN {:<10} {}",
            set.name.to_string(),
            set.ttl,
            "RRSIG",
            rrsig_text(sig)
        );
    }
}

/// Render a whole zone as a master file: `$ORIGIN`, SOA first, then every
/// RRset in canonical order.
pub fn zone_to_master_file(zone: &Zone) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$ORIGIN {}", zone.apex());
    if let Some(soa) = zone.soa() {
        write_rrset(&mut out, soa);
    }
    for set in zone.iter() {
        if set.rtype == ede_wire::RrType::Soa && set.name == *zone.apex() {
            continue; // already printed first
        }
        write_rrset(&mut out, set);
    }
    out
}

/// Render only the delegation-relevant parent-side records for a child
/// (NS, DS, glue) — the "what to publish at your registrar" view.
pub fn delegation_text(zone: &Zone, child: &Name) -> String {
    let mut out = String::new();
    for set in zone.iter() {
        let relevant = set.name == *child
            || (set.name.is_subdomain_of(child)
                && matches!(set.rdatas.first(), Some(Rdata::A(_)) | Some(Rdata::Aaaa(_))));
        if relevant {
            write_rrset(&mut out, set);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, SignerConfig};
    use crate::ZoneKeys;
    use ede_wire::rdata::Soa;
    use ede_wire::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn signed_zone() -> Zone {
        let apex = n("file.example");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.file.example"),
                rname: n("hostmaster.file.example"),
                serial: 2023051501,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.file.example")),
        ));
        z.add_a(n("ns1.file.example"), "192.0.2.1".parse().unwrap());
        z.add_a(apex, "192.0.2.2".parse().unwrap());
        let keys = ZoneKeys::generate(&n("file.example"), 8, 2048);
        sign_zone(&mut z, &keys, &SignerConfig::default());
        z
    }

    #[test]
    fn master_file_has_all_record_types() {
        let text = zone_to_master_file(&signed_zone());
        assert!(text.starts_with("$ORIGIN file.example.\n"));
        for rtype in ["SOA", "NS", "A", "DNSKEY", "RRSIG", "NSEC3", "NSEC3PARAM"] {
            assert!(text.contains(rtype), "missing {rtype} in:\n{text}");
        }
        // SOA appears on the first record line.
        let first_record = text.lines().nth(1).unwrap();
        assert!(first_record.contains(" SOA "), "{first_record}");
    }

    #[test]
    fn rrsig_timestamps_are_calendar_format() {
        let text = zone_to_master_file(&signed_zone());
        let rrsig_line = text.lines().find(|l| l.contains(" RRSIG ")).unwrap();
        // Window is SIM_NOW ± 30 days (2023-04-15 .. 2023-06-14).
        assert!(rrsig_line.contains("20230614000000"), "{rrsig_line}");
        assert!(rrsig_line.contains("20230415000000"), "{rrsig_line}");
    }

    #[test]
    fn sig_time_epoch_sanity() {
        assert_eq!(sig_time(0), "19700101000000");
        assert_eq!(sig_time(1_684_108_800), "20230515000000");
    }

    #[test]
    fn ds_and_nsec3_presentation() {
        let z = signed_zone();
        let keys = ZoneKeys::generate(&n("file.example"), 8, 2048);
        let ds = keys
            .ksk
            .ds_rdata(&n("file.example"), ede_wire::DigestAlg::SHA256);
        let text = rdata_text(&ds);
        let fields: Vec<&str> = text.split_whitespace().collect();
        assert_eq!(fields.len(), 4);
        assert_eq!(fields[1], "8");
        assert_eq!(fields[2], "2");
        assert_eq!(fields[3].len(), 64); // 32-byte digest in hex

        let nsec3_line = zone_to_master_file(&z)
            .lines()
            .find(|l| l.contains(" NSEC3 "))
            .unwrap()
            .to_string();
        assert!(nsec3_line.contains(" 1 0 0 ABCD "), "{nsec3_line}");
    }

    #[test]
    fn empty_salt_presents_as_dash() {
        let rd = Rdata::Nsec3param {
            hash_alg: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
        };
        assert_eq!(rdata_text(&rd), "1 0 0 -");
    }
}
