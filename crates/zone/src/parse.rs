//! Master-file parsing — the inverse of [`crate::textual`].
//!
//! Accepts the dialect this library emits (absolute owner names, explicit
//! TTL and class, one record per line, `$ORIGIN` header) plus comments
//! and blank lines. Together with the renderer this gives the testbed a
//! lossless text round trip: every zone — including the deliberately
//! broken ones — can be exported, stored, edited, and reloaded.

use crate::zone::Zone;
use ede_crypto::{base32, base64};
use ede_wire::rdata::{Rdata, Rrsig, Soa, TypeBitmap};
use ede_wire::{Name, RrType};
use std::fmt;

/// Errors from [`parse_master_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The structured cause of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// Malformed RRSIG timestamp (must be `YYYYMMDDHHmmSS`).
    BadTimestamp {
        /// The offending text.
        text: String,
    },
    /// Timestamp outside the u32 epoch range.
    TimestampOutOfRange {
        /// The offending text.
        text: String,
    },
    /// Malformed hexadecimal string.
    BadHex {
        /// The offending text.
        text: String,
    },
    /// Malformed domain name.
    BadName {
        /// The offending text.
        text: String,
        /// Why the name parser rejected it.
        reason: String,
    },
    /// A numeric or otherwise typed field failed to parse.
    BadField {
        /// What the field is (e.g. "TTL", "key tag").
        what: &'static str,
        /// The offending text.
        text: String,
    },
    /// Malformed IP address in an A/AAAA record.
    BadAddress {
        /// Address family: "IPv4" or "IPv6".
        family: &'static str,
    },
    /// Malformed base64/base32 blob.
    BadEncoding {
        /// What the blob is (e.g. "base64 public key").
        what: &'static str,
    },
    /// Unknown RR-type mnemonic.
    UnknownType {
        /// The offending mnemonic.
        text: String,
    },
    /// Too few RDATA fields for the record type.
    MissingFields {
        /// The record type being parsed.
        rtype: RrType,
        /// Fields required.
        need: usize,
        /// Fields present.
        got: usize,
    },
    /// A type this parser has no RDATA syntax for, without the RFC 3597
    /// `\#` escape.
    UnsupportedRdata {
        /// The record type.
        rtype: RrType,
    },
    /// Record line shorter than `owner TTL class type`.
    ShortRecord,
    /// A class other than `IN`.
    UnsupportedClass {
        /// The offending class text.
        text: String,
    },
    /// The file never declared `$ORIGIN`.
    MissingOrigin,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::BadTimestamp { text } => write!(f, "bad RRSIG timestamp {text:?}"),
            ParseErrorKind::TimestampOutOfRange { text } => {
                write!(f, "timestamp {text:?} out of range")
            }
            ParseErrorKind::BadHex { text } => write!(f, "bad hex {text:?}"),
            ParseErrorKind::BadName { text, reason } => write!(f, "bad name {text:?}: {reason}"),
            ParseErrorKind::BadField { what, text } => write!(f, "bad {what} {text:?}"),
            ParseErrorKind::BadAddress { family } => write!(f, "bad {family} address"),
            ParseErrorKind::BadEncoding { what } => write!(f, "bad {what}"),
            ParseErrorKind::UnknownType { text } => write!(f, "unknown RR type {text:?}"),
            ParseErrorKind::MissingFields { rtype, need, got } => {
                write!(f, "{rtype} needs {need} fields, got {got}")
            }
            ParseErrorKind::UnsupportedRdata { rtype } => {
                write!(f, "unsupported type {rtype} without \\# syntax")
            }
            ParseErrorKind::ShortRecord => write!(f, "record needs owner, TTL, class, type"),
            ParseErrorKind::UnsupportedClass { text } => write!(f, "unsupported class {text:?}"),
            ParseErrorKind::MissingOrigin => write!(f, "missing $ORIGIN"),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, kind: ParseErrorKind) -> ParseError {
    ParseError { line, kind }
}

/// Inverse of `textual::sig_time`: YYYYMMDDHHmmSS → epoch seconds.
fn parse_sig_time(s: &str, line: usize) -> Result<u32, ParseError> {
    if s.len() != 14 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err(line, ParseErrorKind::BadTimestamp { text: s.into() }));
    }
    let num = |r: std::ops::Range<usize>| -> i64 { s[r].parse().expect("digits") };
    let (y, m, d) = (num(0..4), num(4..6), num(6..8));
    let (hh, mm, ss) = (num(8..10), num(10..12), num(12..14));
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) || hh > 23 || mm > 59 || ss > 59 {
        return Err(err(line, ParseErrorKind::BadTimestamp { text: s.into() }));
    }
    // Howard Hinnant's civil-to-days.
    let y_adj = if m <= 2 { y - 1 } else { y };
    let era = y_adj.div_euclid(400);
    let yoe = y_adj - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    let epoch = days * 86_400 + hh * 3600 + mm * 60 + ss;
    u32::try_from(epoch)
        .map_err(|_| err(line, ParseErrorKind::TimestampOutOfRange { text: s.into() }))
}

fn parse_hex(s: &str, line: usize) -> Result<Vec<u8>, ParseError> {
    if s == "-" {
        return Ok(Vec::new()); // empty-salt presentation
    }
    if !s.len().is_multiple_of(2) {
        return Err(err(line, ParseErrorKind::BadHex { text: s.into() }));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| err(line, ParseErrorKind::BadHex { text: s.into() }))
        })
        .collect()
}

fn parse_name(s: &str, line: usize) -> Result<Name, ParseError> {
    Name::parse(s).map_err(|e| {
        err(
            line,
            ParseErrorKind::BadName {
                text: s.into(),
                reason: e.to_string(),
            },
        )
    })
}

fn parse_u<T: std::str::FromStr>(
    s: &str,
    what: &'static str,
    line: usize,
) -> Result<T, ParseError> {
    s.parse().map_err(|_| {
        err(
            line,
            ParseErrorKind::BadField {
                what,
                text: s.into(),
            },
        )
    })
}

fn rrtype_from_mnemonic(s: &str, line: usize) -> Result<RrType, ParseError> {
    let t = match s {
        "A" => RrType::A,
        "NS" => RrType::Ns,
        "CNAME" => RrType::Cname,
        "SOA" => RrType::Soa,
        "PTR" => RrType::Ptr,
        "MX" => RrType::Mx,
        "TXT" => RrType::Txt,
        "AAAA" => RrType::Aaaa,
        "DS" => RrType::Ds,
        "RRSIG" => RrType::Rrsig,
        "NSEC" => RrType::Nsec,
        "DNSKEY" => RrType::Dnskey,
        "NSEC3" => RrType::Nsec3,
        "NSEC3PARAM" => RrType::Nsec3param,
        other => {
            if let Some(num) = other.strip_prefix("TYPE") {
                RrType::from_u16(parse_u(num, "TYPE number", line)?)
            } else {
                return Err(err(
                    line,
                    ParseErrorKind::UnknownType { text: other.into() },
                ));
            }
        }
    };
    Ok(t)
}

fn parse_bitmap(fields: &[&str], line: usize) -> Result<TypeBitmap, ParseError> {
    let mut bm = TypeBitmap::new();
    for f in fields {
        bm.insert(rrtype_from_mnemonic(f, line)?);
    }
    Ok(bm)
}

fn parse_rdata(rtype: RrType, fields: &[&str], line: usize) -> Result<Rdata, ParseError> {
    let need = |n: usize| -> Result<(), ParseError> {
        if fields.len() < n {
            Err(err(
                line,
                ParseErrorKind::MissingFields {
                    rtype,
                    need: n,
                    got: fields.len(),
                },
            ))
        } else {
            Ok(())
        }
    };
    let rd = match rtype {
        RrType::A => {
            need(1)?;
            Rdata::A(
                fields[0]
                    .parse()
                    .map_err(|_| err(line, ParseErrorKind::BadAddress { family: "IPv4" }))?,
            )
        }
        RrType::Aaaa => {
            need(1)?;
            Rdata::Aaaa(
                fields[0]
                    .parse()
                    .map_err(|_| err(line, ParseErrorKind::BadAddress { family: "IPv6" }))?,
            )
        }
        RrType::Ns => {
            need(1)?;
            Rdata::Ns(parse_name(fields[0], line)?)
        }
        RrType::Cname => {
            need(1)?;
            Rdata::Cname(parse_name(fields[0], line)?)
        }
        RrType::Ptr => {
            need(1)?;
            Rdata::Ptr(parse_name(fields[0], line)?)
        }
        RrType::Mx => {
            need(2)?;
            Rdata::Mx {
                preference: parse_u(fields[0], "MX preference", line)?,
                exchange: parse_name(fields[1], line)?,
            }
        }
        RrType::Txt => {
            let strings = fields
                .iter()
                .map(|f| f.trim_matches('"').as_bytes().to_vec())
                .collect();
            Rdata::Txt(strings)
        }
        RrType::Soa => {
            need(7)?;
            Rdata::Soa(Soa {
                mname: parse_name(fields[0], line)?,
                rname: parse_name(fields[1], line)?,
                serial: parse_u(fields[2], "serial", line)?,
                refresh: parse_u(fields[3], "refresh", line)?,
                retry: parse_u(fields[4], "retry", line)?,
                expire: parse_u(fields[5], "expire", line)?,
                minimum: parse_u(fields[6], "minimum", line)?,
            })
        }
        RrType::Ds => {
            need(4)?;
            Rdata::Ds {
                key_tag: parse_u(fields[0], "key tag", line)?,
                algorithm: parse_u(fields[1], "algorithm", line)?,
                digest_type: parse_u(fields[2], "digest type", line)?,
                digest: parse_hex(fields[3], line)?,
            }
        }
        RrType::Dnskey => {
            need(4)?;
            Rdata::Dnskey {
                flags: parse_u(fields[0], "flags", line)?,
                protocol: parse_u(fields[1], "protocol", line)?,
                algorithm: parse_u(fields[2], "algorithm", line)?,
                public_key: base64::decode(&fields[3..].join("")).ok_or_else(|| {
                    err(
                        line,
                        ParseErrorKind::BadEncoding {
                            what: "base64 public key",
                        },
                    )
                })?,
            }
        }
        RrType::Rrsig => {
            need(9)?;
            Rdata::Rrsig(Rrsig {
                type_covered: rrtype_from_mnemonic(fields[0], line)?,
                algorithm: parse_u(fields[1], "algorithm", line)?,
                labels: parse_u(fields[2], "labels", line)?,
                original_ttl: parse_u(fields[3], "original TTL", line)?,
                expiration: parse_sig_time(fields[4], line)?,
                inception: parse_sig_time(fields[5], line)?,
                key_tag: parse_u(fields[6], "key tag", line)?,
                signer: parse_name(fields[7], line)?,
                signature: base64::decode(&fields[8..].join("")).ok_or_else(|| {
                    err(
                        line,
                        ParseErrorKind::BadEncoding {
                            what: "base64 signature",
                        },
                    )
                })?,
            })
        }
        RrType::Nsec => {
            need(1)?;
            Rdata::Nsec {
                next: parse_name(fields[0], line)?,
                types: parse_bitmap(&fields[1..], line)?,
            }
        }
        RrType::Nsec3 => {
            need(5)?;
            Rdata::Nsec3 {
                hash_alg: parse_u(fields[0], "hash algorithm", line)?,
                flags: parse_u(fields[1], "flags", line)?,
                iterations: parse_u(fields[2], "iterations", line)?,
                salt: parse_hex(fields[3], line)?,
                next_hashed: base32::decode(&fields[4].to_ascii_lowercase()).ok_or_else(|| {
                    err(
                        line,
                        ParseErrorKind::BadEncoding {
                            what: "base32hex next-hash",
                        },
                    )
                })?,
                types: parse_bitmap(&fields[5..], line)?,
            }
        }
        RrType::Nsec3param => {
            need(4)?;
            Rdata::Nsec3param {
                hash_alg: parse_u(fields[0], "hash algorithm", line)?,
                flags: parse_u(fields[1], "flags", line)?,
                iterations: parse_u(fields[2], "iterations", line)?,
                salt: parse_hex(fields[3], line)?,
            }
        }
        other => {
            // RFC 3597 opaque syntax: \# <len> <hex>
            need(3)?;
            if fields[0] != "\\#" {
                return Err(err(line, ParseErrorKind::UnsupportedRdata { rtype: other }));
            }
            let data = parse_hex(&fields[2..].join(""), line)?;
            Rdata::Unknown {
                rtype: other.to_u16(),
                data,
            }
        }
    };
    Ok(rd)
}

/// Parse a master file produced by
/// [`zone_to_master_file`](crate::textual::zone_to_master_file).
///
/// RRSIG records are re-attached to the RRset they cover; a dangling
/// RRSIG (covering a type with no records at that owner — which the
/// broken testbed zones legitimately contain after mutations) is kept as
/// a signature on an otherwise-empty RRset so that re-rendering loses
/// nothing.
pub fn parse_master_file(text: &str) -> Result<Zone, ParseError> {
    let mut origin: Option<Name> = None;
    // (owner, ttl, rtype, rdata) plus deferred RRSIGs.
    let mut records: Vec<(Name, u32, Rdata)> = Vec::new();
    let mut sigs: Vec<(Name, u32, Rrsig)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            origin = Some(parse_name(rest.trim(), line_no)?);
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(err(line_no, ParseErrorKind::ShortRecord));
        }
        let owner = parse_name(fields[0], line_no)?;
        let ttl: u32 = parse_u(fields[1], "TTL", line_no)?;
        if fields[2] != "IN" {
            return Err(err(
                line_no,
                ParseErrorKind::UnsupportedClass {
                    text: fields[2].into(),
                },
            ));
        }
        let rtype = rrtype_from_mnemonic(fields[3], line_no)?;
        let rdata = parse_rdata(rtype, &fields[4..], line_no)?;
        match rdata {
            Rdata::Rrsig(sig) => sigs.push((owner, ttl, sig)),
            other => records.push((owner, ttl, other)),
        }
    }

    let origin = origin.ok_or_else(|| err(0, ParseErrorKind::MissingOrigin))?;
    let mut zone = Zone::new(origin);
    for (owner, ttl, rdata) in records {
        zone.add(ede_wire::Record::new(owner, ttl, rdata));
    }
    for (owner, ttl, sig) in sigs {
        let covered = sig.type_covered;
        match zone.get_mut(&owner, covered) {
            Some(set) => set.sigs.push(sig),
            None => {
                // Dangling signature: preserve on an empty RRset.
                let mut set = crate::rrset::Rrset::empty(owner, covered, ttl);
                set.sigs.push(sig);
                zone.add_rrset(set);
            }
        }
    }
    Ok(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signer::{sign_zone, SignerConfig, SIM_NOW};
    use crate::textual::zone_to_master_file;
    use crate::{Misconfig, TypeSel, ZoneKeys};
    use ede_wire::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_zone() -> Zone {
        let apex = n("round.example");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.round.example"),
                rname: n("hostmaster.round.example"),
                serial: 7,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.round.example")),
        ));
        z.add_a(n("ns1.round.example"), "192.0.2.1".parse().unwrap());
        z.add_a(apex, "192.0.2.2".parse().unwrap());
        z
    }

    #[test]
    fn signed_zone_roundtrips() {
        let mut z = sample_zone();
        let keys = ZoneKeys::generate(&n("round.example"), 8, 2048);
        sign_zone(&mut z, &keys, &SignerConfig::default());
        let text = zone_to_master_file(&z);
        let parsed = parse_master_file(&text).expect("parses");
        assert_eq!(parsed, z);
    }

    #[test]
    fn mutated_zone_roundtrips() {
        // Broken zones (stale/dangling signatures and all) must survive
        // the text round trip too.
        for m in [
            Misconfig::NoZsk,
            Misconfig::RrsigExpired(TypeSel::All),
            Misconfig::BadNsec3Hash,
            Misconfig::Nsec3ParamMissing,
        ] {
            let mut z = sample_zone();
            let keys = ZoneKeys::generate(&n("round.example"), 8, 2048);
            sign_zone(&mut z, &keys, &SignerConfig::default());
            m.apply(&mut z, &keys);
            let text = zone_to_master_file(&z);
            let parsed = parse_master_file(&text).unwrap_or_else(|e| panic!("{m:?}: {e}"));
            assert_eq!(parsed, z, "{m:?}");
        }
    }

    #[test]
    fn sig_time_roundtrip() {
        for t in [0u32, 1, 86_399, 86_400, SIM_NOW, 1_700_000_000, u32::MAX] {
            let text = crate::textual::zone_to_master_file(&{
                let mut z = sample_zone();
                let keys = ZoneKeys::generate(&n("round.example"), 8, 2048);
                let cfg = SignerConfig {
                    inception: t.saturating_sub(1),
                    expiration: t,
                    ..Default::default()
                };
                sign_zone(&mut z, &keys, &cfg);
                z
            });
            let parsed = parse_master_file(&text).expect("parses");
            let soa = parsed.get(&n("round.example"), RrType::Soa).expect("soa");
            assert_eq!(soa.sigs[0].expiration, t, "t={t}");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n; a comment\n$ORIGIN x.example.\n\nx.example. 60 IN A 192.0.2.9 ; trailing\n";
        let z = parse_master_file(text).expect("parses");
        assert!(z.get(&n("x.example"), RrType::A).is_some());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "$ORIGIN x.example.\nx.example. 60 IN A not-an-address\n";
        let e = parse_master_file(text).expect_err("must fail");
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("IPv4"));
    }

    #[test]
    fn missing_origin_rejected() {
        assert!(parse_master_file("x.example. 60 IN A 192.0.2.1\n").is_err());
    }

    #[test]
    fn unsupported_class_rejected() {
        let text = "$ORIGIN x.example.\nx.example. 60 CH A 192.0.2.1\n";
        assert!(parse_master_file(text).is_err());
    }
}
