//! Canonical form and signing data (RFC 4034 §6 and §3.1.8.1).
//!
//! A DNSSEC signature covers:
//!
//! ```text
//! RRSIG_RDATA (without the signature field) ‖ RR(1) ‖ RR(2) ‖ …
//! ```
//!
//! where each `RR` is `owner ‖ type ‖ class ‖ OriginalTTL ‖ RDLENGTH ‖
//! RDATA`, owners are lowercased and uncompressed, the RRs are sorted by
//! canonical RDATA ordering, and the TTL is replaced by the RRSIG's
//! Original TTL. Both the signer and the validator must produce this byte
//! string identically — it lives here so `ede-zone` (signer) and
//! `ede-resolver` (validator) share one implementation.

use crate::rrset::Rrset;
use ede_wire::rdata::Rrsig;
use ede_wire::{Class, Name, Rdata};

/// Canonical (uncompressed, lowercase) encoding of one RDATA.
pub fn canonical_rdata(rdata: &Rdata) -> Vec<u8> {
    // Names inside our `Rdata` are already lowercase (Name normalizes at
    // construction) and `encode(None)` never compresses, so the plain
    // encoding *is* the canonical form.
    let mut buf = Vec::new();
    rdata.encode(&mut buf, None);
    buf
}

/// Encode the RRSIG RDATA with the signature field left out — the prefix
/// of the signing data.
pub fn rrsig_rdata_sans_signature(sig: &Rrsig) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&sig.type_covered.to_u16().to_be_bytes());
    buf.push(sig.algorithm);
    buf.push(sig.labels);
    buf.extend_from_slice(&sig.original_ttl.to_be_bytes());
    buf.extend_from_slice(&sig.expiration.to_be_bytes());
    buf.extend_from_slice(&sig.inception.to_be_bytes());
    buf.extend_from_slice(&sig.key_tag.to_be_bytes());
    buf.extend_from_slice(&sig.signer.to_wire());
    buf
}

/// Build the full signing data for `rrset` under the (partially filled)
/// `sig`. The caller fills `sig.signature` with the result of signing
/// this byte string.
///
/// The RRset's records are ordered by canonical RDATA byte comparison
/// (RFC 4034 §6.3); the owner name used is the RRset owner (wildcard
/// expansion is not modeled — the testbed has no wildcards).
pub fn signing_data(sig: &Rrsig, rrset: &Rrset) -> Vec<u8> {
    let mut buf = rrsig_rdata_sans_signature(sig);

    let owner_wire = rrset.name.to_wire();
    let mut encoded: Vec<Vec<u8>> = rrset.rdatas.iter().map(canonical_rdata).collect();
    encoded.sort();

    for rdata in encoded {
        buf.extend_from_slice(&owner_wire);
        buf.extend_from_slice(&rrset.rtype.to_u16().to_be_bytes());
        buf.extend_from_slice(&Class::In.to_u16().to_be_bytes());
        buf.extend_from_slice(&sig.original_ttl.to_be_bytes());
        buf.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
        buf.extend_from_slice(&rdata);
    }
    buf
}

/// The canonical byte string a DS digest covers: `owner ‖ DNSKEY RDATA`
/// (RFC 4034 §5.1.4).
pub fn ds_digest_input(owner: &Name, dnskey_rdata: &Rdata) -> Vec<u8> {
    let mut buf = owner.to_wire();
    buf.extend_from_slice(&canonical_rdata(dnskey_rdata));
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::RrType;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn sample_sig() -> Rrsig {
        Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 3600,
            expiration: 1_700_000_000,
            inception: 1_690_000_000,
            key_tag: 4242,
            signer: n("example.com"),
            signature: Vec::new(),
        }
    }

    #[test]
    fn rdata_order_is_canonical() {
        let mut set = Rrset::new(
            n("example.com"),
            3600,
            Rdata::A("192.0.2.200".parse().unwrap()),
        );
        set.push(Rdata::A("192.0.2.1".parse().unwrap()));
        let sig = sample_sig();
        let data = signing_data(&sig, &set);

        // Reordering the rdatas must not change the signing data.
        let mut set2 = Rrset::new(
            n("example.com"),
            3600,
            Rdata::A("192.0.2.1".parse().unwrap()),
        );
        set2.push(Rdata::A("192.0.2.200".parse().unwrap()));
        assert_eq!(data, signing_data(&sig, &set2));
    }

    #[test]
    fn ttl_in_signing_data_is_original_ttl() {
        let set = Rrset::new(n("example.com"), 60, Rdata::A("192.0.2.1".parse().unwrap()));
        let sig = sample_sig(); // original_ttl = 3600
        let a = signing_data(&sig, &set);
        let mut set_changed = set.clone();
        set_changed.ttl = 7200; // live TTL changes must not matter
        assert_eq!(a, signing_data(&sig, &set_changed));
    }

    #[test]
    fn window_fields_change_signing_data() {
        let set = Rrset::new(
            n("example.com"),
            3600,
            Rdata::A("192.0.2.1".parse().unwrap()),
        );
        let sig = sample_sig();
        let mut sig2 = sample_sig();
        sig2.expiration += 1;
        assert_ne!(signing_data(&sig, &set), signing_data(&sig2, &set));
    }

    #[test]
    fn ds_input_binds_owner() {
        let key = Rdata::Dnskey {
            flags: 257,
            protocol: 3,
            algorithm: 8,
            public_key: vec![1, 2, 3],
        };
        assert_ne!(
            ds_digest_input(&n("a.example"), &key),
            ds_digest_input(&n("b.example"), &key)
        );
    }
}
