//! Whole-zone DNSSEC signing.

use crate::canonical::signing_data;
use crate::keys::{ZoneKey, ZoneKeys};
use crate::nsec;
use crate::nsec3::{self, Nsec3Config};
use crate::rrset::Rrset;
use crate::zone::Zone;
use ede_wire::rdata::Rrsig;
use ede_wire::{Name, RrType, SecAlg};

/// The simulation's "now": 2023-05-15 00:00:00 UTC, the month of the
/// paper's measurement. All validity windows and cache decisions are
/// expressed relative to this instant.
pub const SIM_NOW: u32 = 1_684_108_800;

/// One day in seconds.
pub const DAY: u32 = 86_400;

/// Which authenticated-denial chain a zone is signed with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Denial {
    /// Hashed denial (RFC 5155) with the given parameters — the modern
    /// default and what the paper's testbed uses.
    Nsec3(Nsec3Config),
    /// Plain NSEC (RFC 4034 §4).
    Nsec,
    /// No denial chain at all (only deliberately broken zones).
    None,
}

/// Zone-signing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignerConfig {
    /// DNSSEC algorithm for both keys.
    pub algorithm: SecAlg,
    /// Modeled key size in bits.
    pub key_bits: u16,
    /// RRSIG inception (epoch seconds).
    pub inception: u32,
    /// RRSIG expiration (epoch seconds).
    pub expiration: u32,
    /// Authenticated-denial chain to build.
    pub denial: Denial,
}

impl Default for SignerConfig {
    fn default() -> Self {
        SignerConfig {
            algorithm: SecAlg::RSASHA256,
            key_bits: 2048,
            inception: SIM_NOW - 30 * DAY,
            expiration: SIM_NOW + 30 * DAY,
            denial: Denial::Nsec3(Nsec3Config::default()),
        }
    }
}

impl SignerConfig {
    /// The configured validity window as (inception, expiration).
    pub fn window(&self) -> (u32, u32) {
        (self.inception, self.expiration)
    }
}

/// Produce one RRSIG over `rrset` with `key`, valid in `window`.
pub fn sign_rrset(rrset: &Rrset, key: &ZoneKey, zone_apex: &Name, window: (u32, u32)) -> Rrsig {
    let mut sig = Rrsig {
        type_covered: rrset.rtype,
        algorithm: key.signing.algorithm,
        labels: rrset.name.label_count() as u8,
        original_ttl: rrset.ttl,
        inception: window.0,
        expiration: window.1,
        key_tag: key.key_tag(),
        signer: zone_apex.clone(),
        signature: Vec::new(),
    };
    let data = signing_data(&sig, rrset);
    sig.signature = key.signing.sign(&data);
    sig
}

/// Sign `zone` in place:
///
/// 1. publish the DNSKEY RRset (ZSK + KSK) at the apex;
/// 2. build the NSEC3 chain (when configured) so it gets signed too;
/// 3. sign every authoritative RRset — the DNSKEY RRset with **both**
///    keys (KSK establishes the chain of trust, ZSK co-signs so the
///    `no-rrsig-ksk` mutation leaves a non-KSK signature behind, as in
///    the paper's testbed), everything else with the ZSK.
///
/// Delegation NS sets and glue are left unsigned (they are not
/// authoritative, RFC 4035 §2.2).
pub fn sign_zone(zone: &mut Zone, keys: &ZoneKeys, config: &SignerConfig) {
    let apex = zone.apex().clone();

    // 1. DNSKEY RRset.
    let mut dnskey_set = Rrset::empty(apex.clone(), RrType::Dnskey, 3600);
    dnskey_set.push(keys.zsk.dnskey_rdata());
    dnskey_set.push(keys.ksk.dnskey_rdata());
    zone.add_rrset(dnskey_set);

    // 2. Denial chain.
    match &config.denial {
        Denial::Nsec3(nsec3_cfg) => nsec3::build_chain(zone, nsec3_cfg),
        Denial::Nsec => nsec::build_chain(zone),
        Denial::None => {}
    }

    // 3. Signatures.
    resign_all(zone, keys, config.window());
}

/// (Re-)generate every RRSIG in the zone with the given window, replacing
/// existing signatures. Used both by [`sign_zone`] and by mutations that
/// need genuinely-verifying signatures with pathological windows.
pub fn resign_all(zone: &mut Zone, keys: &ZoneKeys, window: (u32, u32)) {
    // Collect keys of rrsets to sign first (cannot mutate while iterating).
    let targets: Vec<(Name, RrType)> = zone
        .iter()
        .filter(|set| {
            if set.rtype == RrType::Rrsig {
                return false;
            }
            if zone.is_delegation(&set.name) {
                // At a zone cut only the DS RRset is authoritative
                // parent-side data (RFC 4035 §2.2); NS and glue stay
                // unsigned.
                return set.rtype == RrType::Ds;
            }
            !zone.is_glue(&set.name)
        })
        .map(|set| (set.name.clone(), set.rtype))
        .collect();

    for (name, rtype) in targets {
        resign_rrset(zone, &name, rtype, keys, window);
    }
}

/// Replace the signatures over one RRset, signing with the role-appropriate
/// key(s) and the given validity window.
pub fn resign_rrset(
    zone: &mut Zone,
    name: &Name,
    rtype: RrType,
    keys: &ZoneKeys,
    window: (u32, u32),
) {
    let apex = zone.apex().clone();
    let Some(set) = zone.get_mut(name, rtype) else {
        return;
    };
    set.sigs.clear();
    let snapshot = set.clone();
    let mut sigs = Vec::new();
    if rtype == RrType::Dnskey && *name == apex {
        sigs.push(sign_rrset(&snapshot, &keys.ksk, &apex, window));
        sigs.push(sign_rrset(&snapshot, &keys.zsk, &apex, window));
    } else {
        sigs.push(sign_rrset(&snapshot, &keys.zsk, &apex, window));
    }
    zone.get_mut(name, rtype).expect("still present").sigs = sigs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_crypto::simsig;
    use ede_wire::rdata::Soa;
    use ede_wire::{Rdata, Record};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn build_and_sign() -> (Zone, ZoneKeys, SignerConfig) {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.53".parse().unwrap());
        z.add_a(apex.clone(), "192.0.2.80".parse().unwrap());
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        let cfg = SignerConfig::default();
        sign_zone(&mut z, &keys, &cfg);
        (z, keys, cfg)
    }

    #[test]
    fn every_authoritative_rrset_is_signed() {
        let (z, _, _) = build_and_sign();
        for set in z.iter() {
            if set.rtype == RrType::Nsec3param && set.name == *z.apex() {
                assert!(!set.sigs.is_empty(), "NSEC3PARAM must be signed");
            }
            if z.is_glue(&set.name) || z.is_delegation(&set.name) {
                assert!(set.sigs.is_empty(), "glue must stay unsigned: {}", set.name);
            } else {
                assert!(
                    !set.sigs.is_empty(),
                    "unsigned rrset: {} {}",
                    set.name,
                    set.rtype
                );
            }
        }
    }

    #[test]
    fn dnskey_rrset_signed_by_both_keys() {
        let (z, keys, _) = build_and_sign();
        let dnskey = z.get(&n("example.com"), RrType::Dnskey).unwrap();
        assert_eq!(dnskey.sigs.len(), 2);
        let tags: Vec<u16> = dnskey.sigs.iter().map(|s| s.key_tag).collect();
        assert!(tags.contains(&keys.ksk.key_tag()));
        assert!(tags.contains(&keys.zsk.key_tag()));
    }

    #[test]
    fn signatures_verify_against_published_keys() {
        let (z, keys, _) = build_and_sign();
        let a_set = z.get(&n("example.com"), RrType::A).unwrap();
        let sig = &a_set.sigs[0];
        assert_eq!(sig.key_tag, keys.zsk.key_tag());
        let data = signing_data(sig, a_set);
        assert_eq!(
            simsig::verify(
                &keys.zsk.signing.public_key(),
                sig.algorithm,
                &data,
                &sig.signature
            ),
            Ok(())
        );
    }

    #[test]
    fn tampering_with_rdata_breaks_signature() {
        let (mut z, keys, _) = build_and_sign();
        let set = z.get_mut(&n("example.com"), RrType::A).unwrap();
        set.rdatas[0] = Rdata::A("203.0.113.66".parse().unwrap());
        let set = z.get(&n("example.com"), RrType::A).unwrap();
        let sig = &set.sigs[0];
        let data = signing_data(sig, set);
        assert!(simsig::verify(
            &keys.zsk.signing.public_key(),
            sig.algorithm,
            &data,
            &sig.signature
        )
        .is_err());
    }

    #[test]
    fn resign_with_past_window_still_verifies() {
        let (mut z, keys, _) = build_and_sign();
        let window = (SIM_NOW - 60 * DAY, SIM_NOW - 30 * DAY);
        resign_rrset(&mut z, &n("example.com"), RrType::A, &keys, window);
        let set = z.get(&n("example.com"), RrType::A).unwrap();
        let sig = &set.sigs[0];
        assert_eq!(sig.expiration, SIM_NOW - 30 * DAY);
        // The signature itself is cryptographically fine — only the
        // window is wrong. Exactly the `rrsig-exp-*` testbed situation.
        let data = signing_data(sig, set);
        assert_eq!(
            simsig::verify(
                &keys.zsk.signing.public_key(),
                sig.algorithm,
                &data,
                &sig.signature
            ),
            Ok(())
        );
    }

    #[test]
    fn window_defaults_bracket_sim_now() {
        let cfg = SignerConfig::default();
        assert!(cfg.inception < SIM_NOW);
        assert!(cfg.expiration > SIM_NOW);
    }
}
