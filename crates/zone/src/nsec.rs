//! Plain NSEC chain generation (RFC 4034 §4).
//!
//! NSEC predates NSEC3: the chain links owner names directly (in
//! canonical order) instead of hashes, trading zone-enumeration
//! resistance for simplicity. Both appear in the wild and the paper's
//! §4.2.9 speaks of "missing NSEC/NSEC3 records", so the signer supports
//! both chains.

use crate::rrset::Rrset;
use crate::zone::Zone;
use ede_wire::rdata::TypeBitmap;
use ede_wire::{Name, Rdata, RrType};
use std::collections::BTreeSet;

/// The owner names an NSEC chain covers (same rules as NSEC3: every
/// authoritative owner and delegation point, no glue, plus empty
/// non-terminals — which for NSEC also carry a record).
fn chain_names(zone: &Zone) -> BTreeSet<Name> {
    let mut names: BTreeSet<Name> = BTreeSet::new();
    for name in zone.names() {
        if zone.is_glue(name) && !zone.is_delegation(name) {
            continue;
        }
        names.insert(name.clone());
        let mut current = name.parent();
        while let Some(n) = current {
            if !n.is_subdomain_of(zone.apex()) || n == *zone.apex() {
                break;
            }
            names.insert(n.clone());
            current = n.parent();
        }
    }
    names.insert(zone.apex().clone());
    names
}

fn bitmap_for(zone: &Zone, name: &Name) -> TypeBitmap {
    let mut bm = TypeBitmap::new();
    if zone.is_delegation(name) {
        bm.insert(RrType::Ns);
        if zone.get(name, RrType::Ds).is_some() {
            bm.insert(RrType::Ds);
            bm.insert(RrType::Rrsig);
        }
        bm.insert(RrType::Nsec);
        return bm;
    }
    for t in zone.types_at(name) {
        if t != RrType::Nsec {
            bm.insert(t);
        }
    }
    bm.insert(RrType::Nsec);
    bm.insert(RrType::Rrsig);
    bm
}

/// Build the NSEC chain for `zone`. Must run before RRSIG generation so
/// the chain gets signed.
pub fn build_chain(zone: &mut Zone) {
    let soa_minimum = match zone.soa().and_then(|s| s.rdatas.first()) {
        Some(Rdata::Soa(soa)) => soa.minimum,
        _ => 300,
    };
    // Canonical order is Name's Ord, so the BTreeSet iterates in chain
    // order already.
    let names: Vec<Name> = chain_names(zone).into_iter().collect();
    let count = names.len();
    for i in 0..count {
        let owner = &names[i];
        let next = names[(i + 1) % count].clone();
        let rdata = Rdata::Nsec {
            next,
            types: bitmap_for(zone, owner),
        };
        zone.add_rrset(Rrset::new(owner.clone(), soa_minimum, rdata));
    }
}

/// Does `candidate`'s (owner, next) interval cover `name` in canonical
/// order (exclusive on both ends, wrap-around for the last link)?
pub fn covers(owner: &Name, next: &Name, name: &Name) -> bool {
    use std::cmp::Ordering::*;
    match owner.canonical_cmp(next) {
        Less => owner.canonical_cmp(name) == Less && name.canonical_cmp(next) == Less,
        // Wrap-around link (next is the apex, canonically first).
        _ => owner.canonical_cmp(name) == Less || name.canonical_cmp(next) == Less,
    }
}

/// Find the NSEC RRset matching `name` exactly.
pub fn find_matching<'a>(zone: &'a Zone, name: &Name) -> Option<&'a Rrset> {
    let set = zone.get(name, RrType::Nsec)?;
    Some(set)
}

/// Find the NSEC RRset covering (not matching) `name`.
pub fn find_covering<'a>(zone: &'a Zone, name: &Name) -> Option<&'a Rrset> {
    zone.iter()
        .filter(|s| s.rtype == RrType::Nsec)
        .find(|s| match s.rdatas.first() {
            Some(Rdata::Nsec { next, .. }) => covers(&s.name, next, name),
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_wire::rdata::Soa;
    use ede_wire::Record;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn base_zone() -> Zone {
        let apex = n("example.com");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.example.com"),
                rname: n("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.example.com")),
        ));
        z.add_a(n("ns1.example.com"), "192.0.2.1".parse().unwrap());
        z.add_a(apex, "192.0.2.2".parse().unwrap());
        z.add_a(n("www.example.com"), "192.0.2.3".parse().unwrap());
        z
    }

    #[test]
    fn chain_links_every_name_circularly() {
        let mut z = base_zone();
        build_chain(&mut z);
        let nsecs: Vec<&Rrset> = z.iter().filter(|s| s.rtype == RrType::Nsec).collect();
        assert_eq!(nsecs.len(), 3); // apex, ns1, www
                                    // Next pointers form a single cycle over the owners.
        let owners: BTreeSet<&Name> = nsecs.iter().map(|s| &s.name).collect();
        for s in &nsecs {
            match s.rdatas.first().unwrap() {
                Rdata::Nsec { next, .. } => assert!(owners.contains(next)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn covering_semantics() {
        let mut z = base_zone();
        build_chain(&mut z);
        // An existing name matches and is never covered.
        assert!(find_matching(&z, &n("www.example.com")).is_some());
        assert!(find_covering(&z, &n("www.example.com")).is_none());
        // A missing name is covered, never matched.
        assert!(find_matching(&z, &n("zzz.example.com")).is_none());
        assert!(find_covering(&z, &n("zzz.example.com")).is_some());
        assert!(find_covering(&z, &n("aaa.example.com")).is_some());
    }

    #[test]
    fn apex_bitmap_includes_nsec_and_soa() {
        let mut z = base_zone();
        build_chain(&mut z);
        let apex_nsec = z.get(&n("example.com"), RrType::Nsec).unwrap();
        match apex_nsec.rdatas.first().unwrap() {
            Rdata::Nsec { types, .. } => {
                assert!(types.contains(RrType::Soa));
                assert!(types.contains(RrType::Nsec));
                assert!(types.contains(RrType::A));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn covers_handles_wraparound() {
        let a = n("a.example");
        let m = n("m.example");
        let z = n("z.example");
        assert!(covers(&a, &z, &m));
        assert!(!covers(&a, &m, &z));
        // Wrap-around: (z, a) covers everything after z and before a.
        assert!(covers(&z, &a, &n("zz.example")));
        assert!(!covers(&z, &a, &m));
    }
}
