//! DNS zone model, DNSSEC signer, and misconfiguration mutators.
//!
//! This crate is the authoritative-data substrate of the reproduction:
//!
//! * [`rrset`] / [`zone`] — the in-memory zone representation. Following
//!   the usual resolver-implementation practice, RRSIGs are attached to
//!   the RRset they cover rather than stored as peer RRsets, which keeps
//!   signing, serving, validation and *mutation* local to one object.
//! * [`canonical`] — RFC 4034 §3.1.8.1 signing-data construction (the
//!   exact byte string a DNSSEC signature covers).
//! * [`keys`] — KSK/ZSK key management, DNSKEY/DS record production.
//! * [`nsec3`] — NSEC3 chain generation (RFC 5155), including empty
//!   non-terminals and delegation bitmaps.
//! * [`signer`] — whole-zone signing with configurable validity windows.
//! * [`misconfig`] — the heart of the testbed: a composable
//!   [`misconfig::Misconfig`] enum implementing every mutation of the
//!   paper's Table 3 (drop the DS, break key tags, expire signatures,
//!   strip NSEC3 chains, clear zone-key bits, swap algorithm numbers, …).
//!   Mutations are applied *after* signing, exactly as the authors edited
//!   zone files after `dnssec-signzone`, so stale-signature side effects
//!   are reproduced faithfully.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod keys;
pub mod misconfig;
pub mod nsec;
pub mod nsec3;
pub mod parse;
pub mod rrset;
pub mod signer;
pub mod textual;
pub mod zone;

pub use keys::{ZoneKey, ZoneKeys};
pub use misconfig::{Misconfig, TypeSel};
pub use nsec3::Nsec3Config;
pub use parse::{parse_master_file, ParseError, ParseErrorKind};
pub use rrset::Rrset;
pub use signer::{Denial, SignerConfig};
pub use zone::Zone;
