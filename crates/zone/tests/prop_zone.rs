//! Property tests: a freshly signed zone always validates; mutations
//! always break something observable.

use ede_crypto::simsig;
use ede_wire::rdata::{Rdata, Soa};
use ede_wire::{Name, Record, RrType};
use ede_zone::canonical::signing_data;
use ede_zone::nsec3::{find_covering, find_matching};
use ede_zone::signer::{sign_zone, SignerConfig, SIM_NOW};
use ede_zone::{Denial, Misconfig, Nsec3Config, TypeSel, Zone, ZoneKeys};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,10}").unwrap()
}

fn build_zone(apex: &Name, hosts: &[String]) -> Zone {
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        Rdata::Soa(Soa {
            mname: apex.child("ns1").unwrap(),
            rname: apex.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(apex.clone(), 3600, Rdata::Ns(apex.child("ns1").unwrap())));
    z.add_a(apex.child("ns1").unwrap(), "192.0.2.1".parse().unwrap());
    z.add_a(apex.clone(), "192.0.2.2".parse().unwrap());
    for h in hosts {
        if let Ok(name) = apex.child(h) {
            z.add_a(name, "192.0.2.3".parse().unwrap());
        }
    }
    z
}

/// Every signature in the zone verifies against the published ZSK/KSK.
fn zone_fully_verifies(zone: &Zone, keys: &ZoneKeys) -> bool {
    zone.iter().all(|set| {
        set.sigs.iter().all(|sig| {
            let key = if sig.key_tag == keys.ksk.key_tag() {
                &keys.ksk
            } else {
                &keys.zsk
            };
            let data = signing_data(sig, set);
            sig.inception <= SIM_NOW
                && SIM_NOW <= sig.expiration
                && simsig::verify(&key.signing.public_key(), sig.algorithm, &data, &sig.signature)
                    .is_ok()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn signed_zones_always_verify(
        hosts in proptest::collection::vec(arb_label(), 0..6),
        salt in proptest::collection::vec(any::<u8>(), 0..6),
        iterations in 0u16..4,
    ) {
        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &hosts);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        let cfg = SignerConfig {
            denial: Denial::Nsec3(Nsec3Config { iterations, salt }),
            ..Default::default()
        };
        sign_zone(&mut zone, &keys, &cfg);
        prop_assert!(zone_fully_verifies(&zone, &keys));
        // Every authoritative RRset except RRSIG carries at least one sig.
        for set in zone.iter() {
            if !zone.is_glue(&set.name) && !zone.is_delegation(&set.name) {
                prop_assert!(!set.sigs.is_empty(), "{} {}", set.name, set.rtype);
            }
        }
    }

    #[test]
    fn nsec3_chain_is_sound_for_any_name(
        hosts in proptest::collection::vec(arb_label(), 0..6),
        probe in arb_label(),
    ) {
        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &hosts);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        let cfg = SignerConfig::default();
        sign_zone(&mut zone, &keys, &cfg);
        let params = Nsec3Config::default();

        // Existing names match; their hashes are never "covered".
        for name in zone.names() {
            if zone.is_glue(name) || name.first_label().is_some_and(|l| l.len() == 32) {
                continue; // NSEC3 owners themselves / glue are not chained
            }
            prop_assert!(find_matching(&zone, &params, name).is_some(), "{name}");
            prop_assert!(find_covering(&zone, &params, name).is_none(), "{name}");
        }
        // A random probe either exists (matches) or is covered.
        let probe_name = apex.child(&probe).unwrap();
        let matches = find_matching(&zone, &params, &probe_name).is_some();
        let covered = find_covering(&zone, &params, &probe_name).is_some();
        prop_assert!(matches ^ covered, "{probe_name}: matches={matches} covered={covered}");
    }

    #[test]
    fn every_misconfig_changes_the_zone_or_its_ds(
        selector in 0usize..28,
    ) {
        use Misconfig::*;
        let all = [
            NoDs, DsBadTag, DsBadKeyAlgo, DsUnassignedKeyAlgo, DsReservedKeyAlgo,
            DsUnassignedDigestAlgo, DsBogusDigestValue,
            RrsigExpired(TypeSel::All), RrsigExpired(TypeSel::OnlyApexA),
            RrsigNotYetValid(TypeSel::All), RrsigMissing(TypeSel::All),
            RrsigExpiredBeforeValid(TypeSel::All),
            Nsec3Missing, BadNsec3Hash, BadNsec3Next, BadNsec3Rrsig, Nsec3RrsigMissing,
            Nsec3ParamMissing, BadNsec3ParamSalt, NoNsec3ParamNsec3,
            NoZsk, BadZsk, NoKsk, NoRrsigKsk, BadRrsigKsk, BadKsk,
            NoRrsigDnskey, BadRrsigDnskey,
        ];
        let m = all[selector];

        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &[]);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        sign_zone(&mut zone, &keys, &SignerConfig::default());
        let pristine = zone.clone();
        let correct_ds = keys.ksk.ds_rdata(&apex, ede_wire::DigestAlg::SHA256);

        m.apply(&mut zone, &keys);
        let ds = m.parent_ds(&keys, &apex);

        let zone_changed = zone != pristine;
        let ds_changed = ds != vec![correct_ds];
        prop_assert!(
            zone_changed || ds_changed,
            "{m:?} must alter the zone or its DS"
        );
        // Parent-side cases leave the child untouched; child-side cases
        // leave the DS correct.
        if m.is_parent_side() {
            prop_assert!(!zone_changed, "{m:?} is parent-side");
        } else {
            prop_assert!(!ds_changed, "{m:?} is child-side");
        }
    }

    #[test]
    fn canonical_signing_data_is_order_invariant(
        addrs in proptest::collection::vec(any::<[u8; 4]>(), 1..6),
    ) {
        use ede_zone::Rrset;
        let name = Name::parse("set.example").unwrap();
        let mut forward = Rrset::empty(name.clone(), RrType::A, 300);
        for a in &addrs {
            forward.push(Rdata::A((*a).into()));
        }
        let mut backward = Rrset::empty(name, RrType::A, 300);
        for a in addrs.iter().rev() {
            backward.push(Rdata::A((*a).into()));
        }
        let sig = ede_wire::rdata::Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 300,
            expiration: SIM_NOW + 100,
            inception: SIM_NOW - 100,
            key_tag: 1,
            signer: Name::parse("example").unwrap(),
            signature: vec![],
        };
        prop_assert_eq!(signing_data(&sig, &forward), signing_data(&sig, &backward));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The master-file parser never panics, whatever we feed it — and a
    /// rendered zone with one mutated byte either parses or errors
    /// cleanly.
    #[test]
    fn master_file_parser_never_panics(
        idx in 0usize..4096,
        byte in 0u8..=255,
    ) {
        let apex = Name::parse("fuzz.example").unwrap();
        let mut zone = build_zone(&apex, &[]);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        sign_zone(&mut zone, &keys, &SignerConfig::default());
        let mut text = ede_zone::textual::zone_to_master_file(&zone).into_bytes();
        let i = idx % text.len();
        text[i] = byte;
        // Any outcome except a panic is acceptable.
        let _ = ede_zone::parse::parse_master_file(&String::from_utf8_lossy(&text));
    }
}
