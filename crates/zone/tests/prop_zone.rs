//! Randomized tests: a freshly signed zone always validates; mutations
//! always break something observable. Cases are driven by an in-file
//! deterministic PRNG (SplitMix64), so every failure reproduces from
//! the fixed seed.

use ede_crypto::simsig;
use ede_wire::rdata::{Rdata, Soa};
use ede_wire::{Name, Record, RrType};
use ede_zone::canonical::signing_data;
use ede_zone::nsec3::{find_covering, find_matching};
use ede_zone::signer::{sign_zone, SignerConfig, SIM_NOW};
use ede_zone::{Denial, Misconfig, Nsec3Config, TypeSel, Zone, ZoneKeys};

/// Deterministic SplitMix64 stream driving the randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    /// A hostname label: `[a-z][a-z0-9]{0,10}`.
    fn label(&mut self) -> String {
        let len = self.below(11) as usize;
        let mut s = String::with_capacity(len + 1);
        s.push((b'a' + self.below(26) as u8) as char);
        const ALNUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        for _ in 0..len {
            s.push(ALNUM[self.below(ALNUM.len() as u64) as usize] as char);
        }
        s
    }

    fn labels(&mut self, max: u64) -> Vec<String> {
        (0..self.below(max)).map(|_| self.label()).collect()
    }

    fn bytes(&mut self, lo: u64, hi: u64) -> Vec<u8> {
        let len = lo + self.below(hi - lo);
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn build_zone(apex: &Name, hosts: &[String]) -> Zone {
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        Rdata::Soa(Soa {
            mname: apex.child("ns1").unwrap(),
            rname: apex.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 3600,
            expire: 1209600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        apex.clone(),
        3600,
        Rdata::Ns(apex.child("ns1").unwrap()),
    ));
    z.add_a(apex.child("ns1").unwrap(), "192.0.2.1".parse().unwrap());
    z.add_a(apex.clone(), "192.0.2.2".parse().unwrap());
    for h in hosts {
        if let Ok(name) = apex.child(h) {
            z.add_a(name, "192.0.2.3".parse().unwrap());
        }
    }
    z
}

/// Every signature in the zone verifies against the published ZSK/KSK.
fn zone_fully_verifies(zone: &Zone, keys: &ZoneKeys) -> bool {
    zone.iter().all(|set| {
        set.sigs.iter().all(|sig| {
            let key = if sig.key_tag == keys.ksk.key_tag() {
                &keys.ksk
            } else {
                &keys.zsk
            };
            let data = signing_data(sig, set);
            sig.inception <= SIM_NOW
                && SIM_NOW <= sig.expiration
                && simsig::verify(
                    &key.signing.public_key(),
                    sig.algorithm,
                    &data,
                    &sig.signature,
                )
                .is_ok()
        })
    })
}

#[test]
fn signed_zones_always_verify() {
    let mut rng = Rng(0x0031_5eed);
    for _ in 0..48 {
        let hosts = rng.labels(6);
        let salt = rng.bytes(0, 6);
        let iterations = rng.below(4) as u16;

        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &hosts);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        let cfg = SignerConfig {
            denial: Denial::Nsec3(Nsec3Config { iterations, salt }),
            ..Default::default()
        };
        sign_zone(&mut zone, &keys, &cfg);
        assert!(zone_fully_verifies(&zone, &keys));
        // Every authoritative RRset except RRSIG carries at least one sig.
        for set in zone.iter() {
            if !zone.is_glue(&set.name) && !zone.is_delegation(&set.name) {
                assert!(!set.sigs.is_empty(), "{} {}", set.name, set.rtype);
            }
        }
    }
}

#[test]
fn nsec3_chain_is_sound_for_any_name() {
    let mut rng = Rng(0x0032_5eed);
    for _ in 0..48 {
        let hosts = rng.labels(6);
        let probe = rng.label();

        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &hosts);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        let cfg = SignerConfig::default();
        sign_zone(&mut zone, &keys, &cfg);
        let params = Nsec3Config::default();

        // Existing names match; their hashes are never "covered".
        for name in zone.names() {
            if zone.is_glue(name) || name.first_label().is_some_and(|l| l.len() == 32) {
                continue; // NSEC3 owners themselves / glue are not chained
            }
            assert!(find_matching(&zone, &params, name).is_some(), "{name}");
            assert!(find_covering(&zone, &params, name).is_none(), "{name}");
        }
        // A random probe either exists (matches) or is covered.
        let probe_name = apex.child(&probe).unwrap();
        let matches = find_matching(&zone, &params, &probe_name).is_some();
        let covered = find_covering(&zone, &params, &probe_name).is_some();
        assert!(
            matches ^ covered,
            "{probe_name}: matches={matches} covered={covered}"
        );
    }
}

#[test]
fn every_misconfig_changes_the_zone_or_its_ds() {
    use Misconfig::*;
    let all = [
        NoDs,
        DsBadTag,
        DsBadKeyAlgo,
        DsUnassignedKeyAlgo,
        DsReservedKeyAlgo,
        DsUnassignedDigestAlgo,
        DsBogusDigestValue,
        RrsigExpired(TypeSel::All),
        RrsigExpired(TypeSel::OnlyApexA),
        RrsigNotYetValid(TypeSel::All),
        RrsigMissing(TypeSel::All),
        RrsigExpiredBeforeValid(TypeSel::All),
        Nsec3Missing,
        BadNsec3Hash,
        BadNsec3Next,
        BadNsec3Rrsig,
        Nsec3RrsigMissing,
        Nsec3ParamMissing,
        BadNsec3ParamSalt,
        NoNsec3ParamNsec3,
        NoZsk,
        BadZsk,
        NoKsk,
        NoRrsigKsk,
        BadRrsigKsk,
        BadKsk,
        NoRrsigDnskey,
        BadRrsigDnskey,
    ];
    // Exhaustive over the whole catalogue — no sampling needed.
    for m in all {
        let apex = Name::parse("prop.example").unwrap();
        let mut zone = build_zone(&apex, &[]);
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        sign_zone(&mut zone, &keys, &SignerConfig::default());
        let pristine = zone.clone();
        let correct_ds = keys.ksk.ds_rdata(&apex, ede_wire::DigestAlg::SHA256);

        m.apply(&mut zone, &keys);
        let ds = m.parent_ds(&keys, &apex);

        let zone_changed = zone != pristine;
        let ds_changed = ds != vec![correct_ds];
        assert!(
            zone_changed || ds_changed,
            "{m:?} must alter the zone or its DS"
        );
        // Parent-side cases leave the child untouched; child-side cases
        // leave the DS correct.
        if m.is_parent_side() {
            assert!(!zone_changed, "{m:?} is parent-side");
        } else {
            assert!(!ds_changed, "{m:?} is child-side");
        }
    }
}

#[test]
fn canonical_signing_data_is_order_invariant() {
    use ede_zone::Rrset;
    let mut rng = Rng(0x0033_5eed);
    for _ in 0..64 {
        let n = 1 + rng.below(5);
        let addrs: Vec<[u8; 4]> = (0..n)
            .map(|_| {
                let mut a = [0u8; 4];
                a.iter_mut().for_each(|b| *b = rng.next() as u8);
                a
            })
            .collect();
        let name = Name::parse("set.example").unwrap();
        let mut forward = Rrset::empty(name.clone(), RrType::A, 300);
        for a in &addrs {
            forward.push(Rdata::A((*a).into()));
        }
        let mut backward = Rrset::empty(name, RrType::A, 300);
        for a in addrs.iter().rev() {
            backward.push(Rdata::A((*a).into()));
        }
        let sig = ede_wire::rdata::Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 300,
            expiration: SIM_NOW + 100,
            inception: SIM_NOW - 100,
            key_tag: 1,
            signer: Name::parse("example").unwrap(),
            signature: vec![],
        };
        assert_eq!(signing_data(&sig, &forward), signing_data(&sig, &backward));
    }
}

/// The master-file parser never panics, whatever we feed it — and a
/// rendered zone with one mutated byte either parses or errors cleanly.
#[test]
fn master_file_parser_never_panics() {
    let mut rng = Rng(0x0034_5eed);
    let apex = Name::parse("fuzz.example").unwrap();
    let mut zone = build_zone(&apex, &[]);
    let keys = ZoneKeys::generate(&apex, 8, 2048);
    sign_zone(&mut zone, &keys, &SignerConfig::default());
    let pristine = ede_zone::textual::zone_to_master_file(&zone).into_bytes();
    for _ in 0..64 {
        let mut text = pristine.clone();
        let i = rng.below(text.len() as u64) as usize;
        text[i] = rng.next() as u8;
        // Any outcome except a panic is acceptable.
        let _ = ede_zone::parse::parse_master_file(&String::from_utf8_lossy(&text));
    }
}
