//! Randomized tests for the resolver cache: TTL monotonicity,
//! serve-stale windows, and the failure/success interplay behind
//! EDE 3/13/19. Cases are driven by an in-file deterministic PRNG
//! (SplitMix64), so every failure reproduces from the fixed seed.

use ede_resolver::cache::{Cache, CacheHit, CachedResolution};
use ede_resolver::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, RrType};

/// Deterministic SplitMix64 stream driving the randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo) as u64) as u32
    }
}

fn entry(is_failure: bool) -> CachedResolution {
    CachedResolution {
        rcode: if is_failure {
            Rcode::ServFail
        } else {
            Rcode::NoError
        },
        answers: Vec::new(),
        diagnosis: Diagnosis::new(),
        is_failure,
    }
}

/// Freshness is monotone in time: once an entry stops being fresh it
/// never becomes fresh again, and once it leaves the stale window it
/// never comes back.
#[test]
fn freshness_is_monotone() {
    let mut rng = Rng(0x0021_5eed);
    for _ in 0..128 {
        let ttl = rng.range_u32(1, 10_000);
        let window = rng.range_u32(0, 10_000);
        let cache = Cache::new(window);
        let name = Name::parse("mono.example").unwrap();
        let t0 = 1_000_000;
        cache.put(&name, RrType::A, entry(false), ttl, t0);

        let n_probes = 1 + rng.below(19);
        let mut probes: Vec<u32> = (0..n_probes).map(|_| rng.range_u32(0, 40_000)).collect();
        probes.sort_unstable();
        let mut state = 2; // 2 = fresh, 1 = stale, 0 = miss
        for dt in probes {
            let now = t0 + dt;
            let s = match cache.get(&name, RrType::A, now) {
                CacheHit::Fresh(_) => 2,
                CacheHit::Stale(_) => 1,
                CacheHit::Miss => 0,
            };
            assert!(s <= state, "state went {state} → {s} at +{dt}s");
            state = s;
        }
    }
}

/// The exact boundaries: fresh through ttl, stale through ttl + window,
/// miss afterwards.
#[test]
fn window_boundaries() {
    let mut rng = Rng(0x0022_5eed);
    for _ in 0..128 {
        let ttl = rng.range_u32(1, 5_000);
        let window = rng.range_u32(1, 5_000);
        let cache = Cache::new(window);
        let name = Name::parse("edge.example").unwrap();
        let t0 = 500_000;
        cache.put(&name, RrType::A, entry(false), ttl, t0);

        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl),
            CacheHit::Fresh(_)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + 1),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + window),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + window + 1),
            CacheHit::Miss
        ));
    }
}

/// A failure entry can never shadow a success that is still within its
/// serve-stale window — otherwise serve-stale could not work.
#[test]
fn failures_never_shadow_stale_successes() {
    let mut rng = Rng(0x0023_5eed);
    for _ in 0..128 {
        let success_ttl = rng.range_u32(1, 1_000);
        let gap = rng.range_u32(0, 1_500);
        let window = rng.range_u32(2_000, 4_000);
        let cache = Cache::new(window);
        let name = Name::parse("shadow.example").unwrap();
        let t0 = 100_000;
        cache.put(&name, RrType::A, entry(false), success_ttl, t0);
        let t1 = t0 + gap;
        cache.put(&name, RrType::A, entry(true), 30, t1);
        // gap < success_ttl + window always here, so the success must
        // survive.
        assert!(cache.get_stale_success(&name, RrType::A, t1).is_some());
    }
}

/// Distinct (name, type) keys never interfere.
#[test]
fn keys_are_independent() {
    let mut rng = Rng(0x0024_5eed);
    for _ in 0..64 {
        let n_names = 2 + rng.below(4) as usize;
        let labels: Vec<String> = (0..n_names)
            .map(|_| {
                let len = 1 + rng.below(8);
                (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect()
            })
            .collect();
        let cache = Cache::new(100);
        let t0 = 1_000;
        for (i, label) in labels.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            cache.put(&name, RrType::A, entry(i % 2 == 0), 60, t0);
        }
        for (i, label) in labels.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            match cache.get(&name, RrType::A, t0 + 1) {
                CacheHit::Fresh(data) => assert_eq!(data.is_failure, i % 2 == 0),
                other => panic!("expected fresh hit, got {other:?}"),
            }
        }
    }
}
