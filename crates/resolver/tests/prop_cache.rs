//! Randomized tests for the resolver cache: TTL monotonicity,
//! serve-stale windows, and the failure/success interplay behind
//! EDE 3/13/19. Cases are driven by an in-file deterministic PRNG
//! (SplitMix64), so every failure reproduces from the fixed seed.

use ede_resolver::cache::{Cache, CacheHit, CacheLimits, CachedResolution};
use ede_resolver::diagnosis::Diagnosis;
use ede_resolver::L1Cache;
use ede_wire::{Name, Rcode, RrType};

/// Deterministic SplitMix64 stream driving the randomized cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo) as u64) as u32
    }
}

fn entry(is_failure: bool) -> CachedResolution {
    CachedResolution {
        rcode: if is_failure {
            Rcode::ServFail
        } else {
            Rcode::NoError
        },
        answers: Vec::new(),
        diagnosis: Diagnosis::new(),
        is_failure,
    }
}

/// Freshness is monotone in time: once an entry stops being fresh it
/// never becomes fresh again, and once it leaves the stale window it
/// never comes back.
#[test]
fn freshness_is_monotone() {
    let mut rng = Rng(0x0021_5eed);
    for _ in 0..128 {
        let ttl = rng.range_u32(1, 10_000);
        let window = rng.range_u32(0, 10_000);
        let cache = Cache::new(window);
        let name = Name::parse("mono.example").unwrap();
        let t0 = 1_000_000;
        cache.put(&name, RrType::A, entry(false), ttl, t0);

        let n_probes = 1 + rng.below(19);
        let mut probes: Vec<u32> = (0..n_probes).map(|_| rng.range_u32(0, 40_000)).collect();
        probes.sort_unstable();
        let mut state = 2; // 2 = fresh, 1 = stale, 0 = miss
        for dt in probes {
            let now = t0 + dt;
            let s = match cache.get(&name, RrType::A, now) {
                CacheHit::Fresh(..) => 2,
                CacheHit::Stale(_) => 1,
                CacheHit::Miss => 0,
            };
            assert!(s <= state, "state went {state} → {s} at +{dt}s");
            state = s;
        }
    }
}

/// The exact boundaries: fresh through ttl, stale through ttl + window,
/// miss afterwards.
#[test]
fn window_boundaries() {
    let mut rng = Rng(0x0022_5eed);
    for _ in 0..128 {
        let ttl = rng.range_u32(1, 5_000);
        let window = rng.range_u32(1, 5_000);
        let cache = Cache::new(window);
        let name = Name::parse("edge.example").unwrap();
        let t0 = 500_000;
        cache.put(&name, RrType::A, entry(false), ttl, t0);

        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl),
            CacheHit::Fresh(..)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + 1),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + window),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            cache.get(&name, RrType::A, t0 + ttl + window + 1),
            CacheHit::Miss
        ));
    }
}

/// A failure entry can never shadow a success that is still within its
/// serve-stale window — otherwise serve-stale could not work.
#[test]
fn failures_never_shadow_stale_successes() {
    let mut rng = Rng(0x0023_5eed);
    for _ in 0..128 {
        let success_ttl = rng.range_u32(1, 1_000);
        let gap = rng.range_u32(0, 1_500);
        let window = rng.range_u32(2_000, 4_000);
        let cache = Cache::new(window);
        let name = Name::parse("shadow.example").unwrap();
        let t0 = 100_000;
        cache.put(&name, RrType::A, entry(false), success_ttl, t0);
        let t1 = t0 + gap;
        cache.put(&name, RrType::A, entry(true), 30, t1);
        // gap < success_ttl + window always here, so the success must
        // survive.
        assert!(cache.get_stale_success(&name, RrType::A, t1).is_some());
    }
}

/// The entry budget is a hard invariant under arbitrary interleavings
/// of inserts, overwrites, expiries, and time jumps: at no observation
/// point does the store hold more slots than the configured bound.
#[test]
fn entry_budget_holds_under_random_interleavings() {
    let mut rng = Rng(0x0025_5eed);
    for _ in 0..64 {
        let budget = 1 + rng.below(24) as usize;
        let window = rng.range_u32(0, 600);
        let cache = Cache::with_limits(
            window,
            CacheLimits {
                max_entries: Some(budget),
                max_bytes: None,
            },
        );
        let mut now = 1_000;
        let n_ops = 50 + rng.below(150);
        for _ in 0..n_ops {
            match rng.below(10) {
                // Mostly inserts; a name pool of 32 forces overwrites.
                0..=6 => {
                    let id = rng.below(32);
                    let name = Name::parse(&format!("n{id}.example")).unwrap();
                    let ttl = rng.range_u32(1, 900);
                    cache.put(&name, RrType::A, entry(rng.below(2) == 0), ttl, now);
                }
                // Time jump (possibly past whole TTL+window cohorts).
                7..=8 => now += rng.range_u32(0, 2_000),
                // Eager purge.
                _ => {
                    cache.purge_expired(now);
                }
            }
            assert!(
                cache.total_entries() <= budget,
                "budget {budget} exceeded: {} slots",
                cache.total_entries()
            );
        }
        let stats = cache.stats();
        assert_eq!(
            stats.occupancy,
            cache.total_entries() as u64,
            "gauge must match the store"
        );
    }
}

/// L1/L2 coherence: whatever interleaving of puts, probes and time
/// jumps happens, an L1 hit is never served past the freshness window
/// of the L2 entry it mirrored — the tiers can disagree on *whether*
/// to answer (L1 may miss where L2 hits) but never on freshness.
#[test]
fn l1_never_serves_past_the_mirrored_window() {
    let mut rng = Rng(0x0026_5eed);
    for _ in 0..64 {
        let window = rng.range_u32(0, 600);
        let cache = Cache::new(window);
        let l1 = L1Cache::new();
        let mut now = 1_000;
        let n_ops = 40 + rng.below(120);
        for _ in 0..n_ops {
            let id = rng.below(8);
            let name = Name::parse(&format!("c{id}.example")).unwrap();
            match rng.below(10) {
                // A resolution, with the resolver's exact discipline:
                // probe L1, then L2; a fresh L2 hit is mirrored into
                // L1, anything else "resolves live" and stores. An L2
                // entry is therefore only ever replaced after its
                // freshness lapsed — the structural fact the coherence
                // argument rests on.
                0..=7 => {
                    if l1.get_answer(&name, RrType::A, now).is_none() {
                        match cache.get(&name, RrType::A, now) {
                            CacheHit::Fresh(data, stored_at, ttl) => {
                                l1.put_answer(&name, RrType::A, data, stored_at, ttl);
                            }
                            _ => {
                                let ttl = rng.range_u32(1, 400);
                                cache.put(&name, RrType::A, entry(false), ttl, now);
                            }
                        }
                    }
                }
                _ => now += rng.range_u32(0, 800),
            }
            // The invariant: an L1 hit implies the L2 probe at the same
            // instant is Fresh or Stale with the same data — never past
            // the entry's stale window (i.e. never a plain miss), and
            // never fresh-in-L1 while expired-in-L2.
            for id in 0..8 {
                let name = Name::parse(&format!("c{id}.example")).unwrap();
                if l1.get_answer(&name, RrType::A, now).is_some() {
                    assert!(
                        matches!(
                            cache.get(&name, RrType::A, now),
                            CacheHit::Fresh(..) | CacheHit::Stale(_)
                        ),
                        "L1 hit for a name L2 considers dead at {now}"
                    );
                }
            }
        }
    }
}

/// Distinct (name, type) keys never interfere.
#[test]
fn keys_are_independent() {
    let mut rng = Rng(0x0024_5eed);
    for _ in 0..64 {
        let n_names = 2 + rng.below(4) as usize;
        let labels: Vec<String> = (0..n_names)
            .map(|_| {
                let len = 1 + rng.below(8);
                (0..len)
                    .map(|_| (b'a' + rng.below(26) as u8) as char)
                    .collect()
            })
            .collect();
        let cache = Cache::new(100);
        let t0 = 1_000;
        for (i, label) in labels.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            cache.put(&name, RrType::A, entry(i % 2 == 0), 60, t0);
        }
        for (i, label) in labels.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            match cache.get(&name, RrType::A, t0 + 1) {
                CacheHit::Fresh(data, ..) => assert_eq!(data.is_failure, i % 2 == 0),
                other => panic!("expected fresh hit, got {other:?}"),
            }
        }
    }
}
