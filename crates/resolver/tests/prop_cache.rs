//! Property tests for the resolver cache: TTL monotonicity, serve-stale
//! windows, and the failure/success interplay behind EDE 3/13/19.

use ede_resolver::cache::{Cache, CacheHit, CachedResolution};
use ede_resolver::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, RrType};
use proptest::prelude::*;

fn entry(is_failure: bool) -> CachedResolution {
    CachedResolution {
        rcode: if is_failure { Rcode::ServFail } else { Rcode::NoError },
        answers: Vec::new(),
        diagnosis: Diagnosis::new(),
        is_failure,
    }
}

proptest! {
    /// Freshness is monotone in time: once an entry stops being fresh it
    /// never becomes fresh again, and once it leaves the stale window it
    /// never comes back.
    #[test]
    fn freshness_is_monotone(
        ttl in 1u32..10_000,
        window in 0u32..10_000,
        probes in proptest::collection::vec(0u32..40_000, 1..20),
    ) {
        let cache = Cache::new(window);
        let name = Name::parse("mono.example").unwrap();
        let t0 = 1_000_000;
        cache.put(name.clone(), RrType::A, entry(false), ttl, t0);

        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut state = 2; // 2 = fresh, 1 = stale, 0 = miss
        for dt in sorted {
            let now = t0 + dt;
            let s = match cache.get(&name, RrType::A, now) {
                CacheHit::Fresh(_) => 2,
                CacheHit::Stale(_) => 1,
                CacheHit::Miss => 0,
            };
            prop_assert!(s <= state, "state went {state} → {s} at +{dt}s");
            state = s;
        }
    }

    /// The exact boundaries: fresh through ttl, stale through
    /// ttl + window, miss afterwards.
    #[test]
    fn window_boundaries(ttl in 1u32..5_000, window in 1u32..5_000) {
        let cache = Cache::new(window);
        let name = Name::parse("edge.example").unwrap();
        let t0 = 500_000;
        cache.put(name.clone(), RrType::A, entry(false), ttl, t0);

        prop_assert!(matches!(cache.get(&name, RrType::A, t0 + ttl), CacheHit::Fresh(_)));
        prop_assert!(matches!(cache.get(&name, RrType::A, t0 + ttl + 1), CacheHit::Stale(_)));
        prop_assert!(matches!(cache.get(&name, RrType::A, t0 + ttl + window), CacheHit::Stale(_)));
        prop_assert!(matches!(cache.get(&name, RrType::A, t0 + ttl + window + 1), CacheHit::Miss));
    }

    /// A failure entry can never shadow a success that is still within
    /// its serve-stale window — otherwise serve-stale could not work.
    #[test]
    fn failures_never_shadow_stale_successes(
        success_ttl in 1u32..1_000,
        gap in 0u32..1_500,
        window in 2_000u32..4_000,
    ) {
        let cache = Cache::new(window);
        let name = Name::parse("shadow.example").unwrap();
        let t0 = 100_000;
        cache.put(name.clone(), RrType::A, entry(false), success_ttl, t0);
        let t1 = t0 + gap;
        cache.put(name.clone(), RrType::A, entry(true), 30, t1);
        // gap < success_ttl + window always here, so the success must
        // survive.
        prop_assert!(cache.get_stale_success(&name, RrType::A, t1).is_some());
    }

    /// Distinct (name, type) keys never interfere.
    #[test]
    fn keys_are_independent(names in proptest::collection::vec("[a-z]{1,8}", 2..6)) {
        let cache = Cache::new(100);
        let t0 = 1_000;
        for (i, label) in names.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            cache.put(name, RrType::A, entry(i % 2 == 0), 60, t0);
        }
        for (i, label) in names.iter().enumerate() {
            let name = Name::parse(&format!("{label}{i}.example")).unwrap();
            match cache.get(&name, RrType::A, t0 + 1) {
                CacheHit::Fresh(data) => prop_assert_eq!(data.is_failure, i % 2 == 0),
                other => prop_assert!(false, "expected fresh hit, got {:?}", other),
            }
        }
    }
}
