//! End-to-end coverage for plain-NSEC zones: a mini internet with an
//! NSEC-signed root and child, resolved and validated.

use ede_authority::{ZoneServer, ZoneStore};
use ede_netsim::{NetworkBuilder, SimClock};
use ede_resolver::config::RootHint;
use ede_resolver::{Resolver, ResolverConfig, ValidationState, Vendor, VendorProfile};
use ede_wire::rdata::Soa;
use ede_wire::{DigestAlg, Name, Rcode, Rdata, Record, RrType};
use ede_zone::signer::{sign_zone, SignerConfig};
use ede_zone::{Denial, Zone, ZoneKeys};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

const ROOT_ADDR: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);
const CHILD_ADDR: Ipv4Addr = Ipv4Addr::new(185, 199, 120, 1);

fn n(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn soa_for(apex: &Name) -> Rdata {
    Rdata::Soa(Soa {
        mname: apex.child("ns1").unwrap(),
        rname: apex.child("hostmaster").unwrap(),
        serial: 1,
        refresh: 7200,
        retry: 3600,
        expire: 1209600,
        minimum: 300,
    })
}

/// Build a world where both the root and `nsec.test` are signed with
/// plain NSEC chains; returns a resolver over it. `mutate` gets a chance
/// to break the child zone after signing.
fn build(vendor: Vendor, mutate: impl FnOnce(&mut Zone, &ZoneKeys)) -> Resolver {
    let clock = SimClock::new();
    let mut net = NetworkBuilder::new();

    let child_apex = n("nsec.test");
    let mut child = Zone::new(child_apex.clone());
    child.add(Record::new(child_apex.clone(), 3600, soa_for(&child_apex)));
    child.add(Record::new(
        child_apex.clone(),
        3600,
        Rdata::Ns(n("ns1.nsec.test")),
    ));
    child.add_a(n("ns1.nsec.test"), CHILD_ADDR);
    child.add_a(child_apex.clone(), "203.0.113.5".parse().unwrap());
    child.add_a(n("www.nsec.test"), "203.0.113.6".parse().unwrap());
    let child_keys = ZoneKeys::generate(&child_apex, 8, 2048);
    let cfg = SignerConfig {
        denial: Denial::Nsec,
        ..Default::default()
    };
    sign_zone(&mut child, &child_keys, &cfg);
    mutate(&mut child, &child_keys);

    let root = Name::root();
    let mut root_zone = Zone::new(root.clone());
    root_zone.add(Record::new(root.clone(), 3600, soa_for(&root)));
    root_zone.add(Record::new(root.clone(), 3600, Rdata::Ns(n("ns1"))));
    root_zone.add_a(n("ns1"), ROOT_ADDR);
    root_zone.add(Record::new(n("test"), 3600, Rdata::Ns(n("ns1.nsec.test"))));
    // In-bailiwick-ish glue directly in the root for simplicity: the
    // delegation for `test` points straight at the child's server.
    root_zone.add(Record::new(
        child_apex.clone(),
        3600,
        Rdata::Ns(n("ns1.nsec.test")),
    ));
    root_zone.add_a(n("ns1.nsec.test"), CHILD_ADDR);
    root_zone.add(Record::new(
        child_apex.clone(),
        3600,
        child_keys.ksk.ds_rdata(&child_apex, DigestAlg::SHA256),
    ));
    // Remove the extra `test` NS so there is a single clean cut.
    root_zone.remove(&n("test"), RrType::Ns);
    let root_keys = ZoneKeys::generate(&root, 8, 2048);
    sign_zone(
        &mut root_zone,
        &root_keys,
        &SignerConfig {
            denial: Denial::Nsec,
            ..Default::default()
        },
    );
    let anchor = root_keys.ksk.ds_rdata(&root, DigestAlg::SHA256);

    let mut root_store = ZoneStore::new();
    root_store.insert(root_zone);
    net.register(IpAddr::V4(ROOT_ADDR), Arc::new(ZoneServer::new(root_store)));
    let mut child_store = ZoneStore::new();
    child_store.insert(child);
    net.register(
        IpAddr::V4(CHILD_ADDR),
        Arc::new(ZoneServer::new(child_store)),
    );

    let config = ResolverConfig::with_roots(
        vec![RootHint {
            name: n("ns1"),
            addr: IpAddr::V4(ROOT_ADDR),
        }],
        vec![anchor],
    );
    Resolver::new(
        Arc::new(net.build(clock)),
        VendorProfile::new(vendor),
        config,
    )
}

#[test]
fn nsec_zone_validates_secure() {
    let r = build(Vendor::Unbound, |_, _| {});
    let res = r.resolve_a("www.nsec.test");
    assert_eq!(res.rcode, Rcode::NoError, "{:?}", res.diagnosis);
    assert_eq!(res.validation, ValidationState::Secure);
    assert!(res.authentic_data);
    assert!(res.ede.is_empty());
}

#[test]
fn nsec_nodata_proof_validates() {
    let r = build(Vendor::Unbound, |_, _| {});
    let res = r.resolve(&n("www.nsec.test"), RrType::Aaaa);
    assert_eq!(res.rcode, Rcode::NoError, "{:?}", res.diagnosis);
    assert_eq!(
        res.validation,
        ValidationState::Secure,
        "{:?}",
        res.diagnosis
    );
    assert!(res.ede.is_empty());
}

#[test]
fn nsec_nxdomain_proof_validates() {
    let r = build(Vendor::Cloudflare, |_, _| {});
    let res = r.resolve_a("missing.nsec.test");
    assert_eq!(res.rcode, Rcode::NxDomain, "{:?}", res.diagnosis);
    assert_eq!(
        res.validation,
        ValidationState::Secure,
        "{:?}",
        res.diagnosis
    );
    assert!(res.ede.is_empty());
}

#[test]
fn stripped_nsec_chain_is_detected() {
    let r = build(Vendor::Unbound, |zone, _| {
        let owners: Vec<Name> = zone
            .iter()
            .filter(|s| s.rtype == RrType::Nsec)
            .map(|s| s.name.clone())
            .collect();
        for o in owners {
            zone.remove(&o, RrType::Nsec);
        }
    });
    let res = r.resolve_a("missing.nsec.test");
    assert_eq!(res.rcode, Rcode::ServFail, "{:?}", res.diagnosis);
    // With the whole chain gone the server can no longer tell the zone
    // uses NSEC at all and sends the negative answer unsigned — the same
    // observable as the testbed's no-nsec3param-nsec3 case, which
    // Unbound reports as RRSIGs Missing (10).
    assert_eq!(res.ede_codes(), vec![10], "{:?}", res.diagnosis);
}

#[test]
fn unsigned_nsec_proof_is_detected() {
    let r = build(Vendor::Unbound, |zone, _| {
        for set in zone.iter_mut() {
            if set.rtype == RrType::Nsec {
                set.sigs.clear();
            }
        }
    });
    let res = r.resolve_a("missing.nsec.test");
    assert_eq!(res.rcode, Rcode::ServFail);
    assert_eq!(res.ede_codes(), vec![12], "{:?}", res.diagnosis);
}

#[test]
fn corrupted_nsec_sigs_are_detected() {
    let r = build(Vendor::Cloudflare, |zone, _| {
        for set in zone.iter_mut() {
            if set.rtype == RrType::Nsec {
                for sig in &mut set.sigs {
                    if let Some(b) = sig.signature.first_mut() {
                        *b ^= 0xff;
                    }
                }
            }
        }
    });
    let res = r.resolve_a("missing.nsec.test");
    assert_eq!(res.rcode, Rcode::ServFail);
    assert_eq!(res.ede_codes(), vec![6], "{:?}", res.diagnosis);
}
