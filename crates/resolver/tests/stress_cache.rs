//! Concurrency stress tests for the sharded resolver cache: many
//! threads hammering put/get/serve-stale across shards must never lose
//! entries, never hand out torn data, and must preserve the
//! failure-never-clobbers-stale-success invariant under contention.

use ede_resolver::cache::{Cache, CacheHit, CachedResolution, SHARD_COUNT};
use ede_resolver::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, RrType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn entry(is_failure: bool) -> CachedResolution {
    CachedResolution {
        rcode: if is_failure {
            Rcode::ServFail
        } else {
            Rcode::NoError
        },
        answers: Vec::new(),
        diagnosis: Diagnosis::new(),
        is_failure,
    }
}

fn name(thread: usize, i: usize) -> Name {
    Name::parse(&format!("d{i}.t{thread}.example")).unwrap()
}

/// Every thread writes its own key space while reading everyone
/// else's. After the storm, every entry must be present and carry the
/// payload its writer stored.
#[test]
fn concurrent_put_get_across_shards() {
    const THREADS: usize = 8;
    const NAMES: usize = 200;
    let cache = Cache::new(100);
    let misses = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            let misses = &misses;
            s.spawn(move || {
                for i in 0..NAMES {
                    cache.put(&name(t, i), RrType::A, entry(i % 3 == 0), 60, 1_000);
                    // Read a neighbour's key space while it is being
                    // written: a miss is fine (not yet stored), but a
                    // hit must be internally consistent.
                    let other = name((t + 1) % THREADS, i);
                    match cache.get(&other, RrType::A, 1_010) {
                        CacheHit::Fresh(data, ..) => {
                            assert_eq!(data.is_failure, i % 3 == 0, "torn read for {other}");
                        }
                        CacheHit::Stale(_) => panic!("nothing can be stale yet"),
                        CacheHit::Miss => {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Everything written must be retrievable afterwards.
    for t in 0..THREADS {
        for i in 0..NAMES {
            match cache.get(&name(t, i), RrType::A, 1_010) {
                CacheHit::Fresh(data, ..) => assert_eq!(data.is_failure, i % 3 == 0),
                other => panic!("lost {} : {other:?}", name(t, i)),
            }
        }
    }
    assert_eq!(cache.len(1_010), THREADS * NAMES);
    // Sanity: the key space is much larger than SHARD_COUNT, so the
    // storm genuinely exercised every shard.
    const { assert!(THREADS * NAMES > SHARD_COUNT) };
}

/// The serve-stale invariant under contention: concurrent failure puts
/// must never clobber a success that is still inside its stale window,
/// no matter how they interleave with probes.
#[test]
fn failure_puts_never_clobber_stale_success_under_contention() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 500;
    let cache = Cache::new(10_000);
    let qname = Name::parse("flappy.example").unwrap();
    // Stored at t=1000 with ttl 60: stale (but servable) at t=1100.
    cache.put(&qname, RrType::A, entry(false), 60, 1_000);

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cache = &cache;
            let qname = &qname;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    cache.put(qname, RrType::A, entry(true), 30, 1_100);
                    let stale = cache
                        .get_stale_success(qname, RrType::A, 1_100)
                        .expect("stale success clobbered by a failure put");
                    assert!(!stale.is_failure);
                    assert_eq!(stale.rcode, Rcode::NoError);
                }
            });
        }
    });

    assert!(cache.get_stale_success(&qname, RrType::A, 1_100).is_some());
}

/// The zero-deep-clone guarantee survives concurrency: every hit on an
/// unchanged entry is the same allocation (`Arc::ptr_eq`), from every
/// thread.
#[test]
fn concurrent_hits_share_one_allocation() {
    const THREADS: usize = 8;
    let cache = Cache::new(100);
    let qname = Name::parse("shared.example").unwrap();
    cache.put(&qname, RrType::A, entry(false), 60, 1_000);
    let reference = match cache.get(&qname, RrType::A, 1_001) {
        CacheHit::Fresh(data, ..) => data,
        other => panic!("expected fresh hit, got {other:?}"),
    };

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let cache = &cache;
            let qname = &qname;
            let reference = &reference;
            s.spawn(move || {
                for _ in 0..1_000 {
                    match cache.get(qname, RrType::A, 1_001) {
                        CacheHit::Fresh(data, ..) => {
                            assert!(Arc::ptr_eq(&data, reference), "hit deep-cloned the entry")
                        }
                        other => panic!("expected fresh hit, got {other:?}"),
                    }
                }
            });
        }
    });
}
