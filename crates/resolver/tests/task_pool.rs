//! Scale and determinism tests for the event-driven task pool: ten
//! thousand resolutions in flight on one thread, slot recycling keeping
//! memory bounded by the window (not the total spawned), and identical
//! outcomes under arbitrary interleavings of `spawn` and `next`.
//!
//! The network here is deliberately empty: every root-hint exchange
//! parks the task until its timeout completion fires, which is exactly
//! the shape that exercises the scheduler (the full resolution pipeline
//! is covered end-to-end by the testbed and scan suites).

use ede_netsim::{NetworkBuilder, NetworkConfig, SimClock};
use ede_resolver::config::RootHint;
use ede_resolver::{Resolution, ResolutionPool, Resolver, ResolverConfig, Vendor, VendorProfile};
use ede_trace::Metrics;
use ede_wire::{Name, Rcode, RrType};
use std::sync::Arc;

/// Deterministic SplitMix64 stream driving the randomized interleaving
/// cases (same idiom as `prop_cache.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }
}

/// An empty simulated internet with one unregistered root hint: every
/// resolution sends to the root, parks until its timeout completion
/// fires, and ends in ServFail. No route is ever found, so tasks
/// genuinely suspend. The world is zero-latency like the scan world —
/// every completion event carries the same timestamp, so ordering rests
/// entirely on the queue's FIFO-among-ties rule.
fn parked_world() -> (Arc<ede_netsim::Network>, Arc<Resolver>) {
    let config = NetworkConfig {
        rtt_ms: 0,
        timeout_ms: 0,
        ..Default::default()
    };
    let net = Arc::new(NetworkBuilder::new().config(config).build(SimClock::new()));
    let mut config = ResolverConfig::default();
    config.root_hints = vec![RootHint {
        name: Name::parse("a.root-servers.net").unwrap(),
        addr: "198.41.0.4".parse().unwrap(),
    }];
    let resolver = Arc::new(Resolver::new(
        net.clone(),
        VendorProfile::new(Vendor::Bind9),
        config,
    ));
    (net, resolver)
}

fn spawn_lookup(
    pool: &mut ResolutionPool<(usize, Resolution)>,
    resolver: &Arc<Resolver>,
    i: usize,
) {
    let qname = Name::parse(&format!("task-{i}.stress.example")).unwrap();
    let resolver = Arc::clone(resolver);
    pool.spawn(move |handle| {
        let fut = resolver.resolve_on(handle, qname, RrType::A);
        async move { (i, fut.await) }
    });
}

/// Ten thousand resolutions admitted before a single completion is
/// collected: the pool really holds 10 000 suspended tasks at once on
/// one thread, loses none of them, and reports the peak through the
/// metrics gauges.
#[test]
fn ten_thousand_tasks_in_flight_on_one_worker() {
    const N: usize = 10_000;
    let (net, resolver) = parked_world();
    let metrics = Arc::new(Metrics::new());
    net.set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);

    let mut pool: ResolutionPool<(usize, Resolution)> = ResolutionPool::new(net.clone());
    for i in 0..N {
        spawn_lookup(&mut pool, &resolver, i);
    }
    assert_eq!(pool.in_flight(), N, "every task is suspended, none lost");
    assert_eq!(pool.queued(), N, "one pending completion per task");

    let mut seen = vec![false; N];
    let mut completed = 0usize;
    for (i, res) in &mut pool {
        assert!(!seen[i], "task {i} completed twice");
        seen[i] = true;
        assert_eq!(res.rcode, Rcode::ServFail);
        completed += 1;
    }
    assert_eq!(completed, N, "no completion was lost");
    assert!(pool.is_idle());
    assert_eq!(pool.queued(), 0);

    let snap = metrics.snapshot();
    net.clear_trace_sink();
    assert_eq!(snap.tasks_spawned, N as u64);
    assert_eq!(snap.tasks_completed, N as u64);
    assert_eq!(snap.inflight_tasks_peak, N as u64);
    // The spawn event snapshots the queue *before* the new task
    // registers its own wait, so the recorded peak is N - 1.
    assert_eq!(snap.ready_queue_peak, N as u64 - 1);
}

/// Slot recycling bounds the pool's memory by the in-flight *window*:
/// pushing ten thousand tasks through a 64-wide window must never
/// allocate more than 64 task slots.
#[test]
fn slot_recycling_bounds_memory_by_window() {
    const N: usize = 10_000;
    const WINDOW: usize = 64;
    let (_net, resolver) = parked_world();
    let mut pool: ResolutionPool<(usize, Resolution)> =
        ResolutionPool::new(resolver.network_shared());

    let mut next_spawn = 0usize;
    let mut completed = 0usize;
    while completed < N {
        while pool.in_flight() < WINDOW && next_spawn < N {
            spawn_lookup(&mut pool, &resolver, next_spawn);
            next_spawn += 1;
        }
        let (_, res) = pool.next().expect("tasks remain");
        assert_eq!(res.rcode, Rcode::ServFail);
        completed += 1;
        assert!(
            pool.slot_count() <= WINDOW,
            "slot table grew past the window: {} > {WINDOW}",
            pool.slot_count()
        );
    }
    assert!(pool.is_idle());
}

/// Scheduling is deterministic under *any* interleaving of admission
/// and collection: random spawn/drain schedules over the same task set
/// produce the same per-task outcomes, the same transport totals, and
/// the same final virtual-clock reading. Completion events carry equal
/// timestamps here (every wave shares one timeout deadline), so this
/// leans directly on the queue's FIFO-among-ties rule.
#[test]
fn interleaving_does_not_change_outcomes() {
    const N: usize = 200;

    let run = |schedule_seed: Option<u64>| {
        let (net, resolver) = parked_world();
        let mut pool: ResolutionPool<(usize, Resolution)> = ResolutionPool::new(net.clone());
        let mut results: Vec<Option<Rcode>> = vec![None; N];
        let mut next_spawn = 0usize;
        match schedule_seed {
            // Baseline schedule: admit everything, then drain.
            None => {
                for i in 0..N {
                    spawn_lookup(&mut pool, &resolver, i);
                }
                for (i, res) in &mut pool {
                    results[i] = Some(res.rcode);
                }
            }
            // Randomized schedule: coin-flip between admitting a task
            // and collecting a completion until both sides run dry.
            Some(seed) => {
                let mut rng = Rng(seed);
                loop {
                    let can_spawn = next_spawn < N;
                    let can_drain = !pool.is_idle();
                    if !can_spawn && !can_drain {
                        break;
                    }
                    if can_spawn && (!can_drain || rng.below(2) == 0) {
                        spawn_lookup(&mut pool, &resolver, next_spawn);
                        next_spawn += 1;
                    } else if let Some((i, res)) = pool.next() {
                        results[i] = Some(res.rcode);
                    }
                }
            }
        }
        let outcomes: Vec<Rcode> = results.into_iter().map(|r| r.expect("completed")).collect();
        (
            outcomes,
            net.stats().snapshot_full(),
            net.clock().now_millis(),
        )
    };

    let baseline = run(None);
    for seed in [0x0EDE_0001u64, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        let shuffled = run(Some(seed));
        assert_eq!(baseline.0, shuffled.0, "per-task outcomes (seed {seed:#x})");
        assert_eq!(baseline.1, shuffled.1, "transport totals (seed {seed:#x})");
        assert_eq!(baseline.2, shuffled.2, "final clock (seed {seed:#x})");
    }
}
