//! Single-threaded resumable-task executor for massive in-flight
//! concurrency.
//!
//! Each resolution becomes a *task*: a future that owns its pending
//! queries and suspends whenever it would block on the simulated
//! network. A [`ResolutionPool`] multiplexes thousands of such tasks on
//! one OS thread by draining a deterministic completion-event queue
//! ([`ede_netsim::CompletionQueue`]): the earliest-deadline event is
//! serviced, the owning task is polled one step, and any new waits it
//! registers go back into the queue. No OS scheduler, no wakers that do
//! anything, no nondeterminism — `docs/CONCURRENCY.md` specifies the
//! full model.
//!
//! Two entry points share the machinery:
//!
//! * [`ResolutionPool`] — the public pool. `spawn` admits a task,
//!   `next` runs the event loop until a task finishes and hands back
//!   its result. With `spawn`/`next` interleaved a caller keeps a
//!   bounded number of resolutions in flight.
//! * `run_local` (crate-internal) — drives exactly one task to
//!   completion behind the blocking [`crate::Resolver::resolve`] call.
//!   It emits no task-lifecycle events and is bit-identical to the
//!   historical blocking engine.
//!
//! # Example
//!
//! ```
//! use ede_netsim::{NetworkBuilder, SimClock};
//! use ede_resolver::{ResolutionPool, Resolver, ResolverConfig, Vendor, VendorProfile};
//! use ede_wire::{Name, Rcode, RrType};
//! use std::sync::Arc;
//!
//! // An empty simulated internet: every root hint times out, so each
//! // resolution fails fast — enough to show the pool mechanics.
//! let net = Arc::new(NetworkBuilder::new().build(SimClock::new()));
//! let resolver = Arc::new(Resolver::new(
//!     net.clone(),
//!     VendorProfile::new(Vendor::Bind9),
//!     ResolverConfig::default(),
//! ));
//!
//! // Three lookups in flight on one thread, one pool. Results arrive
//! // in completion order, so tag each task with its index.
//! let mut pool = ResolutionPool::new(net);
//! for (i, name) in ["a.example", "b.example", "c.example"].iter().enumerate() {
//!     let qname = Name::parse(name).unwrap();
//!     let resolver = Arc::clone(&resolver);
//!     pool.spawn(move |handle| {
//!         let fut = resolver.resolve_on(handle, qname, RrType::A);
//!         async move { (i, fut.await) }
//!     });
//! }
//! let mut done = 0;
//! for (_i, resolution) in &mut pool {
//!     assert_eq!(resolution.rcode, Rcode::ServFail);
//!     done += 1;
//! }
//! assert_eq!(done, 3);
//! ```

use ede_netsim::{CompletionQueue, InFlight, NetError, Network};
use ede_trace::{TraceEvent, Tracer};
use ede_wire::Message;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// One registered suspension: which task is parked and what it is
/// waiting for. At most one `Wait` per task exists at any instant
/// (tasks await a single exchange or timer at a time).
// `Net` dominates the queue (every parked exchange holds one) and is
// registered on the hot path — boxing the `InFlight` to shrink the
// rare `Timer` variant would cost an allocation per exchange.
#[allow(clippy::large_enum_variant)]
enum Wait {
    /// A network exchange in flight; servicing it completes the
    /// exchange (advancing the virtual clock to its deadline) and
    /// deposits the outcome in `slot` for the task's next poll.
    Net {
        task: usize,
        inflight: InFlight,
        slot: Rc<RefCell<Option<Result<Message, NetError>>>>,
    },
    /// A pure timer (retry backoff, hedging delay); servicing it
    /// advances the virtual clock to the queue deadline.
    Timer { task: usize },
}

impl Wait {
    fn task(&self) -> usize {
        match self {
            Wait::Net { task, .. } | Wait::Timer { task } => *task,
        }
    }
}

/// The per-pool event state shared (via `Rc`) with every task handle:
/// the deterministic completion queue of pending waits.
struct Reactor {
    queue: CompletionQueue<Wait>,
}

/// Service one popped wait: produce the side effects whose *timing*
/// the queue ordered. For a network wait this completes the exchange
/// (clock advance, delivery/timeout accounting, trace events); for a
/// timer it advances the clock to the timer's deadline.
fn service(net: &Network, deadline_ms: u64, wait: Wait) {
    match wait {
        Wait::Net { inflight, slot, .. } => {
            let outcome = net.complete(inflight);
            *slot.borrow_mut() = Some(outcome);
        }
        Wait::Timer { .. } => {
            net.clock().advance_to_millis(deadline_ms);
        }
    }
}

/// A do-nothing waker. The pool never relies on wakeups — it knows
/// exactly which task to poll because every suspension is registered
/// in the completion queue — so the `Waker` handed to futures is inert.
struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

fn noop_waker() -> Waker {
    Waker::from(Arc::new(NoopWake))
}

/// Capability handed to each task for suspending itself. Cloneable and
/// cheap; holds the pool's reactor and the task's slot index.
///
/// A handle is only usable from futures driven by the pool (or
/// blocking driver) that issued it — it is deliberately `!Send`, like
/// the pool itself.
#[derive(Clone)]
pub struct TaskHandle {
    reactor: Rc<RefCell<Reactor>>,
    net: Arc<Network>,
    task: usize,
}

impl TaskHandle {
    /// Suspend until the in-flight exchange completes, yielding its
    /// outcome. The send-time side effects already happened inside
    /// [`Network::send`]; this schedules the completion at the
    /// exchange's deadline and parks the task.
    pub fn await_net(&self, inflight: InFlight) -> NetFuture {
        NetFuture {
            reactor: self.reactor.clone(),
            task: self.task,
            inflight: Some(inflight),
            slot: Rc::new(RefCell::new(None)),
        }
    }

    /// Suspend for `ms` virtual milliseconds (retry backoff, hedging
    /// delays). The deadline is fixed when the future is created:
    /// `now + ms` on the shared virtual clock.
    pub fn sleep_millis(&self, ms: u64) -> TimerFuture {
        TimerFuture {
            reactor: self.reactor.clone(),
            task: self.task,
            deadline_ms: self.net.clock().now_millis() + ms,
            registered: false,
        }
    }
}

/// Future returned by [`TaskHandle::await_net`].
pub struct NetFuture {
    reactor: Rc<RefCell<Reactor>>,
    task: usize,
    inflight: Option<InFlight>,
    slot: Rc<RefCell<Option<Result<Message, NetError>>>>,
}

impl Future for NetFuture {
    type Output = Result<Message, NetError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(outcome) = this.slot.borrow_mut().take() {
            return Poll::Ready(outcome);
        }
        if let Some(inflight) = this.inflight.take() {
            let deadline = inflight.deadline_ms();
            this.reactor.borrow_mut().queue.push(
                deadline,
                Wait::Net {
                    task: this.task,
                    inflight,
                    slot: this.slot.clone(),
                },
            );
        }
        Poll::Pending
    }
}

/// Future returned by [`TaskHandle::sleep_millis`].
pub struct TimerFuture {
    reactor: Rc<RefCell<Reactor>>,
    task: usize,
    deadline_ms: u64,
    registered: bool,
}

impl Future for TimerFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if this.registered {
            // The pool only re-polls a task after servicing its wait,
            // so a second poll means the timer fired.
            return Poll::Ready(());
        }
        this.registered = true;
        this.reactor
            .borrow_mut()
            .queue
            .push(this.deadline_ms, Wait::Timer { task: this.task });
        Poll::Pending
    }
}

/// A slot in the pool's task table. Slots are reused after completion
/// so memory stays bounded by the *in-flight* count, not the total
/// number of tasks ever spawned.
struct SlotEntry<T> {
    fut: Option<Pin<Box<dyn Future<Output = T>>>>,
    /// Pool-scoped display id, increasing in spawn order (used in
    /// `TaskSpawned`/`TaskCompleted` trace events).
    id: u64,
}

/// A single-threaded pool of resumable resolution tasks multiplexed
/// over one deterministic completion-event queue.
///
/// The caller drives the pool explicitly: [`spawn`](Self::spawn) admits
/// a task (polling it eagerly — tasks that never block, e.g. cache
/// hits, finish inside `spawn`), and [`next`](Self::next) steps the
/// event loop until some task finishes, returning its result. Results
/// are delivered in *completion* order, not spawn order; tag tasks
/// with their index if order matters.
///
/// Scheduling is fully deterministic: pending completions are serviced
/// in ascending deadline order, FIFO among equal deadlines (see
/// [`ede_netsim::CompletionQueue`]). With the same spawns in the same
/// order, every run produces the identical event sequence.
pub struct ResolutionPool<T> {
    net: Arc<Network>,
    tracer: Tracer,
    reactor: Rc<RefCell<Reactor>>,
    slots: Vec<SlotEntry<T>>,
    free: Vec<usize>,
    ready: VecDeque<T>,
    /// Tasks admitted and not yet completed.
    live: usize,
    /// Total tasks ever spawned (source of display ids).
    spawned: u64,
    waker: Waker,
}

impl<T> ResolutionPool<T> {
    /// Create an empty pool bound to one simulated network. The pool
    /// captures the network's current trace sink for task-lifecycle
    /// events; attach sinks before building pools.
    pub fn new(net: Arc<Network>) -> Self {
        let tracer = net.tracer();
        ResolutionPool {
            net,
            tracer,
            reactor: Rc::new(RefCell::new(Reactor {
                queue: CompletionQueue::new(),
            })),
            slots: Vec::new(),
            free: Vec::new(),
            ready: VecDeque::new(),
            live: 0,
            spawned: 0,
            waker: noop_waker(),
        }
    }

    /// Number of tasks admitted and not yet completed (including any
    /// whose results are buffered but not yet collected via `next`).
    pub fn in_flight(&self) -> usize {
        self.live
    }

    /// Number of pending completion events (network exchanges and
    /// timers) the pool is waiting on.
    pub fn queued(&self) -> usize {
        self.reactor.borrow().queue.len()
    }

    /// Number of task slots ever allocated. Slots are recycled on
    /// completion, so this tracks the peak in-flight count — the pool's
    /// memory bound — not the total number of tasks spawned.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// True when no task is in flight and no result is buffered:
    /// [`next`](Self::next) would return `None`.
    pub fn is_idle(&self) -> bool {
        self.live == 0 && self.ready.is_empty()
    }

    /// Admit a resolution task. `make` receives the [`TaskHandle`] the
    /// task must use for every suspension and returns the task future
    /// (see [`crate::Resolver::resolve_on`]).
    ///
    /// The task is polled eagerly: work up to its first suspension —
    /// or all of it, for tasks that never block — happens inside
    /// `spawn`, and synchronously-finished results are buffered for
    /// [`next`](Self::next).
    pub fn spawn<F, M>(&mut self, make: M)
    where
        M: FnOnce(TaskHandle) -> F,
        F: Future<Output = T> + 'static,
    {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(SlotEntry { fut: None, id: 0 });
                self.slots.len() - 1
            }
        };
        let id = self.spawned;
        self.spawned += 1;
        let handle = TaskHandle {
            reactor: self.reactor.clone(),
            net: self.net.clone(),
            task: slot,
        };
        self.slots[slot] = SlotEntry {
            fut: Some(Box::pin(make(handle))),
            id,
        };
        self.live += 1;
        self.tracer.emit(TraceEvent::TaskSpawned {
            task: id,
            in_flight: self.live,
            queued: self.reactor.borrow().queue.len(),
        });
        self.poll_slot(slot);
    }

    /// Poll the task in `slot` one step; on completion buffer its
    /// result, recycle the slot, and announce the lifecycle event.
    fn poll_slot(&mut self, slot: usize) {
        let mut fut = self.slots[slot]
            .fut
            .take()
            .expect("polled slot holds a task");
        let mut cx = Context::from_waker(&self.waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(result) => {
                self.live -= 1;
                let id = self.slots[slot].id;
                self.free.push(slot);
                self.ready.push_back(result);
                self.tracer.emit(TraceEvent::TaskCompleted {
                    task: id,
                    in_flight: self.live,
                    queued: self.reactor.borrow().queue.len(),
                });
            }
            Poll::Pending => {
                self.slots[slot].fut = Some(fut);
            }
        }
    }
}

impl<T> Iterator for ResolutionPool<T> {
    type Item = T;

    /// Run the event loop until some task finishes and return its
    /// result, or `None` when the pool is idle. Results arrive in
    /// completion order. The pool is not fused: spawning after `None`
    /// makes `next` yield results again.
    fn next(&mut self) -> Option<T> {
        loop {
            if let Some(result) = self.ready.pop_front() {
                return Some(result);
            }
            if self.live == 0 {
                return None;
            }
            let (deadline_ms, wait) = self
                .reactor
                .borrow_mut()
                .queue
                .pop()
                .expect("live tasks always hold a registered wait");
            let slot = wait.task();
            service(&self.net, deadline_ms, wait);
            self.poll_slot(slot);
        }
    }
}

impl<T> std::fmt::Debug for ResolutionPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolutionPool")
            .field("in_flight", &self.live)
            .field("queued", &self.queued())
            .field("spawned", &self.spawned)
            .finish()
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("task", &self.task)
            .finish()
    }
}

/// Drive exactly one task to completion on the calling thread. This is
/// the compatibility bridge behind the blocking [`crate::Resolver::resolve`]
/// API: a private single-slot event loop with no task-lifecycle events,
/// producing the identical event sequence the historical blocking
/// engine produced.
pub(crate) fn run_local<T, F, M>(net: &Arc<Network>, make: M) -> T
where
    M: FnOnce(TaskHandle) -> F,
    F: Future<Output = T>,
{
    let reactor = Rc::new(RefCell::new(Reactor {
        queue: CompletionQueue::new(),
    }));
    let handle = TaskHandle {
        reactor: reactor.clone(),
        net: net.clone(),
        task: 0,
    };
    let mut fut = Box::pin(make(handle));
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(result) => return result,
            Poll::Pending => {
                let (deadline_ms, wait) = reactor
                    .borrow_mut()
                    .queue
                    .pop()
                    .expect("a pending task has registered a wait");
                service(net, deadline_ms, wait);
            }
        }
    }
}
