//! Structured findings: the resolver's internal account of what went
//! wrong (or didn't) during one resolution.
//!
//! Findings carry exactly the detail that at least one of the seven
//! modeled vendors demonstrably conditions its EDE output on (derived
//! from the paper's Table 4). They are protocol-visible facts — message
//! shapes, registry statuses, signature checks — never query names.

use ede_trace::{TraceEvent, Tracer};
use ede_wire::{Name, Rcode, RrType};
use std::fmt;
use std::net::IpAddr;

/// How an individual nameserver query failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NsFailure {
    /// The address is special-purpose; packets can never route.
    Unroutable,
    /// No answer before the timeout (dead or silently dropping host).
    Timeout,
    /// Responded REFUSED.
    Refused,
    /// Responded SERVFAIL.
    ServFail,
    /// Responded NOTAUTH (only valid in TSIG processing — §4.2.13).
    NotAuth,
    /// Responded FORMERR.
    FormErr,
    /// Responded without an OPT record although we sent EDNS (§4.2.6).
    NoEdns,
    /// Replied with TC=1 and no usable stream fallback was available —
    /// the answer exceeded the negotiated UDP payload size and could
    /// not be fetched whole.
    Truncated,
    /// Some other error RCODE.
    OtherRcode(u16),
}

impl NsFailure {
    /// Classify a response RCODE into a failure, if it is one.
    pub fn from_rcode(rcode: Rcode) -> Option<Self> {
        match rcode {
            Rcode::Refused => Some(NsFailure::Refused),
            Rcode::ServFail => Some(NsFailure::ServFail),
            Rcode::NotAuth => Some(NsFailure::NotAuth),
            Rcode::FormErr => Some(NsFailure::FormErr),
            Rcode::NoError | Rcode::NxDomain => None,
            other => Some(NsFailure::OtherRcode(other.to_u16())),
        }
    }

    /// True for failures where the server *spoke* (an RCODE arrived) —
    /// Cloudflare's *Network Error (23)* category, as opposed to silence.
    pub fn is_rcode_failure(self) -> bool {
        matches!(
            self,
            NsFailure::Refused
                | NsFailure::ServFail
                | NsFailure::NotAuth
                | NsFailure::FormErr
                | NsFailure::OtherRcode(_)
        )
    }
}

impl fmt::Display for NsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsFailure::Unroutable => write!(f, "unroutable"),
            NsFailure::Timeout => write!(f, "timed out"),
            NsFailure::Refused => write!(f, "rcode=REFUSED"),
            NsFailure::ServFail => write!(f, "rcode=SERVFAIL"),
            NsFailure::NotAuth => write!(f, "rcode=NOTAUTH"),
            NsFailure::FormErr => write!(f, "rcode=FORMERR"),
            NsFailure::NoEdns => write!(f, "no EDNS support"),
            NsFailure::Truncated => write!(f, "truncated"),
            NsFailure::OtherRcode(v) => write!(f, "rcode={v}"),
        }
    }
}

/// One failed exchange with one nameserver address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsEvent {
    /// The server address queried.
    pub addr: IpAddr,
    /// What went wrong.
    pub failure: NsFailure,
    /// The name that was being asked.
    pub qname: Name,
    /// The type that was being asked.
    pub qtype: RrType,
}

/// Which RRset a signature-level finding refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigTarget {
    /// The final answer RRset (or the SOA of a negative answer).
    Answer,
    /// The zone's DNSKEY RRset (the chain-of-trust link).
    Dnskey,
    /// NSEC3 denial records.
    Denial,
}

/// Registry status of an algorithm number, as validation saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgStatus {
    /// Assigned but outside this resolver's capability set.
    UnsupportedAssigned,
    /// In the registry's unassigned range.
    Unassigned,
    /// In the registry's reserved range.
    Reserved,
    /// Assigned but deprecated for validation (RSA/MD5, DSA family).
    Deprecated,
}

/// Why a DS RRset failed to select a usable DNSKEY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsMismatch {
    /// No DNSKEY carried the DS's (key tag, algorithm) pair.
    TagOrAlgorithm,
    /// A DNSKEY matched the pair but its digest disagreed.
    Digest,
}

/// Why a denial proof was absent or useless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DenialIssue {
    /// The response carried no NSEC3 records at all.
    Absent,
    /// NSEC3 records were present but none matched or covered the names
    /// the proof needs (mangled owner hashes).
    OwnerMismatch,
    /// The closest-encloser matched but no interval covers the
    /// next-closer name (broken chain pointers).
    ChainMismatch,
}

/// Whether the answer needing a proof was NODATA or NXDOMAIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NegativeKind {
    /// Name exists, type does not.
    Nodata,
    /// Name does not exist.
    Nxdomain,
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    // ---- Connectivity ------------------------------------------------
    /// Every nameserver of the zone failed; resolution could not proceed.
    AllServersFailed {
        /// True when at least one failure was an RCODE (vs. silence).
        any_rcode_failure: bool,
    },
    /// A server answered without EDNS/OPT although the query used EDNS.
    EdnsNotSupported {
        /// The offending server.
        addr: IpAddr,
    },

    // ---- DS layer ------------------------------------------------------
    /// A DS carries an algorithm number outside the validator's world.
    DsUnknownAlgorithm {
        /// Why the algorithm is unusable.
        status: AlgStatus,
        /// The raw algorithm number.
        algorithm: u8,
    },
    /// A DS carries a digest type the validator cannot compute.
    DsUnsupportedDigest {
        /// True when the type is assigned (e.g. GOST) but uncapable,
        /// false when unassigned.
        assigned: bool,
        /// The raw digest type.
        digest_type: u8,
    },
    /// No DNSKEY in the child zone satisfied the DS RRset.
    DsNoMatchingDnskey {
        /// How matching failed.
        cause: DsMismatch,
    },
    /// The DNSKEY RRset could not be fetched at all.
    DnskeyUnobtainable {
        /// The failure observed.
        failure: NsFailure,
    },

    // ---- DNSKEY RRset validation ----------------------------------------
    /// The DS-matched KSK produced no signature over the DNSKEY RRset,
    /// though other signatures exist.
    DnskeySigMissingByMatchedKey,
    /// The DNSKEY RRset carries no signatures at all.
    DnskeyAllSigsMissing,
    /// Signature(s) over the DNSKEY RRset exist but fail cryptographic
    /// verification.
    DnskeySigBogus {
        /// True when the RRset still publishes a usable zone-key ZSK
        /// (distinguishes corrupted-key cases from removed-key cases —
        /// Quad9 demonstrably reports them differently).
        zsk_present: bool,
        /// True when at least one signature over the RRset verifies
        /// against *some* published key, just not the DS-matched one
        /// (the `bad-rrsig-ksk` shape).
        some_sig_valid: bool,
    },
    /// Every DNSKEY in the RRset has the Zone Key bit clear.
    NoZoneKeyBitSet,
    /// A published stand-by / in-rollover key has no covering RRSIG —
    /// harmless, but Cloudflare flags it (§4.2.3).
    StandbyKeyWithoutRrsig,
    /// A published key has a modeled size below the validator's floor
    /// ("unsupported key size", §4.2.7).
    UnsupportedKeySize {
        /// The key's modeled size in bits.
        bits: u16,
    },

    // ---- Per-RRset signature checks --------------------------------------
    /// The RRset has no covering RRSIG.
    RrsigMissing {
        /// Which RRset.
        target: SigTarget,
    },
    /// A covering RRSIG exists but its window has passed.
    SignatureExpired {
        /// Which RRset.
        target: SigTarget,
    },
    /// A covering RRSIG exists but its window has not begun.
    SignatureNotYetValid {
        /// Which RRset.
        target: SigTarget,
    },
    /// The RRSIG's expiration precedes its inception.
    SignatureExpiredBeforeValid {
        /// Which RRset.
        target: SigTarget,
    },
    /// A covering RRSIG fails cryptographic verification.
    SignatureBogus {
        /// Which RRset.
        target: SigTarget,
    },
    /// The RRSIG references a key tag absent from the validated DNSKEY
    /// RRset.
    RrsigKeyMissing {
        /// Which RRset.
        target: SigTarget,
    },
    /// The zone is signed exclusively with algorithms this validator does
    /// not support (treated as insecure per RFC 4035 §5.2).
    ZoneAlgorithmUnsupported {
        /// Registry status of the algorithm.
        status: AlgStatus,
        /// The raw algorithm number.
        algorithm: u8,
    },

    // ---- Denial of existence ---------------------------------------------
    /// A negative answer from a signed zone lacked a usable NSEC3 proof.
    DenialProofBroken {
        /// What exactly was wrong.
        issue: DenialIssue,
        /// NODATA or NXDOMAIN.
        kind: NegativeKind,
    },
    /// Denial records were present and structurally fine but unsigned.
    DenialSigMissing {
        /// NODATA or NXDOMAIN.
        kind: NegativeKind,
    },
    /// Denial records were present but their signatures are bogus.
    DenialSigBogus {
        /// NODATA or NXDOMAIN.
        kind: NegativeKind,
    },
    /// A negative answer from a signed zone arrived with an unsigned SOA
    /// and no proof (the zone's denial machinery is gone).
    NegativeUnsigned {
        /// NODATA or NXDOMAIN.
        kind: NegativeKind,
    },
    /// A referral lacked both a DS RRset and a proof of DS absence
    /// ("failed to verify an insecure referral proof", §4.2.9).
    InsecureReferralProofMissing,
    /// The NSEC3 iteration count exceeds this validator's cap
    /// ("iteration limit exceeded", §4.2.14).
    Nsec3IterationsExceeded {
        /// The offending count.
        iterations: u16,
    },

    // ---- Caching -----------------------------------------------------------
    /// The negative answer was synthesized from DNSSEC-validated
    /// NSEC/NSEC3 ranges already in the cache's range tier (RFC 8198
    /// aggressive use) — no authority was asked. Deliberately mapped to
    /// an EDE by *no* vendor profile: on the wire a synthesized denial
    /// must be indistinguishable from the live one it stands in for.
    SynthesizedDenial {
        /// NODATA or NXDOMAIN.
        kind: NegativeKind,
    },
    /// The answer was served from cache past its TTL (RFC 8767).
    ServedStale {
        /// True when the stale record was an NXDOMAIN (EDE 19 vs 3).
        nxdomain: bool,
    },
    /// A previously-cached resolution failure was replayed.
    CachedError,
}

/// Overall DNSSEC outcome of the resolution (RFC 4035 §4.3 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationState {
    /// Chain of trust intact, everything verified.
    Secure,
    /// Provably no chain of trust (unsigned zone or unsupported
    /// algorithms) — answers are used but unauthenticated.
    Insecure,
    /// The chain of trust is broken: validation failed.
    Bogus,
    /// Validation could not reach a conclusion.
    Indeterminate,
}

/// Everything the engine learned during one resolution.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// Structured findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Per-nameserver failure events (feeds EDE 22/23 and their
    /// EXTRA-TEXT).
    pub ns_events: Vec<NsEvent>,
    /// Final validation state.
    pub validation: ValidationState,
    /// Whether the queried zone presented as DNSSEC-signed (a DS chain
    /// existed down to it).
    pub zone_signed: bool,
    /// Trace handle: findings and validation steps are announced here as
    /// they land. Excluded from equality — two diagnoses that recorded
    /// the same facts are equal regardless of where their events went.
    tracer: Tracer,
}

impl PartialEq for Diagnosis {
    fn eq(&self, other: &Self) -> bool {
        self.findings == other.findings
            && self.ns_events == other.ns_events
            && self.validation == other.validation
            && self.zone_signed == other.zone_signed
    }
}

impl Eq for Diagnosis {}

impl Diagnosis {
    /// A clean slate (secure until proven otherwise, unsigned until a DS
    /// chain appears).
    pub fn new() -> Self {
        Diagnosis {
            findings: Vec::new(),
            ns_events: Vec::new(),
            validation: ValidationState::Secure,
            zone_signed: false,
            tracer: Tracer::disabled(),
        }
    }

    /// A clean slate whose findings are announced to `tracer`.
    pub fn with_tracer(tracer: Tracer) -> Self {
        let mut d = Self::new();
        d.tracer = tracer;
        d
    }

    /// Attach (or replace) the tracer announcing this diagnosis's
    /// findings.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Re-allocate every embedded [`Name`] so this diagnosis shares no
    /// storage with the resolution's working set (see
    /// [`Name::detached`]). Long-lived holders — the resolution cache —
    /// call this before storing so cached diagnoses don't pin transient
    /// response and zone allocations.
    pub fn detach_names(&mut self) {
        for ev in &mut self.ns_events {
            ev.qname = ev.qname.detached();
        }
    }

    /// The tracer findings are announced to (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record a finding (idempotent: exact duplicates are dropped so a
    /// retried query cannot double-report).
    pub fn add(&mut self, finding: Finding) {
        if !self.findings.contains(&finding) {
            self.tracer.emit(TraceEvent::FindingRecorded {
                finding: if self.tracer.wants_query_detail() {
                    format!("{finding:?}")
                } else {
                    String::new()
                },
            });
            self.findings.push(finding);
        }
    }

    /// Merge another diagnosis's facts into this one without re-emitting
    /// trace events (the sub-diagnosis's tracer already announced them).
    pub fn absorb(&mut self, other: &Diagnosis) {
        for f in &other.findings {
            if !self.findings.contains(f) {
                self.findings.push(f.clone());
            }
        }
        for e in &other.ns_events {
            self.add_event(e.clone());
        }
        self.degrade(other.validation);
    }

    /// Record a nameserver failure event.
    pub fn add_event(&mut self, event: NsEvent) {
        if !self.ns_events.contains(&event) {
            self.ns_events.push(event);
        }
    }

    /// Degrade the validation state (Bogus is sticky; Secure is only
    /// reported when nothing degraded it).
    pub fn degrade(&mut self, to: ValidationState) {
        use ValidationState::*;
        self.validation = match (self.validation, to) {
            (Bogus, _) | (_, Bogus) => Bogus,
            (Indeterminate, _) | (_, Indeterminate) => Indeterminate,
            (Insecure, _) | (_, Insecure) => Insecure,
            _ => Secure,
        };
    }

    /// Does any finding match the predicate?
    pub fn any(&self, pred: impl Fn(&Finding) -> bool) -> bool {
        self.findings.iter().any(pred)
    }
}

impl Default for Diagnosis {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcode_classification() {
        assert_eq!(
            NsFailure::from_rcode(Rcode::Refused),
            Some(NsFailure::Refused)
        );
        assert_eq!(NsFailure::from_rcode(Rcode::NoError), None);
        assert_eq!(NsFailure::from_rcode(Rcode::NxDomain), None);
        assert_eq!(
            NsFailure::from_rcode(Rcode::NotAuth),
            Some(NsFailure::NotAuth)
        );
        assert!(NsFailure::Refused.is_rcode_failure());
        assert!(!NsFailure::Timeout.is_rcode_failure());
        assert!(!NsFailure::Unroutable.is_rcode_failure());
    }

    #[test]
    fn degrade_is_sticky() {
        let mut d = Diagnosis::new();
        assert_eq!(d.validation, ValidationState::Secure);
        d.degrade(ValidationState::Insecure);
        assert_eq!(d.validation, ValidationState::Insecure);
        d.degrade(ValidationState::Bogus);
        assert_eq!(d.validation, ValidationState::Bogus);
        d.degrade(ValidationState::Secure);
        assert_eq!(d.validation, ValidationState::Bogus);
    }

    #[test]
    fn findings_deduplicate() {
        let mut d = Diagnosis::new();
        d.add(Finding::RrsigMissing {
            target: SigTarget::Answer,
        });
        d.add(Finding::RrsigMissing {
            target: SigTarget::Answer,
        });
        d.add(Finding::RrsigMissing {
            target: SigTarget::Dnskey,
        });
        assert_eq!(d.findings.len(), 2);
    }

    #[test]
    fn failure_display_matches_cloudflare_extra_text_style() {
        assert_eq!(NsFailure::Refused.to_string(), "rcode=REFUSED");
        assert_eq!(NsFailure::Timeout.to_string(), "timed out");
    }
}
