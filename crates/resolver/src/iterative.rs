//! The iterative resolution engine: root priming, referral walking,
//! glue, CNAME chasing, retries, and the hookup into DNSSEC validation.

use crate::cache::infra::{InfraCache, KeyEntry, ReferralEntry};
use crate::cache::l1::L1Cache;
use crate::cache::ranges::RangeCache;
use crate::config::ResolverConfig;
use crate::diagnosis::{Diagnosis, Finding, NegativeKind, NsEvent, NsFailure, ValidationState};
use crate::profiles::ValidatorCaps;
use crate::retry::{ServerSelection, SrttTable};
use crate::task::TaskHandle;
use crate::validate::{
    advisory_answer_key_check, check_negative, check_rrset, collate, extract_proof_ranges,
    validate_dnskey, PublishedKey,
};
use ede_crypto::nsec3hash;
use ede_netsim::{NetError, Network};
use ede_trace::TraceEvent;
use ede_wire::{Message, Name, Rcode, Rdata, Record, RrType};
use std::net::IpAddr;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, Mutex};

/// What one engine run produced.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Final response code.
    pub rcode: Rcode,
    /// Answer records (validated answers, or empty on failure).
    pub answers: Vec<Record>,
}

/// The engine borrows everything it needs for one resolution.
///
/// Every engine run is a resumable task: network exchanges and retry
/// timers suspend through the [`TaskHandle`], so one thread can hold
/// thousands of engine runs in flight (see `docs/CONCURRENCY.md`).
pub struct Engine<'a> {
    /// The simulated internet.
    pub net: &'a Network,
    /// Resolver configuration.
    pub config: &'a ResolverConfig,
    /// The active vendor's validation capabilities.
    pub caps: &'a ValidatorCaps,
    /// Shared infrastructure cache: validated zone keys plus root→TLD
    /// referral sets.
    pub infra: &'a InfraCache,
    /// The calling worker's private L1 tier, when it has one. Probed
    /// before `infra` on both the key and referral paths; never shared
    /// between threads (it is `!Sync`).
    pub l1: Option<&'a L1Cache>,
    /// Query ID source.
    pub ids: &'a AtomicU16,
    /// Shared per-address smoothed-RTT table (feeds
    /// [`ServerSelection::SmoothedRtt`]).
    pub srtt: &'a SrttTable,
    /// Executor capability: every suspension (exchange completion,
    /// backoff timer) of this resolution parks through it.
    pub handle: &'a TaskHandle,
    /// The shared range tier for RFC 8198 aggressive NSEC/NSEC3
    /// synthesis, when it is effective (config knob AND vendor gate).
    /// `None` keeps the engine byte-identical to the historical walk:
    /// no retention, no synthesis probe, no trace events.
    pub ranges: Option<&'a RangeCache>,
}

/// Outcome of querying a server set.
enum SetQuery {
    /// A usable response and the address that produced it.
    Answered(Message, IpAddr),
    /// Everything failed; flag says whether any failure was an RCODE.
    AllFailed { any_rcode_failure: bool },
}

impl<'a> Engine<'a> {
    fn next_id(&self) -> u16 {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    fn now(&self) -> u32 {
        self.net.clock().now_secs()
    }

    /// One transport exchange with truncation fallback: when the UDP
    /// reply carries TC=1 and the policy allows it, announce a
    /// [`TraceEvent::TcFallback`] and re-ask the same server over the
    /// stream (TCP-analogue) channel.
    ///
    /// The exchange is event-driven: the send happens immediately (all
    /// send-time side effects land before the suspension), then the
    /// task parks until the completion event fires.
    async fn transact(
        &self,
        addr: IpAddr,
        query: &Message,
        diag: &Diagnosis,
    ) -> Result<Message, NetError> {
        let sent = self.net.send(addr, self.config.source_addr, query);
        match self.handle.await_net(sent).await {
            Ok(resp) if resp.truncated && self.config.retry.tc_fallback => {
                self.trace_tc_fallback(addr, query, diag);
                let sent = self.net.send_stream(addr, self.config.source_addr, query);
                self.handle.await_net(sent).await
            }
            other => other,
        }
    }

    /// Blocking twin of [`transact`](Self::transact), used only by
    /// [`zone_keys`](Self::zone_keys): the DNSKEY fetch holds the key
    /// cache's singleflight build permit, which must never span a
    /// suspension point (a parked permit holder would deadlock every
    /// other task missing on the same zone). Key fetches therefore run
    /// as one atomic step on the blocking transport — a documented
    /// determinism rule of `docs/CONCURRENCY.md`.
    fn transact_blocking(
        &self,
        addr: IpAddr,
        query: &Message,
        diag: &Diagnosis,
    ) -> Result<Message, NetError> {
        match self.net.query(addr, self.config.source_addr, query) {
            Ok(resp) if resp.truncated && self.config.retry.tc_fallback => {
                self.trace_tc_fallback(addr, query, diag);
                self.net.query_stream(addr, self.config.source_addr, query)
            }
            other => other,
        }
    }

    /// Announce the TC=1 → stream fallback shared by both transact
    /// flavours.
    fn trace_tc_fallback(&self, addr: IpAddr, query: &Message, diag: &Diagnosis) {
        let tracer = diag.tracer();
        if tracer.enabled() {
            tracer.emit(TraceEvent::TcFallback {
                dst: addr,
                qname: if tracer.wants_query_detail() {
                    query
                        .first_question()
                        .map(|q| q.name.to_string())
                        .unwrap_or_default()
                } else {
                    String::new()
                },
                // Only the TC bit is visible here; the full
                // answer's size is the stream reply's business.
                size: 0,
                limit: query.advertised_payload_size(),
            });
        }
    }

    /// Ask the zone's server set until one gives a usable response,
    /// following the configured [`RetryPolicy`]: server ordering,
    /// same-server retries for transient failures (timeouts and
    /// FORMERR), jittered backoff that advances the virtual clock, and
    /// hedged extra rounds after a full-set failure.
    ///
    /// With [`RetryPolicy::none()`] — the default — this reduces
    /// exactly to the historical behaviour: each address once, in
    /// referral order, one `Retry` event per server change.
    ///
    /// [`RetryPolicy`]: crate::retry::RetryPolicy
    /// [`RetryPolicy::none()`]: crate::retry::RetryPolicy::none
    async fn query_set(
        &self,
        servers: &[IpAddr],
        qname: &Name,
        qtype: RrType,
        diag: &mut Diagnosis,
    ) -> SetQuery {
        let policy = &self.config.retry;
        let order: Vec<IpAddr> = match policy.selection {
            ServerSelection::Static => servers
                .iter()
                .copied()
                .take(self.config.max_servers_per_zone)
                .collect(),
            ServerSelection::SmoothedRtt => {
                self.srtt.order(servers, self.config.max_servers_per_zone)
            }
        };
        let mut any_rcode_failure = false;
        // Hedging only helps against luck: if every failure was the
        // server's considered opinion (REFUSED, unroutable glue, ...),
        // sweeping the set again cannot change the outcome.
        let mut any_transient = false;
        let mut attempt = 0usize; // overall, across rounds
        let mut streak = 0u32; // consecutive transient failures
        for round in 0..=policy.hedge_rounds {
            if round > 0 && !any_transient {
                break;
            }
            for &addr in &order {
                let mut tries = 0usize; // same-server retries used
                loop {
                    if attempt > 0 {
                        if round > 0 {
                            diag.tracer().emit(TraceEvent::Hedge {
                                attempt,
                                next: addr,
                            });
                        } else {
                            diag.tracer().emit(TraceEvent::Retry {
                                attempt,
                                next: addr,
                            });
                        }
                        let wait = policy.backoff_ms(streak, addr, attempt);
                        if wait > 0 {
                            self.handle.sleep_millis(wait).await;
                        }
                    }
                    attempt += 1;
                    let query = Message::iterative_query(self.next_id(), qname.clone(), qtype);
                    let sent_ms = self.net.clock().now_millis();
                    match self.transact(addr, &query, diag).await {
                        Ok(resp) => {
                            if resp.truncated {
                                // TC=1 with fallback disabled: the
                                // size problem is deterministic, so
                                // move on to the next server.
                                diag.add_event(NsEvent {
                                    addr,
                                    failure: NsFailure::Truncated,
                                    qname: qname.clone(),
                                    qtype,
                                });
                                break;
                            }
                            if resp.edns.is_none() {
                                // Pre-EDNS server: the response is unusable for a
                                // DO-bit pipeline (§4.2.6 Invalid Data).
                                diag.add(Finding::EdnsNotSupported { addr });
                                diag.add_event(NsEvent {
                                    addr,
                                    failure: NsFailure::NoEdns,
                                    qname: qname.clone(),
                                    qtype,
                                });
                                break;
                            }
                            if let Some(failure) = NsFailure::from_rcode(resp.rcode) {
                                any_rcode_failure |= failure.is_rcode_failure();
                                diag.add_event(NsEvent {
                                    addr,
                                    failure,
                                    qname: qname.clone(),
                                    qtype,
                                });
                                if failure == NsFailure::FormErr
                                    && tries < policy.retries_per_server
                                {
                                    // The signature of datagram
                                    // corruption: a clean retry may
                                    // get through.
                                    any_transient = true;
                                    streak += 1;
                                    tries += 1;
                                    continue;
                                }
                                break;
                            }
                            if policy.selection == ServerSelection::SmoothedRtt {
                                let elapsed = self.net.clock().now_millis().saturating_sub(sent_ms);
                                self.srtt.observe(addr, elapsed);
                            }
                            return SetQuery::Answered(resp, addr);
                        }
                        Err(NetError::Unroutable) => {
                            diag.add_event(NsEvent {
                                addr,
                                failure: NsFailure::Unroutable,
                                qname: qname.clone(),
                                qtype,
                            });
                            // Special-purpose address: can never route,
                            // retrying is pointless.
                            break;
                        }
                        Err(NetError::Timeout) => {
                            diag.add_event(NsEvent {
                                addr,
                                failure: NsFailure::Timeout,
                                qname: qname.clone(),
                                qtype,
                            });
                            any_transient = true;
                            streak += 1;
                            if policy.selection == ServerSelection::SmoothedRtt {
                                // Charge the full wait so dead servers
                                // sink in future orderings.
                                let elapsed = self.net.clock().now_millis().saturating_sub(sent_ms);
                                self.srtt.observe(addr, elapsed);
                            }
                            if tries < policy.retries_per_server {
                                tries += 1;
                                continue;
                            }
                            break;
                        }
                    }
                }
            }
        }
        SetQuery::AllFailed { any_rcode_failure }
    }

    /// Fetch + validate (with caching) the DNSKEY RRset of `zone` using
    /// `server`, against the already-validated `ds` set.
    ///
    /// Deliberately synchronous: the whole fetch runs as one atomic
    /// step while holding the zone's singleflight build permit, on the
    /// blocking transport (see [`transact_blocking`](Self::transact_blocking)).
    fn zone_keys(
        &self,
        zone: &Name,
        ds: &[Rdata],
        server: IpAddr,
        diag: &mut Diagnosis,
    ) -> (Option<Arc<Vec<PublishedKey>>>, Arc<Vec<PublishedKey>>) {
        let now = self.now();
        // L1 first: a private, lock-free probe on the worker's own
        // tier. The entry is a shared `Arc` with embedded expiry, so
        // serving it here is indistinguishable from serving it out of
        // the shared store.
        if let Some(l1) = self.l1 {
            if let Some(entry) = l1.get_key(zone, now) {
                return entry.replay(diag);
            }
        }
        // Fast path plus singleflight admission: a usable entry is
        // replayed immediately; otherwise this thread takes (or waits
        // for) the zone's build permit.
        let permit: Arc<Mutex<()>> = {
            let mut shard = self.infra.key_shard(zone).lock().expect("no poisoning");
            if let Some(entry) = shard.entries.get(zone) {
                if entry.live(now) {
                    let entry = Arc::clone(entry);
                    drop(shard);
                    self.infra.count_key_hit();
                    if let Some(l1) = self.l1 {
                        l1.put_key(zone, Arc::clone(&entry));
                    }
                    return entry.replay(diag);
                }
            }
            Arc::clone(shard.building.entry(zone.clone()).or_default())
        };
        let _build = permit.lock().expect("no poisoning");
        // Re-check: if we waited on the permit, the winner has already
        // cached the entry and we must not fetch again.
        {
            let shard = self.infra.key_shard(zone).lock().expect("no poisoning");
            if let Some(entry) = shard.entries.get(zone) {
                if entry.live(now) {
                    let entry = Arc::clone(entry);
                    drop(shard);
                    self.infra.count_key_hit();
                    if let Some(l1) = self.l1 {
                        l1.put_key(zone, Arc::clone(&entry));
                    }
                    return entry.replay(diag);
                }
            }
        }

        let mut sub = Diagnosis::with_tracer(diag.tracer().clone());
        // DNSKEY fetches follow the retry policy too: a lost DNSKEY
        // response would otherwise turn a perfectly healthy zone Bogus.
        // DNSKEY RRsets are also the classic oversized answer, so the
        // truncation fallback in `transact` matters most right here.
        let policy = &self.config.retry;
        let mut tries = 0usize;
        let mut streak = 0u32;
        let fetched = loop {
            if tries > 0 {
                sub.tracer().emit(TraceEvent::Retry {
                    attempt: tries,
                    next: server,
                });
                let wait = policy.backoff_ms(streak, server, tries);
                if wait > 0 {
                    self.net.clock().advance_millis(wait);
                }
            }
            let query = Message::iterative_query(self.next_id(), zone.clone(), RrType::Dnskey);
            match self.transact_blocking(server, &query, &sub) {
                Ok(resp) => {
                    if resp.truncated {
                        break Err(NsFailure::Truncated);
                    }
                    if let Some(failure) = NsFailure::from_rcode(resp.rcode) {
                        sub.add_event(NsEvent {
                            addr: server,
                            failure,
                            qname: zone.clone(),
                            qtype: RrType::Dnskey,
                        });
                        if failure == NsFailure::FormErr && tries < policy.retries_per_server {
                            streak += 1;
                            tries += 1;
                            continue;
                        }
                        break Err(failure);
                    }
                    break Ok(resp);
                }
                Err(NetError::Unroutable) => break Err(NsFailure::Unroutable),
                Err(NetError::Timeout) => {
                    streak += 1;
                    if tries < policy.retries_per_server {
                        tries += 1;
                        continue;
                    }
                    break Err(NsFailure::Timeout);
                }
            }
        };

        let (trusted, published) = match fetched {
            Err(failure) => {
                sub.add(Finding::DnskeyUnobtainable { failure });
                sub.degrade(ValidationState::Bogus);
                (None, Vec::new())
            }
            Ok(resp) => {
                let sets = collate(&resp.answers);
                match sets
                    .iter()
                    .find(|s| s.rtype == RrType::Dnskey && s.name == *zone)
                {
                    None => {
                        sub.add(Finding::DnskeyUnobtainable {
                            failure: NsFailure::OtherRcode(0),
                        });
                        sub.degrade(ValidationState::Bogus);
                        (None, Vec::new())
                    }
                    Some(dnskey_set) => {
                        let v = validate_dnskey(zone, ds, dnskey_set, self.caps, now, &mut sub);
                        (v.trusted, v.published)
                    }
                }
            }
        };
        let trusted = trusted.map(Arc::new);
        let published = Arc::new(published);

        // Merge the sub-diagnosis into the caller's and cache it. The
        // sub shares the caller's tracer, so `absorb` (not `add`) avoids
        // announcing each finding twice.
        diag.absorb(&sub);
        let entry = Arc::new(KeyEntry::new(
            trusted.clone(),
            published.clone(),
            sub.findings,
            sub.validation,
            now + if trusted.is_some() { 3600 } else { 30 },
        ));
        {
            let mut shard = self.infra.key_shard(zone).lock().expect("no poisoning");
            shard.entries.insert(zone.detached(), Arc::clone(&entry));
            shard.building.remove(zone);
        }
        if let Some(l1) = self.l1 {
            l1.put_key(zone, entry);
        }
        (trusted, published)
    }

    /// Resolve addresses for a nameserver name (used when a referral
    /// came without glue). Shares the caller's diagnosis so failures in
    /// the nameserver's own domain surface, as §4.2.8 observes.
    async fn resolve_ns_addresses(
        &self,
        ns_name: &Name,
        diag: &mut Diagnosis,
        depth: usize,
    ) -> Vec<IpAddr> {
        if depth >= self.config.max_depth {
            return Vec::new();
        }
        // The one boxing point that breaks the resolve →
        // resolve_ns_addresses → resolve type recursion.
        let fut: std::pin::Pin<Box<dyn std::future::Future<Output = EngineOutcome> + '_>> =
            Box::pin(self.resolve(ns_name, RrType::A, diag, depth + 1));
        let outcome = fut.await;
        outcome
            .answers
            .iter()
            .filter_map(|r| match &r.rdata {
                Rdata::A(a) => Some(IpAddr::V4(*a)),
                Rdata::Aaaa(a) => Some(IpAddr::V6(*a)),
                _ => None,
            })
            .collect()
    }

    /// Full iterative resolution of (qname, qtype), as a resumable
    /// task: the returned future suspends on every network exchange
    /// and retry timer via the engine's [`TaskHandle`].
    pub async fn resolve(
        &self,
        qname: &Name,
        qtype: RrType,
        diag: &mut Diagnosis,
        depth: usize,
    ) -> EngineOutcome {
        let mut current_name = qname.clone();
        let mut answers_acc: Vec<Record> = Vec::new();
        let mut cname_budget = self.config.max_depth;

        'restart: loop {
            // RFC 8198 fast path: before any network send, ask the
            // range tier whether a still-valid, DNSSEC-validated
            // NSEC/NSEC3 interval already denies (name, type). A hit
            // synthesizes the negative answer outright — the proof was
            // cryptographically verified when it was retained, so the
            // result is exactly what the authority would have said,
            // minus the round-trip. The marker finding is mapped to an
            // EDE by no vendor (pinned by `profiles` tests), keeping
            // synthesized and live denials wire-indistinguishable.
            if let Some(ranges) = self.ranges {
                if let Some(denial) = ranges.deny(&current_name, qtype, self.now()) {
                    let kind = if denial.is_nxdomain() {
                        NegativeKind::Nxdomain
                    } else {
                        NegativeKind::Nodata
                    };
                    diag.zone_signed = true;
                    diag.add(Finding::SynthesizedDenial { kind });
                    let tracer = diag.tracer();
                    if tracer.enabled() {
                        tracer.emit(TraceEvent::DenialSynthesized {
                            qname: if tracer.wants_query_detail() {
                                current_name.to_string()
                            } else {
                                String::new()
                            },
                            nxdomain: denial.is_nxdomain(),
                            ttl: denial.ttl(),
                        });
                    }
                    let rcode = if denial.is_nxdomain() {
                        Rcode::NxDomain
                    } else {
                        Rcode::NoError
                    };
                    return EngineOutcome {
                        rcode,
                        answers: answers_acc,
                    };
                }
            }

            let mut servers: Vec<IpAddr> = self.config.root_hints.iter().map(|h| h.addr).collect();
            let mut current_zone = Name::root();
            let mut ds_chain: Option<Vec<Rdata>> = if self.config.trust_anchors.is_empty() {
                None
            } else {
                Some(self.config.trust_anchors.clone())
            };
            // RFC 7816: how many labels beyond the current zone we are
            // willing to expose to its servers. Resets at each zone cut.
            let mut min_extra_labels: usize = 1;

            // Referral fast-start: when the walk's first hop (the
            // root→TLD delegation every resolution crosses) is cached,
            // replay it and start one zone down. The cached hop was
            // diagnosis-neutral when it ran live (the clean-hop rule of
            // `cache::infra`), so skipping it cannot change what this
            // resolution observes — only how many root queries it costs.
            if self.config.enable_cache {
                if let Some(tld) = tld_ancestor(&current_name) {
                    let now = self.now();
                    let cached = self
                        .l1
                        .and_then(|l1| l1.get_referral(&tld, now))
                        .or_else(|| {
                            let hit = self.infra.get_referral(&tld, now);
                            if let (Some(l1), Some(entry)) = (self.l1, &hit) {
                                l1.put_referral(Arc::clone(entry));
                            }
                            hit
                        });
                    if let Some(entry) = cached {
                        let tracer = diag.tracer();
                        tracer.emit(TraceEvent::Referral {
                            zone: if tracer.wants_query_detail() {
                                entry.zone.to_string()
                            } else {
                                String::new()
                            },
                            ns_count: entry.ns_count,
                            signed: entry.signed,
                        });
                        servers = entry.servers.clone();
                        current_zone = entry.zone.clone();
                        ds_chain = if entry.ds_rdatas.is_empty() {
                            None
                        } else {
                            Some(entry.ds_rdatas.clone())
                        };
                    }
                }
            }

            for _ in 0..self.config.max_referrals {
                // QNAME minimization: probe with a truncated name and NS
                // until the remaining labels run out.
                let (probe_name, probe_type) = if self.config.qname_minimization
                    && current_name.label_count() > current_zone.label_count() + min_extra_labels
                {
                    let mut nn = current_name.clone();
                    while nn.label_count() > current_zone.label_count() + min_extra_labels {
                        nn = nn.parent().expect("strictly above current_name");
                    }
                    (nn, RrType::Ns)
                } else {
                    (current_name.clone(), qtype)
                };
                let minimized = probe_name != current_name;

                let (resp, responder) = match self
                    .query_set(&servers, &probe_name, probe_type, diag)
                    .await
                {
                    SetQuery::Answered(resp, addr) => (resp, addr),
                    SetQuery::AllFailed { any_rcode_failure } => {
                        diag.add(Finding::AllServersFailed { any_rcode_failure });
                        // For a signed zone, probe the DNSKEY too so
                        // the diagnosis records that the chain key is
                        // unobtainable (Cloudflare's 9+22+23 bundle).
                        if ds_chain.as_ref().is_some_and(|d| !d.is_empty())
                            && !current_zone.is_root()
                        {
                            if let Some(&first) = servers.first() {
                                let _ = self.zone_keys(
                                    &current_zone,
                                    ds_chain.as_deref().unwrap_or(&[]),
                                    first,
                                    diag,
                                );
                            }
                        }
                        diag.degrade(ValidationState::Indeterminate);
                        return EngineOutcome {
                            rcode: Rcode::ServFail,
                            answers: Vec::new(),
                        };
                    }
                };

                // Referral?
                if !resp.authoritative {
                    if let Some(referral) = parse_referral(&resp, &probe_name, &current_zone) {
                        // Clean-hop bookkeeping: remember what the
                        // diagnosis looked like before this hop so we
                        // can tell afterwards whether the hop was
                        // invisible to it (and therefore cacheable).
                        let pre_findings = diag.findings.len();
                        let pre_events = diag.ns_events.len();
                        let pre_state = diag.validation;
                        let tracer = diag.tracer();
                        tracer.emit(TraceEvent::Referral {
                            zone: if tracer.wants_query_detail() {
                                referral.zone.to_string()
                            } else {
                                String::new()
                            },
                            ns_count: referral.ns_names.len(),
                            signed: !referral.ds_rdatas.is_empty(),
                        });
                        // Chain transition through the cut.
                        let parent_signed = ds_chain.as_ref().is_some_and(|d| !d.is_empty());
                        let mut child_ds: Option<Vec<Rdata>> = None;
                        if parent_signed {
                            let (parent_keys, _) = self.zone_keys(
                                &current_zone,
                                ds_chain.as_deref().unwrap_or(&[]),
                                responder,
                                diag,
                            );
                            if !referral.ds_rdatas.is_empty() {
                                // Authenticate the DS RRset itself.
                                if let Some(keys) = &parent_keys {
                                    let sets = collate(&resp.authorities);
                                    if let Some(ds_set) =
                                        sets.iter().find(|s| s.rtype == RrType::Ds)
                                    {
                                        check_rrset(
                                            ds_set,
                                            keys.as_slice(),
                                            self.caps,
                                            self.now(),
                                            crate::diagnosis::SigTarget::Answer,
                                            diag,
                                        );
                                    }
                                }
                                child_ds = Some(referral.ds_rdatas.clone());
                            } else if let Some(keys) = &parent_keys {
                                // Insecure delegation: demand the NSEC3
                                // opt-in proof.
                                if !insecure_proof_present(&resp.authorities, &referral.zone) {
                                    diag.add(Finding::InsecureReferralProofMissing);
                                    diag.degrade(ValidationState::Bogus);
                                } else {
                                    // The proof's ranges belong to the
                                    // *parent* zone; retain any whose
                                    // signature re-verifies against the
                                    // parent's validated keys.
                                    if let Some(ranges) = self.ranges {
                                        let now = self.now();
                                        let proofs = extract_proof_ranges(
                                            &resp.authorities,
                                            keys.as_slice(),
                                            now,
                                        );
                                        if !proofs.is_empty() {
                                            ranges.retain(&current_zone, &proofs, now);
                                        }
                                    }
                                    diag.degrade(ValidationState::Insecure);
                                }
                            } else {
                                diag.degrade(ValidationState::Insecure);
                            }
                        }

                        // Next server set: glue, else resolve NS names.
                        let mut next: Vec<IpAddr> = Vec::new();
                        for ns in &referral.ns_names {
                            for rec in resp.additionals.iter().filter(|r| r.name == *ns) {
                                match &rec.rdata {
                                    Rdata::A(a) => next.push(IpAddr::V4(*a)),
                                    Rdata::Aaaa(a) => next.push(IpAddr::V6(*a)),
                                    _ => {}
                                }
                            }
                        }
                        if next.is_empty() {
                            for ns in &referral.ns_names {
                                next.extend(self.resolve_ns_addresses(ns, diag, depth).await);
                                if next.len() >= self.config.max_servers_per_zone {
                                    break;
                                }
                            }
                        }
                        if next.is_empty() {
                            // Lame delegation: nowhere to go.
                            diag.add(Finding::AllServersFailed {
                                any_rcode_failure: diag
                                    .ns_events
                                    .iter()
                                    .any(|e| e.failure.is_rcode_failure()),
                            });
                            diag.degrade(ValidationState::Indeterminate);
                            return EngineOutcome {
                                rcode: Rcode::ServFail,
                                answers: Vec::new(),
                            };
                        }
                        // Cache the hop iff it was clean: a root→TLD
                        // delegation that recorded no finding, no
                        // nameserver event, and no validation-state
                        // change. Replaying such a hop later is
                        // diagnosis-neutral by construction; anything
                        // the hop *did* record must re-walk live.
                        if self.config.enable_cache
                            && current_zone.is_root()
                            && diag.findings.len() == pre_findings
                            && diag.ns_events.len() == pre_events
                            && diag.validation == pre_state
                        {
                            let entry = self.infra.put_referral(ReferralEntry {
                                zone: referral.zone.clone(),
                                servers: next.clone(),
                                ds_rdatas: child_ds.clone().unwrap_or_default(),
                                ns_count: referral.ns_names.len(),
                                signed: !referral.ds_rdatas.is_empty(),
                                expires: self.now() + 3600,
                            });
                            if let Some(l1) = self.l1 {
                                l1.put_referral(entry);
                            }
                        }
                        servers = next;
                        current_zone = referral.zone;
                        ds_chain = child_ds;
                        min_extra_labels = 1;
                        continue;
                    }
                }

                if minimized {
                    // The minimized probe was answered authoritatively
                    // (the label exists inside the current zone, or the
                    // server says NXDOMAIN). Relaxed minimization: expose
                    // one more label and re-ask the same servers; the
                    // full query performs the validated, final exchange.
                    min_extra_labels += 1;
                    continue;
                }

                // Authoritative (or terminal) answer.
                let zone_signed = ds_chain.as_ref().is_some_and(|d| !d.is_empty());
                if zone_signed {
                    diag.zone_signed = true;
                }
                let answer_sets = collate(&resp.answers);

                if zone_signed {
                    let (trusted, published) = self.zone_keys(
                        &current_zone,
                        ds_chain.as_deref().unwrap_or(&[]),
                        responder,
                        diag,
                    );
                    match &trusted {
                        Some(keys) => {
                            if answer_sets.is_empty() {
                                let kind = if resp.rcode == Rcode::NxDomain {
                                    NegativeKind::Nxdomain
                                } else {
                                    NegativeKind::Nodata
                                };
                                let pre_findings = diag.findings.len();
                                check_negative(
                                    &resp.authorities,
                                    &current_name,
                                    qtype,
                                    kind,
                                    &current_zone,
                                    keys.as_slice(),
                                    self.caps,
                                    self.now(),
                                    diag,
                                );
                                // Retain the proof's ranges only when
                                // the denial validated cleanly — a
                                // proof that recorded any finding must
                                // never seed synthesis.
                                if diag.findings.len() == pre_findings {
                                    if let Some(ranges) = self.ranges {
                                        let now = self.now();
                                        let proofs = extract_proof_ranges(
                                            &resp.authorities,
                                            keys.as_slice(),
                                            now,
                                        );
                                        if !proofs.is_empty() {
                                            ranges.retain(&current_zone, &proofs, now);
                                        }
                                    }
                                }
                            } else {
                                for set in &answer_sets {
                                    check_rrset(
                                        set,
                                        keys.as_slice(),
                                        self.caps,
                                        self.now(),
                                        crate::diagnosis::SigTarget::Answer,
                                        diag,
                                    );
                                }
                            }
                        }
                        None => {
                            advisory_answer_key_check(&answer_sets, published.as_slice(), diag);
                        }
                    }
                } else if diag.validation == ValidationState::Secure {
                    // No chain of trust reaches this zone.
                    diag.degrade(ValidationState::Insecure);
                }

                // CNAME chasing: restart when the alias leads out of the
                // current zone and the answer does not already contain
                // the target type.
                let has_qtype = resp.answers.iter().any(|r| r.rtype() == qtype);
                let cname_target = resp.answers.iter().find_map(|r| match &r.rdata {
                    Rdata::Cname(t) if qtype != RrType::Cname => Some(t.clone()),
                    _ => None,
                });
                if let (false, Some(target)) = (has_qtype, cname_target) {
                    if cname_budget == 0 {
                        diag.degrade(ValidationState::Indeterminate);
                        return EngineOutcome {
                            rcode: Rcode::ServFail,
                            answers: Vec::new(),
                        };
                    }
                    cname_budget -= 1;
                    answers_acc.extend(resp.answers.clone());
                    current_name = target;
                    continue 'restart;
                }

                answers_acc.extend(resp.answers.clone());
                let rcode = if diag.validation == ValidationState::Bogus {
                    Rcode::ServFail
                } else {
                    resp.rcode
                };
                let answers = if rcode == Rcode::ServFail {
                    Vec::new()
                } else {
                    answers_acc
                };
                return EngineOutcome { rcode, answers };
            }

            // Referral budget exhausted.
            diag.degrade(ValidationState::Indeterminate);
            return EngineOutcome {
                rcode: Rcode::ServFail,
                answers: Vec::new(),
            };
        }
    }
}

/// The depth-1 ancestor of `name` (the TLD it lives under, or `name`
/// itself when it *is* a TLD). `None` for the root.
fn tld_ancestor(name: &Name) -> Option<Name> {
    let mut tld = name.clone();
    while tld.label_count() > 1 {
        tld = tld.parent().expect("label_count > 1");
    }
    if tld.label_count() == 1 {
        Some(tld)
    } else {
        None
    }
}

/// A parsed referral.
struct Referral {
    zone: Name,
    ns_names: Vec<Name>,
    ds_rdatas: Vec<Rdata>,
}

/// Interpret a non-authoritative response as a referral toward `qname`,
/// requiring the delegation to be strictly below the zone we just asked
/// (no sideways or upward referrals — loop protection).
fn parse_referral(resp: &Message, qname: &Name, current_zone: &Name) -> Option<Referral> {
    let ns_records: Vec<&Record> = resp
        .authorities
        .iter()
        .filter(|r| r.rtype() == RrType::Ns)
        .collect();
    let first = ns_records.first()?;
    let zone = first.name.clone();
    if !qname.is_subdomain_of(&zone)
        || !zone.is_subdomain_of(current_zone)
        || zone.label_count() <= current_zone.label_count()
    {
        return None;
    }
    let ns_names = ns_records
        .iter()
        .filter_map(|r| match &r.rdata {
            Rdata::Ns(n) => Some(n.clone()),
            _ => None,
        })
        .collect();
    let ds_rdatas = resp
        .authorities
        .iter()
        .filter(|r| r.rtype() == RrType::Ds && r.name == zone)
        .map(|r| r.rdata.clone())
        .collect();
    Some(Referral {
        zone,
        ns_names,
        ds_rdatas,
    })
}

/// Light check that a referral's authority section proves the delegation
/// insecure: an NSEC3 (or plain NSEC) matching the delegation owner
/// whose bitmap lacks DS.
fn insecure_proof_present(authority: &[Record], deleg: &Name) -> bool {
    for rec in authority {
        match &rec.rdata {
            Rdata::Nsec3 {
                salt,
                iterations,
                types,
                ..
            } => {
                let label = nsec3hash::nsec3_hash_label(&deleg.to_wire(), salt, *iterations);
                let owner_matches = rec
                    .name
                    .first_label()
                    .is_some_and(|l| l.eq_ignore_ascii_case(label.as_bytes()));
                if owner_matches && !types.contains(RrType::Ds) {
                    return true;
                }
            }
            Rdata::Nsec { types, .. } if rec.name == *deleg && !types.contains(RrType::Ds) => {
                return true;
            }
            _ => {}
        }
    }
    false
}
