//! Resolver policy layer: blocklists, filtering, forged answers.
//!
//! Reproduces the EDE codes in the paper's "resolver policy" category
//! (§2): *Forged Answer (4)*, *Blocked (15)*, *Censored (16)*,
//! *Filtered (17)*. The testbed deliberately excludes these (they depend
//! on resolver configuration, §3), but the library supports them — they
//! are exactly what Spamhaus's DNS-firewall deployment of EDE emits.

use ede_wire::{EdeCode, Name, Rdata, Record};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// What to do with a name matched by policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyAction {
    /// Refuse with *Blocked (15)*: operator-imposed blocklist.
    Block,
    /// Refuse with *Censored (16)*: external legal mandate.
    Censor,
    /// Refuse with *Filtered (17)*: the client asked for filtering.
    Filter,
    /// Answer with a forged A record and *Forged Answer (4)* — the
    /// walled-garden pattern.
    Forge(Ipv4Addr),
}

impl PolicyAction {
    /// The EDE code this action signals.
    pub fn ede_code(&self) -> EdeCode {
        match self {
            PolicyAction::Block => EdeCode::Blocked,
            PolicyAction::Censor => EdeCode::Censored,
            PolicyAction::Filter => EdeCode::Filtered,
            PolicyAction::Forge(_) => EdeCode::ForgedAnswer,
        }
    }
}

/// A name-keyed policy table. A rule on `example.com` covers the whole
/// subtree, as RPZ wildcarding conventionally does.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    rules: BTreeMap<Name, PolicyAction>,
}

impl Policy {
    /// An empty policy (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule covering `name` and everything beneath it.
    pub fn add(&mut self, name: Name, action: PolicyAction) {
        self.rules.insert(name, action);
    }

    /// Longest-match lookup.
    pub fn lookup(&self, qname: &Name) -> Option<&PolicyAction> {
        let mut best: Option<(&Name, &PolicyAction)> = None;
        for (rule_name, action) in &self.rules {
            if qname.is_subdomain_of(rule_name) {
                let better = best.is_none_or(|(b, _)| rule_name.label_count() > b.label_count());
                if better {
                    best = Some((rule_name, action));
                }
            }
        }
        best.map(|(_, a)| a)
    }

    /// The forged answer record for a Forge action.
    pub fn forged_record(qname: &Name, addr: Ipv4Addr) -> Record {
        Record::new(qname.clone(), 60, Rdata::A(addr))
    }

    /// True when no rules are loaded (fast-path check).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn subtree_matching() {
        let mut p = Policy::new();
        p.add(n("bad.example"), PolicyAction::Block);
        assert_eq!(p.lookup(&n("bad.example")), Some(&PolicyAction::Block));
        assert_eq!(p.lookup(&n("www.bad.example")), Some(&PolicyAction::Block));
        assert_eq!(p.lookup(&n("good.example")), None);
    }

    #[test]
    fn longest_match_wins() {
        let mut p = Policy::new();
        p.add(n("example"), PolicyAction::Filter);
        p.add(n("ads.example"), PolicyAction::Block);
        assert_eq!(p.lookup(&n("x.ads.example")), Some(&PolicyAction::Block));
        assert_eq!(p.lookup(&n("x.example")), Some(&PolicyAction::Filter));
    }

    #[test]
    fn action_codes() {
        assert_eq!(PolicyAction::Block.ede_code(), EdeCode::Blocked);
        assert_eq!(PolicyAction::Censor.ede_code(), EdeCode::Censored);
        assert_eq!(PolicyAction::Filter.ede_code(), EdeCode::Filtered);
        assert_eq!(
            PolicyAction::Forge("198.51.100.1".parse().unwrap()).ede_code(),
            EdeCode::ForgedAnswer
        );
    }
}
