//! DNSSEC chain-of-trust validation.
//!
//! Implements the validator side of RFC 4034/4035/5155 to the depth the
//! paper's observations require: DS → DNSKEY matching with registry
//! status handling, DNSKEY RRset authentication, per-RRset signature
//! verification with validity windows, and NSEC3 denial-proof checking.
//! Every failure mode is reported as a structured
//! [`Finding`] — rather than a bare error — so the
//! vendor emission profiles can reproduce Table 4.
//!
//! [`Finding`]: crate::diagnosis::Finding

use crate::cache::ranges::ProofRange;
use crate::diagnosis::{
    AlgStatus, DenialIssue, Diagnosis, DsMismatch, Finding, NegativeKind, SigTarget,
    ValidationState,
};
use crate::profiles::ValidatorCaps;
use ede_crypto::{base32, keytag, nsec3hash, simsig, Digest, Sha1, Sha256, Sha384};
use ede_wire::rdata::Rrsig;
use ede_wire::registry::RegistryStatus;
use ede_wire::{DigestAlg, Name, Rdata, Record, RrType, SecAlg};
use ede_zone::canonical::{ds_digest_input, signing_data};
use ede_zone::Rrset;

/// A DNSKEY as published by a zone, parsed for validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishedKey {
    /// RFC 4034 Appendix B key tag.
    pub tag: u16,
    /// Algorithm number.
    pub algorithm: u8,
    /// DNSKEY flags.
    pub flags: u16,
    /// Raw public key bytes.
    pub public_key: Vec<u8>,
}

impl PublishedKey {
    /// Zone Key bit (RFC 4034 §2.1.1).
    pub fn is_zone_key(&self) -> bool {
        self.flags & 0x0100 != 0
    }

    /// Secure Entry Point bit.
    pub fn is_sep(&self) -> bool {
        self.flags & 0x0001 != 0
    }

    /// Modeled key size in bits.
    pub fn key_bits(&self) -> u16 {
        (self.public_key.len() as u16).saturating_mul(8)
    }

    fn dnskey_rdata(&self) -> Rdata {
        Rdata::Dnskey {
            flags: self.flags,
            protocol: 3,
            algorithm: self.algorithm,
            public_key: self.public_key.clone(),
        }
    }
}

/// Parse the published keys out of a DNSKEY RRset.
pub fn published_keys(dnskey_rrset: &Rrset) -> Vec<PublishedKey> {
    dnskey_rrset
        .rdatas
        .iter()
        .filter_map(|rd| match rd {
            Rdata::Dnskey {
                flags,
                algorithm,
                public_key,
                ..
            } => {
                let mut buf = Vec::new();
                rd.encode(&mut buf, None);
                Some(PublishedKey {
                    tag: keytag::key_tag(&buf),
                    algorithm: *algorithm,
                    flags: *flags,
                    public_key: public_key.clone(),
                })
            }
            _ => None,
        })
        .collect()
}

/// Regroup a flat record list (one section of a response) into RRsets
/// with their covering RRSIGs attached — the inverse of serving.
pub fn collate(records: &[Record]) -> Vec<Rrset> {
    let mut sets: Vec<Rrset> = Vec::new();
    // Data records first.
    for rec in records {
        if rec.rtype() == RrType::Rrsig {
            continue;
        }
        match sets
            .iter_mut()
            .find(|s| s.name == rec.name && s.rtype == rec.rtype())
        {
            Some(set) => set.rdatas.push(rec.rdata.clone()),
            None => sets.push(Rrset {
                name: rec.name.clone(),
                rtype: rec.rtype(),
                ttl: rec.ttl,
                rdatas: vec![rec.rdata.clone()],
                sigs: Vec::new(),
            }),
        }
    }
    // Then attach signatures.
    for rec in records {
        if let Rdata::Rrsig(sig) = &rec.rdata {
            if let Some(set) = sets
                .iter_mut()
                .find(|s| s.name == rec.name && s.rtype == sig.type_covered)
            {
                set.sigs.push(sig.clone());
            }
        }
    }
    sets
}

/// How one RRSIG's validity window relates to `now`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Window {
    Valid,
    Expired,
    NotYet,
    ExpiredBeforeValid,
}

fn check_window(sig: &Rrsig, now: u32) -> Window {
    if sig.expiration < sig.inception {
        Window::ExpiredBeforeValid
    } else if now > sig.expiration {
        Window::Expired
    } else if now < sig.inception {
        Window::NotYet
    } else {
        Window::Valid
    }
}

fn window_finding(w: Window, target: SigTarget) -> Option<Finding> {
    match w {
        Window::Valid => None,
        Window::Expired => Some(Finding::SignatureExpired { target }),
        Window::NotYet => Some(Finding::SignatureNotYetValid { target }),
        Window::ExpiredBeforeValid => Some(Finding::SignatureExpiredBeforeValid { target }),
    }
}

/// Verify one signature over one RRset against one key, including the
/// window. Returns true only when everything checks out.
fn sig_verifies(sig: &Rrsig, rrset: &Rrset, key: &PublishedKey, now: u32) -> bool {
    if check_window(sig, now) != Window::Valid {
        return false;
    }
    if sig.key_tag != key.tag || sig.algorithm != key.algorithm {
        return false;
    }
    let data = signing_data(sig, rrset);
    simsig::verify(&key.public_key, sig.algorithm, &data, &sig.signature).is_ok()
}

fn alg_status_for(alg: u8, caps: &ValidatorCaps) -> Option<AlgStatus> {
    let sec = SecAlg(alg);
    match sec.status() {
        RegistryStatus::Unassigned => Some(AlgStatus::Unassigned),
        RegistryStatus::Reserved => Some(AlgStatus::Reserved),
        _ if sec.is_deprecated() => Some(AlgStatus::Deprecated),
        _ if !caps.algorithms.contains(&alg) => Some(AlgStatus::UnsupportedAssigned),
        _ => None,
    }
}

/// Outcome of validating one zone's DNSKEY RRset against its DS set.
pub struct DnskeyValidation {
    /// Keys usable for signature verification below this zone, when the
    /// chain link validated.
    pub trusted: Option<Vec<PublishedKey>>,
    /// Everything the zone published (advisory checks need these even
    /// when the chain failed).
    pub published: Vec<PublishedKey>,
}

/// Validate a zone's DNSKEY RRset against the validated DS RRset from
/// its parent. Records findings and degrades validation state on the way.
pub fn validate_dnskey(
    apex: &Name,
    ds_rdatas: &[Rdata],
    dnskey_rrset: &Rrset,
    caps: &ValidatorCaps,
    now: u32,
    diag: &mut Diagnosis,
) -> DnskeyValidation {
    let before = diag.findings.len();
    let v = validate_dnskey_inner(apex, ds_rdatas, dnskey_rrset, caps, now, diag);
    diag.tracer().emit(ede_trace::TraceEvent::ValidationStep {
        target: format!("DNSKEY {apex}"),
        ok: v.trusted.is_some() && diag.findings.len() == before,
    });
    v
}

fn validate_dnskey_inner(
    apex: &Name,
    ds_rdatas: &[Rdata],
    dnskey_rrset: &Rrset,
    caps: &ValidatorCaps,
    now: u32,
    diag: &mut Diagnosis,
) -> DnskeyValidation {
    let published = published_keys(dnskey_rrset);
    let zsk_present = published.iter().any(|k| {
        k.is_zone_key() && !k.is_sep() && SecAlg(k.algorithm).status() != RegistryStatus::Unassigned
    });

    // 1. Which DS records can this validator use at all?
    let mut usable_ds: Vec<&Rdata> = Vec::new();
    for ds in ds_rdatas {
        let Rdata::Ds {
            algorithm,
            digest_type,
            ..
        } = ds
        else {
            continue;
        };
        if let Some(status) = alg_status_for(*algorithm, caps) {
            match status {
                AlgStatus::Unassigned | AlgStatus::Reserved => {
                    diag.add(Finding::DsUnknownAlgorithm {
                        status,
                        algorithm: *algorithm,
                    })
                }
                AlgStatus::Deprecated | AlgStatus::UnsupportedAssigned => {
                    diag.add(Finding::ZoneAlgorithmUnsupported {
                        status,
                        algorithm: *algorithm,
                    })
                }
            }
            continue;
        }
        let dt = DigestAlg(*digest_type);
        if dt.status() == RegistryStatus::Unassigned || dt.status() == RegistryStatus::Reserved {
            diag.add(Finding::DsUnsupportedDigest {
                assigned: false,
                digest_type: *digest_type,
            });
            continue;
        }
        if !caps.digests.contains(digest_type) {
            diag.add(Finding::DsUnsupportedDigest {
                assigned: true,
                digest_type: *digest_type,
            });
            continue;
        }
        usable_ds.push(ds);
    }

    if usable_ds.is_empty() {
        // RFC 4035 §5.2: no supported DS algorithm ⇒ treat the zone as
        // unsigned.
        diag.degrade(ValidationState::Insecure);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    }

    // 2. Match DS records to published keys.
    let mut digest_mismatch_seen = false;
    let mut matched: Option<(&Rdata, &PublishedKey)> = None;
    'outer: for ds in &usable_ds {
        let Rdata::Ds {
            key_tag,
            algorithm,
            digest_type,
            digest,
        } = ds
        else {
            continue;
        };
        for key in published
            .iter()
            .filter(|k| k.tag == *key_tag && k.algorithm == *algorithm)
        {
            let input = ds_digest_input(apex, &key.dnskey_rdata());
            let computed = match DigestAlg(*digest_type) {
                DigestAlg::SHA1 => Sha1::digest(&input),
                DigestAlg::SHA384 => Sha384::digest(&input),
                _ => Sha256::digest(&input),
            };
            if computed != *digest {
                digest_mismatch_seen = true;
                continue;
            }
            if !key.is_zone_key() {
                continue;
            }
            matched = Some((ds, key));
            break 'outer;
        }
    }

    let Some((_, ksk)) = matched else {
        if !published.is_empty() && published.iter().all(|k| !k.is_zone_key()) {
            diag.add(Finding::NoZoneKeyBitSet);
        }
        diag.add(Finding::DsNoMatchingDnskey {
            cause: if digest_mismatch_seen {
                DsMismatch::Digest
            } else {
                DsMismatch::TagOrAlgorithm
            },
        });
        diag.degrade(ValidationState::Bogus);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    };

    // 3. Authenticate the DNSKEY RRset with the matched KSK.
    let sigs = &dnskey_rrset.sigs;
    if sigs.is_empty() {
        diag.add(Finding::DnskeyAllSigsMissing);
        diag.degrade(ValidationState::Bogus);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    }
    let Some(ksk_sig) = sigs
        .iter()
        .find(|s| s.key_tag == ksk.tag && s.algorithm == ksk.algorithm)
    else {
        diag.add(Finding::DnskeySigMissingByMatchedKey);
        diag.degrade(ValidationState::Bogus);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    };

    if let Some(f) = window_finding(check_window(ksk_sig, now), SigTarget::Dnskey) {
        diag.add(f);
        diag.degrade(ValidationState::Bogus);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    }

    let data = signing_data(ksk_sig, dnskey_rrset);
    if simsig::verify(
        &ksk.public_key,
        ksk_sig.algorithm,
        &data,
        &ksk_sig.signature,
    )
    .is_err()
    {
        // Advisory: does *any* signature over the RRset verify against
        // *any* published key? (Quad9 demonstrably distinguishes this.)
        let some_sig_valid = sigs.iter().any(|s| {
            published
                .iter()
                .any(|k| sig_verifies(s, dnskey_rrset, k, now))
        });
        diag.add(Finding::DnskeySigBogus {
            zsk_present,
            some_sig_valid,
        });
        diag.degrade(ValidationState::Bogus);
        return DnskeyValidation {
            trusted: None,
            published,
        };
    }

    // 4. Chain link established. Advisory scan-era findings:
    for key in &published {
        // A SEP-flagged key that is not DS-matched and signs nothing is a
        // stand-by key (§4.2.3) — Cloudflare flags it.
        if key.is_sep() && key.tag != ksk.tag && !sigs.iter().any(|s| s.key_tag == key.tag) {
            diag.add(Finding::StandbyKeyWithoutRrsig);
        }
        if key.key_bits() < caps.min_key_bits {
            diag.add(Finding::UnsupportedKeySize {
                bits: key.key_bits(),
            });
        }
    }

    let trusted: Vec<PublishedKey> = published
        .iter()
        .filter(|k| k.is_zone_key())
        .cloned()
        .collect();
    DnskeyValidation {
        trusted: Some(trusted),
        published,
    }
}

/// Validate the signatures over one answer RRset against the zone's
/// trusted keys. Returns true when at least one signature fully
/// verifies; otherwise records the most informative finding.
pub fn check_rrset(
    rrset: &Rrset,
    trusted: &[PublishedKey],
    caps: &ValidatorCaps,
    now: u32,
    target: SigTarget,
    diag: &mut Diagnosis,
) -> bool {
    let ok = check_rrset_inner(rrset, trusted, caps, now, target, diag);
    let tracer = diag.tracer();
    tracer.emit(ede_trace::TraceEvent::ValidationStep {
        target: if tracer.wants_query_detail() {
            format!("{} {} rrsig", rrset.name, rrset.rtype)
        } else {
            String::new()
        },
        ok,
    });
    ok
}

fn check_rrset_inner(
    rrset: &Rrset,
    trusted: &[PublishedKey],
    caps: &ValidatorCaps,
    now: u32,
    target: SigTarget,
    diag: &mut Diagnosis,
) -> bool {
    if rrset.sigs.is_empty() {
        diag.add(Finding::RrsigMissing { target });
        diag.degrade(ValidationState::Bogus);
        return false;
    }

    let mut first_issue: Option<Finding> = None;
    let mut all_unsupported = true;
    for sig in &rrset.sigs {
        if let Some(status) = alg_status_for(sig.algorithm, caps) {
            first_issue.get_or_insert(Finding::ZoneAlgorithmUnsupported {
                status,
                algorithm: sig.algorithm,
            });
            continue;
        }
        all_unsupported = false;
        if let Some(f) = window_finding(check_window(sig, now), target) {
            first_issue.get_or_insert(f);
            continue;
        }
        let Some(key) = trusted
            .iter()
            .find(|k| k.tag == sig.key_tag && k.algorithm == sig.algorithm)
        else {
            first_issue.get_or_insert(Finding::RrsigKeyMissing { target });
            continue;
        };
        let data = signing_data(sig, rrset);
        if simsig::verify(&key.public_key, sig.algorithm, &data, &sig.signature).is_ok() {
            return true;
        }
        first_issue.get_or_insert(Finding::SignatureBogus { target });
    }

    if all_unsupported {
        // A zone signed exclusively with unsupported algorithms is
        // insecure, not bogus.
        if let Some(f) = first_issue {
            diag.add(f);
        }
        diag.degrade(ValidationState::Insecure);
        return false;
    }
    if let Some(f) = first_issue {
        diag.add(f);
    }
    diag.degrade(ValidationState::Bogus);
    false
}

/// Validate a plain-NSEC denial proof (RFC 4035 §3.1.3 / §5.4).
fn check_negative_nsec(
    nsec_sets: &[&Rrset],
    qname: &Name,
    qtype: RrType,
    kind: NegativeKind,
    trusted: &[PublishedKey],
    now: u32,
    diag: &mut Diagnosis,
) {
    let structural_ok = match kind {
        NegativeKind::Nodata => nsec_sets.iter().any(|s| {
            s.name == *qname
                && match s.rdatas.first() {
                    Some(Rdata::Nsec { types, .. }) => !types.contains(qtype),
                    _ => false,
                }
        }),
        NegativeKind::Nxdomain => nsec_sets.iter().any(|s| match s.rdatas.first() {
            Some(Rdata::Nsec { next, .. }) => ede_zone::nsec::covers(&s.name, next, qname),
            _ => false,
        }),
    };
    if !structural_ok {
        diag.add(Finding::DenialProofBroken {
            issue: DenialIssue::OwnerMismatch,
            kind,
        });
        diag.degrade(ValidationState::Bogus);
        return;
    }
    for set in nsec_sets {
        if set.sigs.is_empty() {
            diag.add(Finding::DenialSigMissing { kind });
            diag.degrade(ValidationState::Bogus);
            return;
        }
    }
    for set in nsec_sets {
        let ok = set
            .sigs
            .iter()
            .any(|sig| trusted.iter().any(|k| sig_verifies(sig, set, k, now)));
        if !ok {
            diag.add(Finding::DenialSigBogus { kind });
            diag.degrade(ValidationState::Bogus);
            return;
        }
    }
}

/// Extract retainable denial spans from a proof's records: every
/// NSEC/NSEC3 RRset whose signature verifies against `trusted` becomes
/// a [`ProofRange`] for the RFC 8198 range tier. Verification is
/// re-done here (rather than piggybacked on `check_negative`) so the
/// synthesis-off resolution path is byte-for-byte unchanged; callers
/// invoke this only when synthesis is enabled, and only after the
/// proof as a whole validated cleanly.
pub fn extract_proof_ranges(
    records: &[Record],
    trusted: &[PublishedKey],
    now: u32,
) -> Vec<ProofRange> {
    let mut ranges = Vec::new();
    for set in collate(records) {
        let Some(sig) = set
            .sigs
            .iter()
            .find(|sig| trusted.iter().any(|k| sig_verifies(sig, &set, k, now)))
        else {
            continue;
        };
        match set.rdatas.first() {
            Some(Rdata::Nsec3 {
                flags,
                iterations,
                salt,
                next_hashed,
                types,
                ..
            }) => {
                let Some(owner_label) = set.name.first_label() else {
                    continue;
                };
                let Ok(owner_str) = std::str::from_utf8(owner_label) else {
                    continue;
                };
                let Some(owner_hash) = base32::decode(owner_str) else {
                    continue;
                };
                ranges.push(ProofRange::Nsec3 {
                    iterations: *iterations,
                    salt: salt.clone(),
                    flags: *flags,
                    owner_hash,
                    next_hash: next_hashed.clone(),
                    types: types.clone(),
                    ttl: set.ttl,
                    sig_expiration: sig.expiration,
                });
            }
            Some(Rdata::Nsec { next, types }) => {
                ranges.push(ProofRange::Nsec {
                    owner: set.name.clone(),
                    next: next.clone(),
                    types: types.clone(),
                    ttl: set.ttl,
                    sig_expiration: sig.expiration,
                });
            }
            _ => {}
        }
    }
    ranges
}

/// Advisory check used by the Quad9 profile: do the answer's RRSIG key
/// tags exist among the zone's published keys at all? Records
/// [`Finding::RrsigKeyMissing`] without degrading validation (the chain
/// verdict was already made elsewhere).
pub fn advisory_answer_key_check(
    answer_sets: &[Rrset],
    published: &[PublishedKey],
    diag: &mut Diagnosis,
) {
    for set in answer_sets {
        for sig in &set.sigs {
            if !published.iter().any(|k| k.tag == sig.key_tag) {
                diag.add(Finding::RrsigKeyMissing {
                    target: SigTarget::Answer,
                });
            }
        }
    }
}

/// Validate the denial-of-existence proof of a negative answer from a
/// signed zone.
#[allow(clippy::too_many_arguments)] // the RFC 5155 proof inputs really are this many
pub fn check_negative(
    authority: &[Record],
    qname: &Name,
    qtype: RrType,
    kind: NegativeKind,
    zone_apex: &Name,
    trusted: &[PublishedKey],
    caps: &ValidatorCaps,
    now: u32,
    diag: &mut Diagnosis,
) {
    let before = diag.findings.len();
    check_negative_inner(
        authority, qname, qtype, kind, zone_apex, trusted, caps, now, diag,
    );
    let tracer = diag.tracer();
    tracer.emit(ede_trace::TraceEvent::ValidationStep {
        target: if tracer.wants_query_detail() {
            format!("denial {qname} ({kind:?})")
        } else {
            String::new()
        },
        ok: diag.findings.len() == before,
    });
}

#[allow(clippy::too_many_arguments)]
fn check_negative_inner(
    authority: &[Record],
    qname: &Name,
    qtype: RrType,
    kind: NegativeKind,
    zone_apex: &Name,
    trusted: &[PublishedKey],
    caps: &ValidatorCaps,
    now: u32,
    diag: &mut Diagnosis,
) {
    let sets = collate(authority);
    let soa_signed = sets
        .iter()
        .find(|s| s.rtype == RrType::Soa)
        .map(|s| !s.sigs.is_empty())
        .unwrap_or(false);
    let nsec3_sets: Vec<&Rrset> = sets.iter().filter(|s| s.rtype == RrType::Nsec3).collect();
    let nsec_sets: Vec<&Rrset> = sets.iter().filter(|s| s.rtype == RrType::Nsec).collect();

    // Plain-NSEC proofs (RFC 4035 §3.1.3) take a simpler structural
    // path: owner names are compared directly in canonical order.
    if nsec3_sets.is_empty() && !nsec_sets.is_empty() {
        check_negative_nsec(&nsec_sets, qname, qtype, kind, trusted, now, diag);
        return;
    }

    if nsec3_sets.is_empty() {
        if soa_signed {
            diag.add(Finding::DenialProofBroken {
                issue: DenialIssue::Absent,
                kind,
            });
        } else {
            diag.add(Finding::NegativeUnsigned { kind });
        }
        diag.degrade(ValidationState::Bogus);
        return;
    }

    // Iteration cap (RFC 9276 / vendor limits).
    let max_iter = nsec3_sets
        .iter()
        .filter_map(|s| match s.rdatas.first() {
            Some(Rdata::Nsec3 { iterations, .. }) => Some(*iterations),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    if max_iter > caps.nsec3_iteration_cap {
        diag.add(Finding::Nsec3IterationsExceeded {
            iterations: max_iter,
        });
        diag.degrade(ValidationState::Bogus);
        return;
    }

    // Structural checks run before signature checks: a proof that points
    // at the wrong hashes is a different observable than a proof whose
    // signatures are broken, and vendors report them differently.
    let matches_name = |set: &Rrset, name: &Name| -> bool {
        let Some(Rdata::Nsec3 {
            salt, iterations, ..
        }) = set.rdatas.first()
        else {
            return false;
        };
        let label = nsec3hash::nsec3_hash_label(&name.to_wire(), salt, *iterations);
        set.name
            .first_label()
            .is_some_and(|l| l.eq_ignore_ascii_case(label.as_bytes()))
    };
    let covers_name = |set: &Rrset, name: &Name| -> bool {
        let Some(Rdata::Nsec3 {
            salt,
            iterations,
            next_hashed,
            ..
        }) = set.rdatas.first()
        else {
            return false;
        };
        let target = nsec3hash::nsec3_hash(&name.to_wire(), salt, *iterations);
        let Some(owner_label) = set.name.first_label() else {
            return false;
        };
        let Ok(owner_str) = std::str::from_utf8(owner_label) else {
            return false;
        };
        let Some(owner_hash) = base32::decode(owner_str) else {
            return false;
        };
        if owner_hash < *next_hashed {
            target > owner_hash && target < *next_hashed
        } else {
            target > owner_hash || target < *next_hashed
        }
    };

    match kind {
        NegativeKind::Nodata => {
            let ok = nsec3_sets.iter().any(|s| {
                matches_name(s, qname)
                    && match s.rdatas.first() {
                        Some(Rdata::Nsec3 { types, .. }) => !types.contains(qtype),
                        _ => false,
                    }
            });
            if !ok {
                diag.add(Finding::DenialProofBroken {
                    issue: DenialIssue::OwnerMismatch,
                    kind,
                });
                diag.degrade(ValidationState::Bogus);
                return;
            }
        }
        NegativeKind::Nxdomain => {
            // Closest encloser: walk qname's ancestors looking for a
            // matching NSEC3.
            let mut encloser: Option<Name> = None;
            let mut cursor = qname.parent();
            while let Some(a) = cursor {
                if nsec3_sets.iter().any(|s| matches_name(s, &a)) {
                    encloser = Some(a);
                    break;
                }
                if a == *zone_apex {
                    break;
                }
                cursor = a.parent();
            }
            let Some(encloser) = encloser else {
                diag.add(Finding::DenialProofBroken {
                    issue: DenialIssue::OwnerMismatch,
                    kind,
                });
                diag.degrade(ValidationState::Bogus);
                return;
            };
            // Next closer name must be covered.
            let depth_diff = qname.label_count() - encloser.label_count();
            let mut next_closer = qname.clone();
            for _ in 1..depth_diff {
                next_closer = next_closer.parent().expect("above qname");
            }
            if !nsec3_sets.iter().any(|s| covers_name(s, &next_closer)) {
                diag.add(Finding::DenialProofBroken {
                    issue: DenialIssue::ChainMismatch,
                    kind,
                });
                diag.degrade(ValidationState::Bogus);
                return;
            }
        }
    }

    // Signature checks over the proof records.
    for set in &nsec3_sets {
        if set.sigs.is_empty() {
            diag.add(Finding::DenialSigMissing { kind });
            diag.degrade(ValidationState::Bogus);
            return;
        }
    }
    for set in &nsec3_sets {
        let ok = set
            .sigs
            .iter()
            .any(|sig| trusted.iter().any(|k| sig_verifies(sig, set, k, now)));
        if !ok {
            diag.add(Finding::DenialSigBogus { kind });
            diag.degrade(ValidationState::Bogus);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ValidatorCaps;
    use ede_wire::rdata::Soa;
    use ede_zone::signer::{sign_zone, SignerConfig, SIM_NOW};
    use ede_zone::{Misconfig, TypeSel, Zone, ZoneKeys};

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn caps() -> ValidatorCaps {
        ValidatorCaps::full()
    }

    fn signed_zone() -> (Zone, ZoneKeys, Vec<Rdata>) {
        let apex = n("test.example");
        let mut z = Zone::new(apex.clone());
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Soa(Soa {
                mname: n("ns1.test.example"),
                rname: n("hostmaster.test.example"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            apex.clone(),
            3600,
            Rdata::Ns(n("ns1.test.example")),
        ));
        z.add_a(n("ns1.test.example"), "192.0.2.1".parse().unwrap());
        z.add_a(apex.clone(), "192.0.2.2".parse().unwrap());
        let keys = ZoneKeys::generate(&apex, 8, 2048);
        sign_zone(&mut z, &keys, &SignerConfig::default());
        let ds = vec![keys.ksk.ds_rdata(&apex, DigestAlg::SHA256)];
        (z, keys, ds)
    }

    fn dnskey_rrset(z: &Zone) -> Rrset {
        z.get(&n("test.example"), RrType::Dnskey).unwrap().clone()
    }

    #[test]
    fn clean_zone_validates() {
        let (z, _, ds) = signed_zone();
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        let trusted = v.trusted.expect("chain should validate");
        assert_eq!(trusted.len(), 2);
        assert!(diag.findings.is_empty());

        let a_set = z.get(&n("test.example"), RrType::A).unwrap();
        assert!(check_rrset(
            a_set,
            &trusted,
            &caps(),
            SIM_NOW,
            SigTarget::Answer,
            &mut diag
        ));
        assert_eq!(diag.validation, ValidationState::Secure);
    }

    #[test]
    fn ds_bad_tag_reports_no_matching_dnskey() {
        let (z, keys, _) = signed_zone();
        let ds = Misconfig::DsBadTag.parent_ds(&keys, &n("test.example"));
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_none());
        assert!(diag.any(|f| matches!(
            f,
            Finding::DsNoMatchingDnskey {
                cause: DsMismatch::TagOrAlgorithm
            }
        )));
        assert_eq!(diag.validation, ValidationState::Bogus);
    }

    #[test]
    fn ds_bogus_digest_reports_digest_mismatch() {
        let (z, keys, _) = signed_zone();
        let ds = Misconfig::DsBogusDigestValue.parent_ds(&keys, &n("test.example"));
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_none());
        assert!(diag.any(|f| matches!(
            f,
            Finding::DsNoMatchingDnskey {
                cause: DsMismatch::Digest
            }
        )));
    }

    #[test]
    fn unassigned_ds_algorithm_is_insecure() {
        let (z, keys, _) = signed_zone();
        let ds = Misconfig::DsUnassignedKeyAlgo.parent_ds(&keys, &n("test.example"));
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_none());
        assert_eq!(diag.validation, ValidationState::Insecure);
        assert!(diag.any(|f| matches!(
            f,
            Finding::DsUnknownAlgorithm {
                status: AlgStatus::Unassigned,
                algorithm: 100
            }
        )));
    }

    #[test]
    fn expired_answer_signature() {
        let (mut z, keys, ds) = signed_zone();
        Misconfig::RrsigExpired(TypeSel::OnlyApexA).apply(&mut z, &keys);
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        let trusted = v.trusted.expect("dnskey untouched");
        let a_set = z.get(&n("test.example"), RrType::A).unwrap();
        assert!(!check_rrset(
            a_set,
            &trusted,
            &caps(),
            SIM_NOW,
            SigTarget::Answer,
            &mut diag
        ));
        assert!(diag.any(|f| matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Answer
            }
        )));
    }

    #[test]
    fn missing_zsk_breaks_dnskey_rrset() {
        let (mut z, keys, ds) = signed_zone();
        Misconfig::NoZsk.apply(&mut z, &keys);
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_none());
        assert!(diag.any(|f| matches!(
            f,
            Finding::DnskeySigBogus {
                zsk_present: false,
                ..
            }
        )));
    }

    #[test]
    fn no_rrsig_ksk_detected_with_zsk_sig_present() {
        let (mut z, keys, ds) = signed_zone();
        Misconfig::NoRrsigKsk.apply(&mut z, &keys);
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_none());
        assert!(diag.any(|f| matches!(f, Finding::DnskeySigMissingByMatchedKey)));
    }

    #[test]
    fn bad_rrsig_ksk_leaves_valid_zsk_sig() {
        let (mut z, keys, ds) = signed_zone();
        Misconfig::BadRrsigKsk.apply(&mut z, &keys);
        let mut diag = Diagnosis::new();
        validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(diag.any(|f| matches!(
            f,
            Finding::DnskeySigBogus {
                some_sig_valid: true,
                ..
            }
        )));
    }

    #[test]
    fn bad_rrsig_dnskey_no_valid_sig() {
        let (mut z, keys, ds) = signed_zone();
        Misconfig::BadRrsigDnskey.apply(&mut z, &keys);
        let mut diag = Diagnosis::new();
        validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(diag.any(|f| matches!(
            f,
            Finding::DnskeySigBogus {
                some_sig_valid: false,
                zsk_present: true
            }
        )));
    }

    #[test]
    fn collate_groups_and_attaches_sigs() {
        let (z, _, _) = signed_zone();
        let a_set = z.get(&n("test.example"), RrType::A).unwrap();
        let mut records: Vec<Record> = a_set.records().collect();
        records.extend(a_set.sig_records());
        let collated = collate(&records);
        assert_eq!(collated.len(), 1);
        assert_eq!(collated[0].rdatas.len(), 1);
        assert_eq!(collated[0].sigs.len(), 1);
    }

    #[test]
    fn standby_key_flagged() {
        let (mut z, keys, ds) = signed_zone();
        // Publish an extra SEP key that signs nothing.
        let standby = ede_zone::ZoneKey::generate(&n("test.example"), "standby", 8, 2048, 257);
        z.get_mut(&n("test.example"), RrType::Dnskey)
            .unwrap()
            .rdatas
            .push(standby.dnskey_rdata());
        // Re-sign so the RRset (now including the stand-by key) verifies.
        ede_zone::signer::resign_rrset(
            &mut z,
            &n("test.example"),
            RrType::Dnskey,
            &keys,
            SignerConfig::default().window(),
        );
        let mut diag = Diagnosis::new();
        let v = validate_dnskey(
            &n("test.example"),
            &ds,
            &dnskey_rrset(&z),
            &caps(),
            SIM_NOW,
            &mut diag,
        );
        assert!(v.trusted.is_some(), "chain still validates");
        assert!(diag.any(|f| matches!(f, Finding::StandbyKeyWithoutRrsig)));
        assert_eq!(diag.validation, ValidationState::Secure);
    }
}
