//! DNS Error Reporting (RFC 9567, at the paper's writing the
//! `draft-ietf-dnsop-dns-error-reporting` work its §2 cites).
//!
//! The mechanism: an authoritative server advertises a *reporting agent
//! domain*; when a resolver attaches an EDE to a response, it also sends
//! a query for a specially-constructed name under the agent domain. The
//! agent's authoritative server treats each such query as a report. The
//! report name encodes the failing QNAME, QTYPE, and INFO-CODE:
//!
//! ```text
//! _er.<QTYPE>.<QNAME labels>.<INFO-CODE>._er.<agent domain>
//! ```
//!
//! This module provides the codec for report names, a collecting
//! [`ReportingAgent`] server, and the resolver-side hook (see
//! [`crate::resolver::Resolver`]'s `error_reporting` support).

use ede_netsim::{Server, ServerResponse};
use ede_wire::{Edns, Message, Name, Rcode, Rdata, Record, RrType, WireError};
use std::net::IpAddr;
use std::sync::Mutex;

/// One decoded error report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReport {
    /// The name whose resolution failed.
    pub qname: Name,
    /// The type that was being resolved.
    pub qtype: RrType,
    /// The EDE INFO-CODE observed.
    pub info_code: u16,
}

/// Build the reporting query name for a failure.
pub fn report_qname(
    qname: &Name,
    qtype: RrType,
    info_code: u16,
    agent: &Name,
) -> Result<Name, WireError> {
    // Leaf-first: _er . <qtype> . <qname labels...> . <info-code> . _er . agent
    let mut labels: Vec<Vec<u8>> = vec![b"_er".to_vec(), qtype.to_u16().to_string().into_bytes()];
    labels.extend(qname.labels().map(|l| l.to_vec()));
    labels.push(info_code.to_string().into_bytes());
    labels.push(b"_er".to_vec());
    labels.extend(agent.labels().map(|l| l.to_vec()));
    Name::from_labels(labels)
}

/// Parse a reporting query name back into a report. Returns `None` for
/// names that are not reports under `agent`.
pub fn parse_report_qname(name: &Name, agent: &Name) -> Option<ErrorReport> {
    if !name.is_subdomain_of(agent) {
        return None;
    }
    let labels: Vec<&[u8]> = name.labels().collect();
    let own = labels.len().checked_sub(agent.label_count())?;
    let body = &labels[..own];
    // _er . qtype . <qname...> . code . _er
    if body.len() < 5 || body[0] != b"_er" || body[body.len() - 1] != b"_er" {
        return None;
    }
    let qtype: u16 = std::str::from_utf8(body[1]).ok()?.parse().ok()?;
    let info_code: u16 = std::str::from_utf8(body[body.len() - 2])
        .ok()?
        .parse()
        .ok()?;
    let qname = Name::from_labels(body[2..body.len() - 2].iter().copied()).ok()?;
    Some(ErrorReport {
        qname,
        qtype: RrType::from_u16(qtype),
        info_code,
    })
}

/// A reporting-agent authoritative server: collects every report it is
/// queried for and answers with a confirming TXT record (RFC 9567 §6.3
/// suggests a positive, cacheable answer to damp repeat reports).
pub struct ReportingAgent {
    agent: Name,
    reports: Mutex<Vec<ErrorReport>>,
}

impl ReportingAgent {
    /// An agent for `agent` (e.g. `reports.example`).
    pub fn new(agent: Name) -> Self {
        ReportingAgent {
            agent,
            reports: Mutex::new(Vec::new()),
        }
    }

    /// The agent domain.
    pub fn agent(&self) -> &Name {
        &self.agent
    }

    /// Reports collected so far.
    pub fn reports(&self) -> Vec<ErrorReport> {
        self.reports.lock().expect("no poisoning").clone()
    }

    /// Number of reports collected.
    pub fn report_count(&self) -> usize {
        self.reports.lock().expect("no poisoning").len()
    }
}

impl Server for ReportingAgent {
    fn handle(&self, query: &Message, _src: IpAddr, _now: u32) -> ServerResponse {
        let Some(q) = query.first_question() else {
            let mut resp = Message::response_to(query);
            resp.rcode = Rcode::FormErr;
            return ServerResponse::Reply(resp);
        };
        let mut resp = Message::response_to(query);
        resp.authoritative = true;
        if query.edns.is_some() {
            resp.edns = Some(Edns::default());
        }
        match parse_report_qname(&q.name, &self.agent) {
            Some(report) => {
                self.reports.lock().expect("no poisoning").push(report);
                resp.answers.push(Record::new(
                    q.name.clone(),
                    3600, // long TTL: caching suppresses duplicate reports
                    Rdata::Txt(vec![b"report received".to_vec()]),
                ));
            }
            None => {
                resp.rcode = Rcode::NxDomain;
            }
        }
        ServerResponse::Reply(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn report_name_roundtrip() {
        let agent = n("reports.example");
        let rq = report_qname(&n("broken.test.com"), RrType::A, 7, &agent).unwrap();
        assert_eq!(
            rq.to_string(),
            "_er.1.broken.test.com.7._er.reports.example."
        );
        let parsed = parse_report_qname(&rq, &agent).unwrap();
        assert_eq!(parsed.qname, n("broken.test.com"));
        assert_eq!(parsed.qtype, RrType::A);
        assert_eq!(parsed.info_code, 7);
    }

    #[test]
    fn non_reports_are_rejected() {
        let agent = n("reports.example");
        assert!(parse_report_qname(&n("www.reports.example"), &agent).is_none());
        assert!(parse_report_qname(&n("_er.x.reports.example"), &agent).is_none());
        assert!(parse_report_qname(&n("_er.1.a.7._er.other.example"), &agent).is_none());
        // Non-numeric code.
        assert!(parse_report_qname(&n("_er.1.a.xx._er.reports.example"), &agent).is_none());
    }

    #[test]
    fn agent_collects_reports() {
        let agent = ReportingAgent::new(n("reports.example"));
        let rq = report_qname(&n("lame.org"), RrType::A, 22, agent.agent()).unwrap();
        let query = Message::query(9, rq, RrType::Txt);
        match agent.handle(&query, "192.0.2.1".parse().unwrap(), 0) {
            ServerResponse::Reply(resp) => {
                assert_eq!(resp.rcode, Rcode::NoError);
                assert_eq!(resp.answers.len(), 1);
            }
            ServerResponse::Drop => panic!("agent must answer"),
        }
        assert_eq!(agent.report_count(), 1);
        assert_eq!(agent.reports()[0].info_code, 22);
    }

    #[test]
    fn agent_nxdomains_garbage() {
        let agent = ReportingAgent::new(n("reports.example"));
        let query = Message::query(9, n("junk.reports.example"), RrType::Txt);
        match agent.handle(&query, "192.0.2.1".parse().unwrap(), 0) {
            ServerResponse::Reply(resp) => assert_eq!(resp.rcode, Rcode::NxDomain),
            ServerResponse::Drop => panic!(),
        }
        assert_eq!(agent.report_count(), 0);
    }
}
