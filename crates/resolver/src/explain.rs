//! Human-readable explanations of findings — the troubleshooting story
//! the paper says EDE should enable, rendered from the resolver's own
//! diagnosis.
//!
//! Where an EDE code compresses a failure into 16 bits, the diagnosis
//! retains the structure; this module turns it back into the kind of
//! text a DNS operator would want (`dnsviz`-style, but from the
//! resolver's vantage point).

use crate::diagnosis::{
    AlgStatus, DenialIssue, Diagnosis, DsMismatch, Finding, NegativeKind, SigTarget,
    ValidationState,
};

fn target_noun(t: SigTarget) -> &'static str {
    match t {
        SigTarget::Answer => "the answer RRset",
        SigTarget::Dnskey => "the zone's DNSKEY RRset",
        SigTarget::Denial => "the denial-of-existence records",
    }
}

fn kind_noun(k: NegativeKind) -> &'static str {
    match k {
        NegativeKind::Nodata => "NODATA answer",
        NegativeKind::Nxdomain => "NXDOMAIN answer",
    }
}

/// One-sentence operator-facing explanation of a finding.
pub fn explain_finding(f: &Finding) -> String {
    match f {
        Finding::AllServersFailed { any_rcode_failure: true } => {
            "every authoritative nameserver refused or failed the query — the delegation is lame".into()
        }
        Finding::AllServersFailed { any_rcode_failure: false } => {
            "no authoritative nameserver could be reached (silence or unroutable glue) — the delegation is lame".into()
        }
        Finding::EdnsNotSupported { addr } => format!(
            "the server at {addr} ignored EDNS entirely; responses from it cannot carry DNSSEC data"
        ),
        Finding::DsUnknownAlgorithm { status, algorithm } => match status {
            AlgStatus::Unassigned => format!(
                "the DS record names algorithm {algorithm}, which IANA has never assigned — the delegation cannot be validated"
            ),
            AlgStatus::Reserved => format!(
                "the DS record names algorithm {algorithm}, a reserved registry value"
            ),
            _ => format!("the DS record names algorithm {algorithm}, which this resolver cannot use"),
        },
        Finding::DsUnsupportedDigest { assigned: true, digest_type } => format!(
            "the DS digest type {digest_type} is assigned but not supported by this resolver"
        ),
        Finding::DsUnsupportedDigest { assigned: false, digest_type } => format!(
            "the DS digest type {digest_type} is not an assigned registry value"
        ),
        Finding::DsNoMatchingDnskey { cause: DsMismatch::TagOrAlgorithm } => {
            "no DNSKEY in the child zone matches the DS record's key tag and algorithm — \
             the key was removed, replaced, or the DS is stale".into()
        }
        Finding::DsNoMatchingDnskey { cause: DsMismatch::Digest } => {
            "a DNSKEY matches the DS key tag but its digest disagrees — the published key \
             differs from the one the DS was generated for".into()
        }
        Finding::DnskeyUnobtainable { failure } => format!(
            "the zone is signed (a DS exists) but its DNSKEY RRset could not be fetched ({failure})"
        ),
        Finding::DnskeySigMissingByMatchedKey => {
            "the DS-matched KSK signed nothing over the DNSKEY RRset; other signatures exist \
             but cannot anchor the chain of trust".into()
        }
        Finding::DnskeyAllSigsMissing => {
            "the DNSKEY RRset carries no RRSIG at all — the chain of trust cannot be established".into()
        }
        Finding::DnskeySigBogus { zsk_present, some_sig_valid } => {
            let mut s = String::from(
                "the signature over the DNSKEY RRset fails cryptographic verification",
            );
            if *some_sig_valid {
                s.push_str(" (a signature by a non-anchored key does verify)");
            }
            if !zsk_present {
                s.push_str("; no usable zone-signing key is published");
            }
            s
        }
        Finding::NoZoneKeyBitSet => {
            "every published DNSKEY has the Zone Key flag clear — none may sign zone data \
             (RFC 4034 §2.1.1)".into()
        }
        Finding::StandbyKeyWithoutRrsig => {
            "a stand-by key (SEP flag, no DS, no signatures) is published — harmless during a \
             rollover but flagged by Cloudflare as RRSIGs Missing".into()
        }
        Finding::UnsupportedKeySize { bits } => {
            format!("a published key is only {bits} bits — below this resolver's minimum")
        }
        Finding::RrsigMissing { target } => format!("{} has no covering RRSIG", target_noun(*target)),
        Finding::SignatureExpired { target } => {
            format!("the RRSIG over {} has expired", target_noun(*target))
        }
        Finding::SignatureNotYetValid { target } => {
            format!("the RRSIG over {} is not yet valid", target_noun(*target))
        }
        Finding::SignatureExpiredBeforeValid { target } => format!(
            "the RRSIG over {} expires before its inception — the validity window is inverted",
            target_noun(*target)
        ),
        Finding::SignatureBogus { target } => format!(
            "the RRSIG over {} fails cryptographic verification",
            target_noun(*target)
        ),
        Finding::RrsigKeyMissing { target } => format!(
            "the RRSIG over {} references a key tag that is not in the zone's DNSKEY RRset",
            target_noun(*target)
        ),
        Finding::ZoneAlgorithmUnsupported { status, algorithm } => match status {
            AlgStatus::Deprecated => format!(
                "the zone is signed with deprecated algorithm {algorithm}; validators must treat it as unsigned"
            ),
            _ => format!(
                "the zone is signed with algorithm {algorithm}, which this resolver does not implement; treated as unsigned"
            ),
        },
        Finding::DenialProofBroken { issue, kind } => match issue {
            DenialIssue::Absent => format!(
                "the {} carries no NSEC3 proof at all",
                kind_noun(*kind)
            ),
            DenialIssue::OwnerMismatch => format!(
                "the NSEC3 records in the {} hash to the wrong owner names — they prove nothing about the queried name",
                kind_noun(*kind)
            ),
            DenialIssue::ChainMismatch => format!(
                "the NSEC3 chain's next-hash pointers in the {} cover no interval containing the queried name",
                kind_noun(*kind)
            ),
        },
        Finding::DenialSigMissing { kind } => format!(
            "the NSEC3 proof in the {} is unsigned",
            kind_noun(*kind)
        ),
        Finding::DenialSigBogus { kind } => format!(
            "the NSEC3 proof in the {} has signatures that fail verification",
            kind_noun(*kind)
        ),
        Finding::NegativeUnsigned { kind } => format!(
            "the {} from a signed zone arrived with an unsigned SOA and no proof — the zone's denial machinery is broken",
            kind_noun(*kind)
        ),
        Finding::InsecureReferralProofMissing => {
            "the parent referred without a DS and without an NSEC3 proof of DS absence — \
             the insecure delegation cannot be verified".into()
        }
        Finding::Nsec3IterationsExceeded { iterations } => format!(
            "the zone's NSEC3 iteration count ({iterations}) exceeds this resolver's limit (RFC 9276 requires 0)"
        ),
        Finding::SynthesizedDenial { kind } => format!(
            "the {} was synthesized from DNSSEC-validated NSEC3/NSEC ranges already in cache \
             (RFC 8198) — no authority was asked",
            kind_noun(*kind)
        ),
        Finding::ServedStale { nxdomain: false } => {
            "live resolution failed; an expired cached answer was served instead (RFC 8767)".into()
        }
        Finding::ServedStale { nxdomain: true } => {
            "live resolution failed; an expired cached NXDOMAIN was served instead".into()
        }
        Finding::CachedError => {
            "this SERVFAIL was replayed from the failure cache of an earlier attempt".into()
        }
    }
}

/// Render a whole diagnosis as an operator-facing report.
pub fn explain(diag: &Diagnosis) -> String {
    let mut out = String::new();
    out.push_str(match diag.validation {
        ValidationState::Secure => "Validation: SECURE — the chain of trust is intact.\n",
        ValidationState::Insecure => {
            "Validation: INSECURE — provably no chain of trust; answers are unauthenticated.\n"
        }
        ValidationState::Bogus => "Validation: BOGUS — the chain of trust is broken.\n",
        ValidationState::Indeterminate => "Validation: INDETERMINATE.\n",
    });
    if diag.findings.is_empty() && diag.ns_events.is_empty() {
        out.push_str("No problems found.\n");
        return out;
    }
    for f in &diag.findings {
        out.push_str("  * ");
        out.push_str(&explain_finding(f));
        out.push('\n');
    }
    for e in &diag.ns_events {
        out.push_str(&format!(
            "  - {}:53 {} (while asking for {} {})\n",
            e.addr, e.failure, e.qname, e.qtype
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::NsFailure;

    #[test]
    fn every_finding_variant_explains_without_panicking() {
        use Finding::*;
        let samples: Vec<Finding> = vec![
            AllServersFailed {
                any_rcode_failure: true,
            },
            AllServersFailed {
                any_rcode_failure: false,
            },
            EdnsNotSupported {
                addr: "192.0.2.1".parse().expect("addr"),
            },
            DsUnknownAlgorithm {
                status: AlgStatus::Unassigned,
                algorithm: 100,
            },
            DsUnknownAlgorithm {
                status: AlgStatus::Reserved,
                algorithm: 200,
            },
            DsUnsupportedDigest {
                assigned: true,
                digest_type: 3,
            },
            DsUnsupportedDigest {
                assigned: false,
                digest_type: 100,
            },
            DsNoMatchingDnskey {
                cause: DsMismatch::TagOrAlgorithm,
            },
            DsNoMatchingDnskey {
                cause: DsMismatch::Digest,
            },
            DnskeyUnobtainable {
                failure: NsFailure::Refused,
            },
            DnskeySigMissingByMatchedKey,
            DnskeyAllSigsMissing,
            DnskeySigBogus {
                zsk_present: true,
                some_sig_valid: false,
            },
            DnskeySigBogus {
                zsk_present: false,
                some_sig_valid: true,
            },
            NoZoneKeyBitSet,
            StandbyKeyWithoutRrsig,
            UnsupportedKeySize { bits: 512 },
            RrsigMissing {
                target: SigTarget::Answer,
            },
            SignatureExpired {
                target: SigTarget::Dnskey,
            },
            SignatureNotYetValid {
                target: SigTarget::Answer,
            },
            SignatureExpiredBeforeValid {
                target: SigTarget::Denial,
            },
            SignatureBogus {
                target: SigTarget::Answer,
            },
            RrsigKeyMissing {
                target: SigTarget::Answer,
            },
            ZoneAlgorithmUnsupported {
                status: AlgStatus::Deprecated,
                algorithm: 1,
            },
            ZoneAlgorithmUnsupported {
                status: AlgStatus::UnsupportedAssigned,
                algorithm: 16,
            },
            DenialProofBroken {
                issue: DenialIssue::Absent,
                kind: NegativeKind::Nodata,
            },
            DenialProofBroken {
                issue: DenialIssue::OwnerMismatch,
                kind: NegativeKind::Nxdomain,
            },
            DenialProofBroken {
                issue: DenialIssue::ChainMismatch,
                kind: NegativeKind::Nxdomain,
            },
            DenialSigMissing {
                kind: NegativeKind::Nxdomain,
            },
            DenialSigBogus {
                kind: NegativeKind::Nodata,
            },
            NegativeUnsigned {
                kind: NegativeKind::Nodata,
            },
            InsecureReferralProofMissing,
            Nsec3IterationsExceeded { iterations: 2000 },
            SynthesizedDenial {
                kind: NegativeKind::Nxdomain,
            },
            SynthesizedDenial {
                kind: NegativeKind::Nodata,
            },
            ServedStale { nxdomain: false },
            ServedStale { nxdomain: true },
            CachedError,
        ];
        for f in &samples {
            let text = explain_finding(f);
            assert!(!text.is_empty());
            assert!(text.len() > 20, "{f:?} → {text}");
        }
    }

    #[test]
    fn clean_diagnosis_reads_clean() {
        let d = Diagnosis::new();
        let text = explain(&d);
        assert!(text.contains("SECURE"));
        assert!(text.contains("No problems found"));
    }

    #[test]
    fn report_includes_findings_and_events() {
        let mut d = Diagnosis::new();
        d.add(Finding::DnskeyAllSigsMissing);
        d.degrade(ValidationState::Bogus);
        d.add_event(crate::diagnosis::NsEvent {
            addr: "192.0.2.7".parse().expect("addr"),
            failure: NsFailure::Timeout,
            qname: ede_wire::Name::parse("x.example").expect("name"),
            qtype: ede_wire::RrType::A,
        });
        let text = explain(&d);
        assert!(text.contains("BOGUS"));
        assert!(text.contains("no RRSIG at all"));
        assert!(text.contains("192.0.2.7:53 timed out"));
    }
}
