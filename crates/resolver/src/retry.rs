//! Retry hardening: an explicit, deterministic policy for how the
//! engine walks a server set when exchanges fail.
//!
//! The policy replaces the old ad-hoc "try each address once, in
//! referral order" iteration with four orthogonal knobs:
//!
//! * **Same-server retries** for *transient* failures (timeouts and
//!   FORMERR, the signatures of datagram loss and corruption). A
//!   REFUSED or SERVFAIL is the server's considered opinion and is
//!   never retried on the same address.
//! * **Exponential backoff with deterministic jitter.** Waits advance
//!   the shared virtual clock, so hardened runs remain bit-reproducible
//!   for a given seed: the jitter is a hash of `(seed, addr, attempt)`,
//!   not a random draw.
//! * **Server selection.** [`ServerSelection::Static`] preserves the
//!   referral order exactly (the historical behaviour);
//!   [`ServerSelection::SmoothedRtt`] sorts the set by a per-address
//!   smoothed RTT estimate, preferring servers that answered quickly
//!   before. The sort is stable and unknown addresses estimate to zero,
//!   so a fresh resolver behaves identically to `Static` — the
//!   zero-fault invariance property in `tests/robustness.rs` leans on
//!   this.
//! * **Hedged rounds.** After the whole set fails with at least one
//!   transient failure, the engine may sweep the set again (the
//!   failures may have been bad luck, not dead servers). Rounds beyond
//!   the first emit [`TraceEvent::Hedge`] instead of `Retry`.
//!
//! [`RetryPolicy::none()`] disables all four and reproduces the
//! pre-policy engine byte for byte; it is the [`ResolverConfig`]
//! default so that pinned golden traces and the Table 4 matrix are
//! unaffected. [`RetryPolicy::default()`] is the hardened profile used
//! by the chaos campaigns.
//!
//! [`ResolverConfig`]: crate::config::ResolverConfig
//! [`TraceEvent::Hedge`]: ede_trace::TraceEvent::Hedge

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;

/// How a server set is ordered before querying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerSelection {
    /// Referral order, exactly as the parent zone listed the NS set.
    Static,
    /// Lowest smoothed RTT first. The sort is stable and unmeasured
    /// addresses estimate to zero, so new servers are explored ahead of
    /// known-slow ones and a fresh table degenerates to `Static`.
    SmoothedRtt,
}

/// How the engine retries, backs off, orders, and hedges a server set.
///
/// Construct with [`RetryPolicy::none()`] (exact-compatibility
/// baseline), [`RetryPolicy::default()`] (hardened), or the fluent
/// `with_*` methods; the struct is `#[non_exhaustive]` so fields can
/// grow without breaking callers.
///
/// Backoff waits are deterministic: the jitter is a hash of
/// `(jitter_seed, addr, attempt)`, never a random draw, so the same
/// policy produces the same virtual-clock schedule on every run.
///
/// ```
/// use std::net::{IpAddr, Ipv4Addr};
/// use ede_resolver::retry::{RetryPolicy, ServerSelection};
///
/// // The baseline does nothing: no same-server retries, no backoff.
/// let baseline = RetryPolicy::none();
/// assert_eq!(baseline.retries_per_server, 0);
/// let addr = IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1));
/// assert_eq!(baseline.backoff_ms(0, addr, 0), 0);
///
/// // A hardened profile tuned through the fluent builders.
/// let policy = RetryPolicy::hardened()
///     .with_retries_per_server(2)
///     .with_backoff_ms(10, 200)
///     .with_jitter_seed(7)
///     .with_hedge_rounds(1)
///     .with_selection(ServerSelection::SmoothedRtt)
///     .with_tc_fallback(true);
///
/// // Same inputs, same wait — bit-reproducible backoff.
/// let first = policy.backoff_ms(1, addr, 1);
/// assert_eq!(first, policy.backoff_ms(1, addr, 1));
/// // Waits grow with the failure streak and the jittered wait lands in
/// // `[full/2, full)`, so it stays below the 200 ms ceiling.
/// assert!(policy.backoff_ms(4, addr, 1) >= first);
/// for streak in 0..16 {
///     assert!(policy.backoff_ms(streak, addr, 1) < 200);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Extra attempts on the *same* server after a transient failure
    /// (timeout or FORMERR). `0` means one shot per server.
    pub retries_per_server: usize,
    /// First backoff wait. `0` disables backoff entirely.
    pub backoff_base_ms: u64,
    /// Ceiling for the exponential backoff.
    pub backoff_max_ms: u64,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
    /// Extra full sweeps of the server set after everything failed and
    /// at least one failure was transient. `0` means a single sweep.
    pub hedge_rounds: usize,
    /// Server-ordering strategy.
    pub selection: ServerSelection,
    /// Re-ask over the stream channel when a reply has the TC bit set.
    pub tc_fallback: bool,
}

impl Default for RetryPolicy {
    /// The hardened profile: two same-server retries, 200 ms → 3 s
    /// jittered backoff, one hedged round, smoothed-RTT selection, and
    /// truncation fallback.
    fn default() -> Self {
        RetryPolicy {
            retries_per_server: 2,
            backoff_base_ms: 200,
            backoff_max_ms: 3_000,
            jitter_seed: 0x0EDE,
            hedge_rounds: 1,
            selection: ServerSelection::SmoothedRtt,
            tc_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// The exact-compatibility baseline: one shot per server in
    /// referral order, no backoff, no hedging. Truncation fallback
    /// stays on — without a stream channel a TC=1 reply is a dead end,
    /// and no pinned scenario produces one. This is what
    /// [`ResolverConfig::default()`](crate::config::ResolverConfig)
    /// uses, so default-config resolutions are byte-identical to the
    /// pre-policy engine.
    pub fn none() -> Self {
        RetryPolicy {
            retries_per_server: 0,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
            jitter_seed: 0x0EDE,
            hedge_rounds: 0,
            selection: ServerSelection::Static,
            tc_fallback: true,
        }
    }

    /// Alias for [`Default::default`], for symmetry with [`none`].
    ///
    /// [`none`]: RetryPolicy::none
    pub fn hardened() -> Self {
        Self::default()
    }

    /// Set the number of same-server retries for transient failures.
    pub fn with_retries_per_server(mut self, n: usize) -> Self {
        self.retries_per_server = n;
        self
    }

    /// Set the backoff base and ceiling (milliseconds).
    pub fn with_backoff_ms(mut self, base: u64, max: u64) -> Self {
        self.backoff_base_ms = base;
        self.backoff_max_ms = max.max(base);
        self
    }

    /// Set the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Set the number of hedged rounds.
    pub fn with_hedge_rounds(mut self, n: usize) -> Self {
        self.hedge_rounds = n;
        self
    }

    /// Set the server-selection strategy.
    pub fn with_selection(mut self, selection: ServerSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Enable or disable truncation (TC bit → stream) fallback.
    pub fn with_tc_fallback(mut self, on: bool) -> Self {
        self.tc_fallback = on;
        self
    }

    /// The wait before the attempt that follows `streak` consecutive
    /// transient failures, jittered deterministically by `(addr,
    /// attempt)`. Zero when backoff is disabled or nothing has failed
    /// yet.
    ///
    /// The full wait doubles per failure (`base << (streak-1)`, capped
    /// at `backoff_max_ms`) and the jittered wait lands in
    /// `[full/2, full)` — decorrelated across servers and attempts but
    /// identical across runs.
    pub fn backoff_ms(&self, streak: u32, addr: IpAddr, attempt: usize) -> u64 {
        if self.backoff_base_ms == 0 || streak == 0 {
            return 0;
        }
        let exp = streak.saturating_sub(1).min(16);
        let full = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_max_ms.max(self.backoff_base_ms));
        let half = (full / 2).max(1);
        half + self.jitter(addr, attempt) % half
    }

    /// FNV-1a over `(seed, addr, attempt)` — the deterministic stand-in
    /// for random jitter.
    fn jitter(&self, addr: IpAddr, attempt: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in self.jitter_seed.to_le_bytes() {
            eat(b);
        }
        match addr {
            IpAddr::V4(v4) => v4.octets().iter().for_each(|&b| eat(b)),
            IpAddr::V6(v6) => v6.octets().iter().for_each(|&b| eat(b)),
        }
        for b in (attempt as u64).to_le_bytes() {
            eat(b);
        }
        h
    }
}

/// Per-address smoothed-RTT table (RFC 6298-style EWMA, gain 1/8),
/// shared by every resolution of one resolver. Timeouts feed the full
/// elapsed wait back as a sample, so dead servers sink to the bottom of
/// [`ServerSelection::SmoothedRtt`] orderings.
#[derive(Debug, Default)]
pub struct SrttTable {
    inner: Mutex<HashMap<IpAddr, u64>>,
}

impl SrttTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one RTT sample (milliseconds): `srtt' = (7·srtt + sample)/8`,
    /// or the raw sample for a first observation.
    pub fn observe(&self, addr: IpAddr, sample_ms: u64) {
        let mut inner = self.inner.lock().expect("no poisoning");
        let slot = inner.entry(addr).or_insert(sample_ms);
        *slot = (7 * *slot + sample_ms) / 8;
    }

    /// Current estimate, if the address has been measured.
    pub fn get(&self, addr: IpAddr) -> Option<u64> {
        self.inner.lock().expect("no poisoning").get(&addr).copied()
    }

    /// Order `servers` by ascending estimate (unmeasured = 0) with a
    /// stable sort, then truncate to `max`. With an empty table this
    /// returns the first `max` addresses in their given order.
    pub fn order(&self, servers: &[IpAddr], max: usize) -> Vec<IpAddr> {
        let inner = self.inner.lock().expect("no poisoning");
        let mut out: Vec<IpAddr> = servers.to_vec();
        out.sort_by_key(|a| inner.get(a).copied().unwrap_or(0));
        out.truncate(max);
        out
    }

    /// Drop all estimates.
    pub fn clear(&self) {
        self.inner.lock().expect("no poisoning").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn none_policy_never_waits() {
        let p = RetryPolicy::none();
        assert_eq!(p.retries_per_server, 0);
        assert_eq!(p.hedge_rounds, 0);
        assert_eq!(p.selection, ServerSelection::Static);
        for streak in 0..5 {
            assert_eq!(p.backoff_ms(streak, ip("192.0.2.1"), 3), 0);
        }
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let p = RetryPolicy::default();
        let a = ip("192.0.2.1");
        assert_eq!(p.backoff_ms(0, a, 0), 0, "no failures, no wait");
        let mut prev_full = 0;
        for streak in 1..=8 {
            let w = p.backoff_ms(streak, a, 1);
            let full = (p.backoff_base_ms << (streak - 1)).min(p.backoff_max_ms);
            assert!(
                (full / 2..full.max(full / 2 + 1)).contains(&w),
                "streak {streak}: {w} outside [{}, {full})",
                full / 2
            );
            assert!(full >= prev_full, "full wait must be monotone");
            prev_full = full;
            assert_eq!(w, p.backoff_ms(streak, a, 1), "same inputs, same wait");
        }
        // Jitter decorrelates servers and attempts.
        assert_ne!(
            p.backoff_ms(3, ip("192.0.2.1"), 1),
            p.backoff_ms(3, ip("192.0.2.2"), 1)
        );
        assert_ne!(p.backoff_ms(3, a, 1), p.backoff_ms(3, a, 2));
    }

    #[test]
    fn srtt_is_an_ewma_and_orders_stably() {
        let t = SrttTable::new();
        let (a, b, c) = (ip("192.0.2.1"), ip("192.0.2.2"), ip("192.0.2.3"));
        // Fresh table: given order survives, bounded by max.
        assert_eq!(t.order(&[a, b, c], 2), vec![a, b]);
        t.observe(b, 80);
        assert_eq!(t.get(b), Some(80), "first sample taken raw");
        t.observe(b, 0);
        assert_eq!(t.get(b), Some(70), "(7*80 + 0) / 8");
        // Unmeasured servers (estimate 0) explore ahead of measured ones.
        assert_eq!(t.order(&[b, a, c], 3), vec![a, c, b]);
        t.clear();
        assert_eq!(t.get(b), None);
    }
}
