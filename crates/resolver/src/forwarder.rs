//! Forwarder / stub-resolver mode with EDE passthrough.
//!
//! RFC 8914 (and the paper's §2) emphasize that *any* DNS system — a
//! recursive resolver, a forwarder, or a stub — can generate, forward,
//! and parse EDE. [`Forwarder`] models the middle role: it speaks real
//! wire format toward an upstream recursive resolver (every exchange is
//! encoded and re-decoded, exactly like a datagram), parses the EDE
//! options out of the reply, and can either pass them through to its own
//! client or strip them, both behaviors deployed forwarders exhibit.

use crate::resolver::Resolver;
use ede_wire::{EdeEntry, Message, Name, Rcode, Record, RrType};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

/// What the forwarder's client receives.
#[derive(Debug, Clone)]
pub struct ForwardedResolution {
    /// Response code from upstream.
    pub rcode: Rcode,
    /// Answer records.
    pub answers: Vec<Record>,
    /// EDE entries as they would reach the client (empty when the
    /// forwarder strips them).
    pub ede: Vec<EdeEntry>,
    /// EDE entries as the *upstream* sent them (always parsed, per §2 —
    /// forwarders can use them for their own logging even when
    /// stripping).
    pub upstream_ede: Vec<EdeEntry>,
    /// Upstream's AD bit.
    pub authentic_data: bool,
}

/// A forwarding resolver bound to one upstream.
pub struct Forwarder {
    upstream: Arc<Resolver>,
    /// Pass upstream EDE through to clients (true, the RFC-encouraged
    /// behavior) or strip it (false, the legacy-middlebox behavior).
    pub passthrough_ede: bool,
    ids: AtomicU16,
}

impl Forwarder {
    /// A forwarder that passes EDE through.
    pub fn new(upstream: Arc<Resolver>) -> Self {
        Forwarder {
            upstream,
            passthrough_ede: true,
            ids: AtomicU16::new(1),
        }
    }

    /// A forwarder that strips EDE (what the paper's measurement would
    /// see through an EDE-oblivious middlebox).
    pub fn stripping(upstream: Arc<Resolver>) -> Self {
        Forwarder {
            passthrough_ede: false,
            ..Forwarder::new(upstream)
        }
    }

    /// Forward one query. The exchange round-trips through the wire
    /// codec in both directions, so whatever survives here survives a
    /// real datagram.
    pub fn resolve(&self, qname: &Name, qtype: RrType) -> ForwardedResolution {
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        let query = Message::query(id, qname.clone(), qtype);
        let query = Message::decode(&query.encode().expect("well-formed query"))
            .expect("own encoding decodes");

        let resolution = self.upstream.resolve(qname, qtype);
        let reply_wire = resolution
            .to_message(&query)
            .encode()
            .expect("well-formed reply");
        let reply = Message::decode(&reply_wire).expect("own encoding decodes");

        let upstream_ede: Vec<EdeEntry> = reply.ede_entries().cloned().collect();
        // Announce what actually reaches the client: forwarded entries
        // re-emit under the "forwarder" label; stripping emits nothing,
        // so a trace shows the upstream's entries disappearing here.
        if self.passthrough_ede {
            let tracer = self.upstream.network().tracer();
            for entry in &upstream_ede {
                tracer.emit(ede_trace::TraceEvent::EdeEmitted {
                    vendor: "forwarder".to_string(),
                    code: entry.code.to_u16(),
                    extra_text: entry.extra_text.clone(),
                });
            }
        }
        ForwardedResolution {
            rcode: reply.rcode,
            answers: reply.answers,
            ede: if self.passthrough_ede {
                upstream_ede.clone()
            } else {
                Vec::new()
            },
            upstream_ede,
            authentic_data: reply.authentic_data,
        }
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end in the workspace integration tests (the
    // forwarder needs a full testbed); unit coverage here is limited to
    // construction.
    use super::*;
    use crate::config::ResolverConfig;
    use crate::profiles::{Vendor, VendorProfile};
    use ede_netsim::{NetworkBuilder, SimClock};

    #[test]
    fn construction_modes() {
        let net = Arc::new(NetworkBuilder::new().build(SimClock::new()));
        let upstream = Arc::new(Resolver::new(
            net,
            VendorProfile::new(Vendor::Cloudflare),
            ResolverConfig::default(),
        ));
        assert!(Forwarder::new(Arc::clone(&upstream)).passthrough_ede);
        assert!(!Forwarder::stripping(upstream).passthrough_ede);
    }
}
