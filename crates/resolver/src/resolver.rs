//! The public resolver API: policy, cache, engine, and EDE emission.

use crate::cache::infra::{InfraCache, InfraStatsSnapshot};
use crate::cache::l1::L1Cache;
use crate::cache::ranges::RangeCache;
use crate::cache::{Cache, CacheHit, CacheLimits, CacheStatsSnapshot, CachedResolution};
use crate::config::ResolverConfig;
use crate::diagnosis::{Diagnosis, Finding, ValidationState};
use crate::iterative::Engine;
use crate::policy::{Policy, PolicyAction};
use crate::profiles::VendorProfile;
use crate::retry::SrttTable;
use crate::task::{run_local, TaskHandle};
use ede_netsim::Network;
use ede_trace::{CacheOutcome, TraceEvent, Tracer};
use ede_wire::{EdeEntry, Edns, Message, Name, Rcode, Record, RrType};
use std::future::Future;
use std::rc::Rc;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// The complete result of one recursive resolution, as a client of this
/// resolver would see it (plus the internal diagnosis for analysis).
#[derive(Debug, Clone)]
pub struct Resolution {
    /// Final response code.
    pub rcode: Rcode,
    /// Answer records.
    pub answers: Vec<Record>,
    /// Extended DNS Errors attached by the vendor profile.
    pub ede: Vec<EdeEntry>,
    /// True when the response validated as Secure (the AD bit).
    pub authentic_data: bool,
    /// Final validation state.
    pub validation: ValidationState,
    /// The engine's full structured diagnosis.
    pub diagnosis: Diagnosis,
}

impl Resolution {
    /// The EDE codes, numerically.
    pub fn ede_codes(&self) -> Vec<u16> {
        self.ede.iter().map(|e| e.code.to_u16()).collect()
    }

    /// Render as a wire response to `query` (used by the UDP front end).
    pub fn to_message(&self, query: &Message) -> Message {
        let mut resp = Message::response_to(query);
        resp.rcode = self.rcode;
        resp.recursion_available = true;
        resp.authentic_data = self.authentic_data;
        resp.answers = self.answers.clone();
        let mut edns = Edns::default();
        for entry in &self.ede {
            edns.push_ede(entry.clone());
        }
        resp.edns = Some(edns);
        resp
    }
}

/// An EDE-capable validating recursive resolver bound to one simulated
/// network and one vendor profile.
pub struct Resolver {
    net: Arc<Network>,
    profile: VendorProfile,
    config: ResolverConfig,
    policy: Policy,
    cache: Cache,
    infra: InfraCache,
    /// The RFC 8198 range tier (validated NSEC/NSEC3 intervals).
    ranges: RangeCache,
    /// The *effective* synthesis switch: the config knob AND the
    /// vendor gate, resolved once at construction.
    synthesize: bool,
    /// Cache generation, bumped by [`flush`](Self::flush). Workers'
    /// private L1 tiers adopt it once per resolution
    /// ([`L1Cache::sync_generation`]) so a flush invalidates them too.
    generation: AtomicU64,
    ids: AtomicU16,
    srtt: SrttTable,
}

impl Resolver {
    /// Build a resolver.
    pub fn new(net: Arc<Network>, profile: VendorProfile, config: ResolverConfig) -> Self {
        let cache = Cache::with_limits(
            config.stale_window_secs,
            CacheLimits {
                max_entries: config.max_cache_entries,
                max_bytes: config.max_cache_bytes,
            },
        );
        let ranges = RangeCache::with_limits(CacheLimits {
            max_entries: config.max_range_entries,
            max_bytes: config.max_range_bytes,
        });
        let synthesize = config.synthesize_denial && profile.vendor.synthesizes_denial();
        Resolver {
            net,
            profile,
            config,
            policy: Policy::new(),
            cache,
            infra: InfraCache::new(),
            ranges,
            synthesize,
            generation: AtomicU64::new(1),
            ids: AtomicU16::new(1),
            srtt: SrttTable::new(),
        }
    }

    /// Attach a policy table (blocklists, filtering, forged answers).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// The vendor profile in use.
    pub fn profile(&self) -> &VendorProfile {
        &self.profile
    }

    /// The network this resolver queries.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The network by shared handle — [`crate::ResolutionPool::new`]
    /// needs an owning clone.
    pub fn network_shared(&self) -> Arc<Network> {
        Arc::clone(&self.net)
    }

    /// Flush caches (tests and scan shards). Bumps the cache
    /// generation so every worker's private L1 tier clears itself on
    /// its next resolution.
    pub fn flush(&self) {
        self.cache.clear();
        self.infra.clear();
        self.ranges.clear();
        self.srtt.clear();
        self.generation.fetch_add(1, Relaxed);
    }

    /// True when RFC 8198 synthesis is effective for this resolver:
    /// the config knob is on AND the vendor's gate agrees
    /// ([`crate::Vendor::synthesizes_denial`]).
    pub fn synthesis_active(&self) -> bool {
        self.synthesize
    }

    /// A frozen copy of the range tier's counters (hits/misses count
    /// synthesis probes; puts/evictions count interval retention).
    pub fn range_stats(&self) -> CacheStatsSnapshot {
        self.ranges.stats()
    }

    /// Freeze (or thaw) the range tier: frozen, it keeps answering
    /// synthesis probes but retains nothing new. Measurement phases use
    /// this to hold the tier's contents fixed regardless of probe
    /// order, keeping sweeps deterministic across concurrency levels.
    pub fn freeze_ranges(&self, frozen: bool) {
        self.ranges.freeze(frozen);
    }

    /// A frozen copy of the shared (L2) resolution-cache counters.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    /// A frozen copy of the infrastructure-cache counters.
    pub fn infra_stats(&self) -> InfraStatsSnapshot {
        self.infra.stats()
    }

    /// Eagerly drop every L2 entry whose stale window has lapsed at
    /// `now`; returns how many were dropped.
    pub fn purge_expired(&self, now: u32) -> u64 {
        self.cache.purge_expired(now)
    }

    /// Resolve one (name, type) with full recursion, validation, policy,
    /// caching, and EDE emission.
    ///
    /// When a trace sink is attached to the underlying network (see
    /// `Network::set_trace_sink`), the resolution is bracketed with
    /// `ResolutionStarted`/`ResolutionFinished` events and every cache
    /// probe, validation step, finding, and EDE emission is announced in
    /// between.
    ///
    /// This is the blocking shape: it drives the resolution task to
    /// completion on the calling thread via a private single-task event
    /// loop, producing exactly the event sequence the historical
    /// blocking engine produced. To hold many resolutions in flight on
    /// one thread, use [`resolve_on`](Self::resolve_on) with a
    /// [`crate::ResolutionPool`] instead.
    pub fn resolve(&self, qname: &Name, qtype: RrType) -> Resolution {
        run_local(&self.net, |handle| async move {
            self.resolve_with(&handle, qname, qtype, None).await
        })
    }

    /// [`resolve`](Self::resolve) with a caller-owned L1 tier probed
    /// before the shared cache. The caller (one scan worker, say) must
    /// use the same `l1` from one thread only — the type enforces it.
    pub fn resolve_l1(&self, qname: &Name, qtype: RrType, l1: &L1Cache) -> Resolution {
        run_local(&self.net, |handle| async move {
            self.resolve_with(&handle, qname, qtype, Some(l1)).await
        })
    }

    /// The pool shape of [`resolve`](Self::resolve): a `'static`
    /// resolution task for [`crate::ResolutionPool::spawn`]. The task
    /// keeps the resolver alive via the `Arc` and suspends on `handle`
    /// whenever it would block on the network.
    ///
    /// Semantics (policy, cache, validation, EDE emission) are
    /// identical to the blocking call; only the scheduling differs.
    pub fn resolve_on(
        self: &Arc<Self>,
        handle: TaskHandle,
        qname: Name,
        qtype: RrType,
    ) -> impl Future<Output = Resolution> + 'static {
        let this = Arc::clone(self);
        async move { this.resolve_with(&handle, &qname, qtype, None).await }
    }

    /// The pool shape with an L1 tier: all tasks spawned on one
    /// [`crate::ResolutionPool`] share the host thread, so they share
    /// one `Rc<L1Cache>` too ([`spawn`](crate::ResolutionPool::spawn)
    /// deliberately has no `Send` bound, which is what makes this
    /// legal — see `docs/CONCURRENCY.md`).
    pub fn resolve_on_l1(
        self: &Arc<Self>,
        handle: TaskHandle,
        qname: Name,
        qtype: RrType,
        l1: Rc<L1Cache>,
    ) -> impl Future<Output = Resolution> + 'static {
        let this = Arc::clone(self);
        async move { this.resolve_with(&handle, &qname, qtype, Some(&l1)).await }
    }

    /// The resolution pipeline itself, as a resumable task.
    async fn resolve_with(
        &self,
        handle: &TaskHandle,
        qname: &Name,
        qtype: RrType,
        l1: Option<&L1Cache>,
    ) -> Resolution {
        let now = self.net.clock().now_secs();
        let tracer = self.net.tracer();
        let started_ms = tracer.now_millis();
        // Counter-only sinks ignore qname strings; skip rendering them
        // (String::new() never allocates).
        let qd = |n: &Name| {
            if tracer.wants_query_detail() {
                n.to_string()
            } else {
                String::new()
            }
        };
        tracer.emit(TraceEvent::ResolutionStarted {
            qname: qd(qname),
            qtype: qtype.to_u16(),
        });

        // 1. Policy gate.
        if let Some(action) = self.policy.lookup(qname) {
            let resolution = self.policy_resolution(qname, action.clone());
            self.trace_finish(&tracer, started_ms, &resolution);
            return resolution;
        }

        // 2. Cache probe: the worker's private L1 tier first (fresh
        // entries only, zero synchronization), then the shared L2.
        // Either hit emits the same `CacheProbe { Hit }` event and
        // materializes the same resolution, so the tiering is invisible
        // to traces and reports.
        if self.config.enable_cache {
            if let Some(l1) = l1 {
                l1.sync_generation(self.generation.load(Relaxed));
                if let Some(data) = l1.get_answer(qname, qtype, now) {
                    tracer.emit(TraceEvent::CacheProbe {
                        qname: qd(qname),
                        qtype: qtype.to_u16(),
                        outcome: CacheOutcome::Hit,
                    });
                    let resolution = self.materialize_hit(&tracer, &data);
                    self.trace_finish(&tracer, started_ms, &resolution);
                    return resolution;
                }
            }
            if let CacheHit::Fresh(data, stored_at, ttl) = self.cache.get(qname, qtype, now) {
                tracer.emit(TraceEvent::CacheProbe {
                    qname: qd(qname),
                    qtype: qtype.to_u16(),
                    outcome: CacheOutcome::Hit,
                });
                // Mirror the hit into the L1 with the L2 entry's exact
                // freshness window, so the copy can never outlive the
                // original's TTL.
                if let Some(l1) = l1 {
                    l1.put_answer(qname, qtype, Arc::clone(&data), stored_at, ttl);
                }
                let resolution = self.materialize_hit(&tracer, &data);
                self.trace_finish(&tracer, started_ms, &resolution);
                return resolution;
            }
            tracer.emit(TraceEvent::CacheProbe {
                qname: qd(qname),
                qtype: qtype.to_u16(),
                outcome: CacheOutcome::Miss,
            });
        }

        // 3. Live resolution.
        let mut diag = Diagnosis::with_tracer(tracer.clone());
        let engine = Engine {
            net: &self.net,
            config: &self.config,
            caps: &self.profile.caps,
            infra: &self.infra,
            l1,
            ids: &self.ids,
            srtt: &self.srtt,
            handle,
            ranges: if self.synthesize {
                Some(&self.ranges)
            } else {
                None
            },
        };
        let outcome = engine.resolve(qname, qtype, &mut diag, 0).await;

        // 4. Serve-stale fallback (RFC 8767) on failure.
        if outcome.rcode == Rcode::ServFail && self.config.serve_stale && self.config.enable_cache {
            if let Some(stale) = self.cache.get_stale_success(qname, qtype, now) {
                tracer.emit(TraceEvent::CacheProbe {
                    qname: qd(qname),
                    qtype: qtype.to_u16(),
                    outcome: CacheOutcome::StaleServed,
                });
                diag.add(Finding::ServedStale {
                    nxdomain: stale.rcode == Rcode::NxDomain,
                });
                let ede = self.profile.emit(&diag);
                let resolution = Resolution {
                    rcode: stale.rcode,
                    answers: stale.answers.clone(),
                    authentic_data: false,
                    validation: diag.validation,
                    ede,
                    diagnosis: diag,
                };
                self.trace_finish(&tracer, started_ms, &resolution);
                return resolution;
            }
        }

        // 5. Cache the result.
        if self.config.enable_cache {
            let is_failure = outcome.rcode == Rcode::ServFail;
            let ttl = if is_failure {
                self.config.failure_ttl_secs
            } else {
                outcome.answers.iter().map(|r| r.ttl).min().unwrap_or(300)
            };
            // Cached diagnoses must not keep announcing to this
            // resolution's sink when replayed later: strip the tracer.
            // Names are detached so the long-lived entry doesn't pin
            // this resolution's transient response/zone allocations
            // (cache entries used to hold the whole working set alive
            // through shared `Arc`s, fragmenting the heap at scan
            // scale).
            let mut stored = diag.clone();
            stored.set_tracer(Tracer::disabled());
            stored.detach_names();
            let put = self.cache.put(
                qname,
                qtype,
                CachedResolution {
                    rcode: outcome.rcode,
                    answers: outcome.answers.iter().map(|r| r.detached()).collect(),
                    diagnosis: stored,
                    is_failure,
                },
                ttl,
                now,
            );
            if put.removed_any() {
                tracer.emit(TraceEvent::CacheEvicted {
                    expired: put.expired,
                    evicted: put.evicted,
                    occupancy: put.occupancy,
                });
            }
        }

        let ede = self.profile.emit(&diag);
        self.maybe_report(qname, qtype, &ede);
        let resolution = Resolution {
            rcode: outcome.rcode,
            answers: outcome.answers,
            authentic_data: diag.validation == ValidationState::Secure && diag.zone_signed,
            validation: diag.validation,
            ede,
            diagnosis: diag,
        };
        self.trace_finish(&tracer, started_ms, &resolution);
        resolution
    }

    /// Turn a cached entry (from either tier) into a full
    /// [`Resolution`]. The hit handed back a shared `Arc`; the clones
    /// below are this resolution's own copies, taken outside any cache
    /// lock.
    fn materialize_hit(&self, tracer: &Tracer, data: &CachedResolution) -> Resolution {
        let mut diag = data.diagnosis.clone();
        diag.set_tracer(tracer.clone());
        if data.is_failure {
            diag.add(Finding::CachedError);
        }
        let ede = self.profile.emit(&diag);
        Resolution {
            rcode: data.rcode,
            answers: data.answers.clone(),
            authentic_data: diag.validation == ValidationState::Secure && diag.zone_signed,
            validation: diag.validation,
            ede,
            diagnosis: diag,
        }
    }

    /// Announce the EDE entries and the `ResolutionFinished` bracket.
    fn trace_finish(&self, tracer: &Tracer, started_ms: Option<u64>, res: &Resolution) {
        if !tracer.enabled() {
            return;
        }
        for entry in &res.ede {
            tracer.emit(TraceEvent::EdeEmitted {
                vendor: self.profile.vendor.name().to_string(),
                code: entry.code.to_u16(),
                extra_text: entry.extra_text.clone(),
            });
        }
        let now_ms = tracer.now_millis().unwrap_or(0);
        tracer.emit(TraceEvent::ResolutionFinished {
            rcode: res.rcode.to_u16(),
            ede_count: res.ede.len(),
            duration_ms: now_ms.saturating_sub(started_ms.unwrap_or(now_ms)),
        });
    }

    /// RFC 9567: fire an error report for the first EDE entry of a
    /// failed resolution, if an agent is configured. Report queries are
    /// fire-and-forget (the answer only matters for caching) and are
    /// never generated for names under the agent itself.
    fn maybe_report(&self, qname: &Name, qtype: RrType, ede: &[EdeEntry]) {
        let Some((agent, agent_addr)) = &self.config.error_reporting else {
            return;
        };
        let Some(first) = ede.first() else {
            return;
        };
        if qname.is_subdomain_of(agent) {
            return; // no reports about reporting
        }
        let Ok(report_name) =
            crate::reporting::report_qname(qname, qtype, first.code.to_u16(), agent)
        else {
            return;
        };
        let query = Message::iterative_query(
            self.ids.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            report_name,
            RrType::Txt,
        );
        let _ = self.net.query(*agent_addr, self.config.source_addr, &query);
    }

    /// Convenience: resolve an A record by dotted name.
    pub fn resolve_a(&self, name: &str) -> Resolution {
        let qname = Name::parse(name).expect("caller passes a valid name");
        self.resolve(&qname, RrType::A)
    }

    fn policy_resolution(&self, qname: &Name, action: PolicyAction) -> Resolution {
        let mut diag = Diagnosis::new();
        diag.degrade(ValidationState::Indeterminate);
        let entry = EdeEntry::bare(action.ede_code());
        match action {
            PolicyAction::Forge(addr) => Resolution {
                rcode: Rcode::NoError,
                answers: vec![Policy::forged_record(qname, addr)],
                ede: vec![entry],
                authentic_data: false,
                validation: diag.validation,
                diagnosis: diag,
            },
            _ => Resolution {
                rcode: Rcode::NxDomain,
                answers: Vec::new(),
                ede: vec![entry],
                authentic_data: false,
                validation: diag.validation,
                diagnosis: diag,
            },
        }
    }
}
