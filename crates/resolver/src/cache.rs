//! Positive, negative, and failure caching with RFC 8767 serve-stale.
//!
//! The cache is shared across a scan's worker threads (the paper notes
//! Cloudflare answered part of their load from cache), so its layout is
//! dictated by contention: a single `Mutex<HashMap>` would serialize
//! every worker on every probe. Instead the store is **sharded** — a
//! deterministic FNV-1a hash of `(qname, qtype)` picks one of
//! [`SHARD_COUNT`] independently-locked shards, so workers probing
//! different names almost never touch the same lock. The same
//! precomputed hash doubles as the lookup key inside the shard, which
//! means a probe never clones the queried [`Name`].
//!
//! Entries are stored as `Arc<CachedResolution>` and hits hand the `Arc`
//! back: no answer records or diagnosis findings are ever deep-cloned
//! under a shard lock. Entries store the *diagnosis* alongside the
//! answer: replaying a cached failure must replay its findings so the
//! profile can emit the original codes next to *Cached Error (13)*.

use crate::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, Record, RrType};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards. A power of two so shard
/// selection is a mask; 16 is comfortably above any worker count the
/// scanner uses (worker pools cap at 16), keeping the expected number
/// of workers per shard lock at ~1.
pub const SHARD_COUNT: usize = 16;

/// What a completed resolution left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResolution {
    /// Final RCODE.
    pub rcode: Rcode,
    /// Answer records (empty for negative/failure entries).
    pub answers: Vec<Record>,
    /// The diagnosis attached to the resolution.
    pub diagnosis: Diagnosis,
    /// True when this entry is a resolution *failure* (SERVFAIL) — a hit
    /// on it is a *Cached Error*.
    pub is_failure: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Owned key material, kept for collision resolution only — lookups
    /// compare against it, they never clone it.
    qname: Name,
    qtype: u16,
    data: Arc<CachedResolution>,
    stored_at: u32,
    ttl: u32,
}

/// Result of a cache probe. Hits share the stored entry (`Arc`): the
/// caller clones individual fields only if and when it needs ownership,
/// never under a cache lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheHit {
    /// Within TTL.
    Fresh(Arc<CachedResolution>),
    /// Expired but inside the serve-stale window.
    Stale(Arc<CachedResolution>),
    /// Nothing usable.
    Miss,
}

/// One lockable slice of the store. Buckets are keyed by the
/// precomputed `(qname, qtype)` hash; the tiny per-bucket vector
/// resolves the (rare) 64-bit collisions by comparing the stored key.
#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Vec<Entry>>,
}

/// The resolver cache.
pub struct Cache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    stale_window_secs: u32,
}

/// Deterministic hash of a probe key. The qname's label bytes are
/// hashed in place ([`Name::shard_hash`]) — no wire-form allocation,
/// no clone — then the qtype is mixed in.
fn probe_hash(qname: &Name, qtype: u16) -> u64 {
    let mut h = qname.shard_hash();
    h ^= u64::from(qtype);
    h = h.wrapping_mul(0x100000001b3);
    h
}

impl Cache {
    /// An empty cache with the given serve-stale window.
    pub fn new(stale_window_secs: u32) -> Self {
        Cache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            stale_window_secs,
        }
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) & (SHARD_COUNT - 1)]
    }

    /// Probe for `(qname, qtype)` at time `now`.
    ///
    /// Hot-path guarantees: one shard lock, zero `Name` clones, zero
    /// `CachedResolution` deep clones — a hit is an `Arc` bump.
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> CacheHit {
        let hash = probe_hash(qname, qtype.to_u16());
        let shard = self.shard_for(hash).lock().expect("no poisoning");
        let Some(entry) = shard
            .buckets
            .get(&hash)
            .and_then(|b| find(b, qname, qtype.to_u16()))
        else {
            return CacheHit::Miss;
        };
        let age = now.saturating_sub(entry.stored_at);
        if age <= entry.ttl {
            CacheHit::Fresh(Arc::clone(&entry.data))
        } else if age <= entry.ttl.saturating_add(self.stale_window_secs) {
            CacheHit::Stale(Arc::clone(&entry.data))
        } else {
            CacheHit::Miss
        }
    }

    /// Probe only for a *stale-servable successful* entry — used when a
    /// live resolution just failed and RFC 8767 allows falling back.
    pub fn get_stale_success(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<Arc<CachedResolution>> {
        match self.get(qname, qtype, now) {
            CacheHit::Stale(data) | CacheHit::Fresh(data) if !data.is_failure => Some(data),
            _ => None,
        }
    }

    /// Store a resolution with the given TTL.
    pub fn put(&self, qname: &Name, qtype: RrType, data: CachedResolution, ttl: u32, now: u32) {
        let hash = probe_hash(qname, qtype.to_u16());
        // The Arc is built outside the lock; the lock only covers the
        // bucket splice.
        let data = Arc::new(data);
        let mut shard = self.shard_for(hash).lock().expect("no poisoning");
        let bucket = shard.buckets.entry(hash).or_default();
        let existing = bucket
            .iter_mut()
            .find(|e| e.qtype == qtype.to_u16() && e.qname == *qname);
        // Never let a failure entry overwrite a still-stale-servable
        // success — the success is what serve-stale needs later. The
        // check and the insert happen under the same shard lock, so a
        // concurrent successful put cannot be lost in between.
        if data.is_failure {
            if let Some(e) = &existing {
                if !e.data.is_failure
                    && now.saturating_sub(e.stored_at)
                        <= e.ttl.saturating_add(self.stale_window_secs)
                {
                    return;
                }
            }
        }
        match existing {
            Some(e) => {
                e.data = data;
                e.stored_at = now;
                e.ttl = ttl;
            }
            // Entries outlive the resolution that created them: detach
            // the key so it doesn't pin the caller's allocations.
            None => bucket.push(Entry {
                qname: qname.detached(),
                qtype: qtype.to_u16(),
                data,
                stored_at: now,
                ttl,
            }),
        }
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("no poisoning")
                    .buckets
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (tests).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("no poisoning").buckets.clear();
        }
    }
}

fn find<'a>(bucket: &'a [Entry], qname: &Name, qtype: u16) -> Option<&'a Entry> {
    bucket
        .iter()
        .find(|e| e.qtype == qtype && e.qname == *qname)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn success() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::NoError,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: false,
        }
    }

    fn failure() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::ServFail,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: true,
        }
    }

    #[test]
    fn fresh_then_stale_then_miss() {
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1030),
            CacheHit::Fresh(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1061),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1160),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1161),
            CacheHit::Miss
        ));
    }

    #[test]
    fn failure_does_not_clobber_stale_success() {
        let c = Cache::new(1000);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        // Success has expired (stale), a failure comes in.
        c.put(&n("a.com"), RrType::A, failure(), 30, 1100);
        // The stale success must still be retrievable for serve-stale.
        assert!(c.get_stale_success(&n("a.com"), RrType::A, 1100).is_some());
    }

    #[test]
    fn failure_cached_when_no_success_exists() {
        let c = Cache::new(100);
        c.put(&n("b.com"), RrType::A, failure(), 30, 1000);
        match c.get(&n("b.com"), RrType::A, 1010) {
            CacheHit::Fresh(data) => assert!(data.is_failure),
            other => panic!("expected fresh failure, got {other:?}"),
        }
        assert!(c.get_stale_success(&n("b.com"), RrType::A, 1010).is_none());
    }

    #[test]
    fn types_are_separate() {
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::Aaaa, 1000),
            CacheHit::Miss
        ));
    }

    #[test]
    fn hits_share_one_allocation() {
        // The Arc-returning API is what enforces "zero deep clones on
        // the hit path": two probes of the same entry must hand back the
        // same allocation.
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        let (CacheHit::Fresh(first), CacheHit::Fresh(second)) = (
            c.get(&n("a.com"), RrType::A, 1010),
            c.get(&n("a.com"), RrType::A, 1020),
        ) else {
            panic!("expected two fresh hits");
        };
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn entries_spread_and_survive_across_shards() {
        // Many names land in many shards; every one must stay
        // retrievable (shard selection and bucket lookup must agree).
        let c = Cache::new(100);
        for i in 0..200 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 0);
        }
        assert_eq!(c.len(), 200);
        for i in 0..200 {
            assert!(
                matches!(
                    c.get(&n(&format!("d{i}.example")), RrType::A, 10),
                    CacheHit::Fresh(_)
                ),
                "d{i}.example lost"
            );
        }
        c.clear();
        assert!(c.is_empty());
    }
}
