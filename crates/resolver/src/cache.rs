//! Positive, negative, and failure caching with RFC 8767 serve-stale.
//!
//! The cache is shared across a scan's worker threads (the paper notes
//! Cloudflare answered part of their load from cache), so it is a
//! mutex-locked map. Entries store the *diagnosis* alongside the
//! answer: replaying a cached failure must replay its findings so the
//! profile can emit the original codes next to *Cached Error (13)*.

use crate::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, Record, RrType};
use std::collections::HashMap;
use std::sync::Mutex;

/// What a completed resolution left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResolution {
    /// Final RCODE.
    pub rcode: Rcode,
    /// Answer records (empty for negative/failure entries).
    pub answers: Vec<Record>,
    /// The diagnosis attached to the resolution.
    pub diagnosis: Diagnosis,
    /// True when this entry is a resolution *failure* (SERVFAIL) — a hit
    /// on it is a *Cached Error*.
    pub is_failure: bool,
}

#[derive(Debug, Clone)]
struct Entry {
    data: CachedResolution,
    stored_at: u32,
    ttl: u32,
}

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheHit {
    /// Within TTL.
    Fresh(CachedResolution),
    /// Expired but inside the serve-stale window.
    Stale(CachedResolution),
    /// Nothing usable.
    Miss,
}

/// The resolver cache.
pub struct Cache {
    entries: Mutex<HashMap<(Name, u16), Entry>>,
    stale_window_secs: u32,
}

impl Cache {
    /// An empty cache with the given serve-stale window.
    pub fn new(stale_window_secs: u32) -> Self {
        Cache {
            entries: Mutex::new(HashMap::new()),
            stale_window_secs,
        }
    }

    /// Probe for `(qname, qtype)` at time `now`.
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> CacheHit {
        let entries = self.entries.lock().expect("no poisoning");
        let Some(entry) = entries.get(&(qname.clone(), qtype.to_u16())) else {
            return CacheHit::Miss;
        };
        let age = now.saturating_sub(entry.stored_at);
        if age <= entry.ttl {
            CacheHit::Fresh(entry.data.clone())
        } else if age <= entry.ttl.saturating_add(self.stale_window_secs) {
            CacheHit::Stale(entry.data.clone())
        } else {
            CacheHit::Miss
        }
    }

    /// Probe only for a *stale-servable successful* entry — used when a
    /// live resolution just failed and RFC 8767 allows falling back.
    pub fn get_stale_success(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<CachedResolution> {
        match self.get(qname, qtype, now) {
            CacheHit::Stale(data) | CacheHit::Fresh(data) if !data.is_failure => Some(data),
            _ => None,
        }
    }

    /// Store a resolution with the given TTL.
    pub fn put(&self, qname: Name, qtype: RrType, data: CachedResolution, ttl: u32, now: u32) {
        let mut entries = self.entries.lock().expect("no poisoning");
        let key = (qname, qtype.to_u16());
        // Never let a failure entry overwrite a still-stale-servable
        // success — the success is what serve-stale needs later.
        if data.is_failure {
            if let Some(existing) = entries.get(&key) {
                if !existing.data.is_failure
                    && now.saturating_sub(existing.stored_at)
                        <= existing.ttl.saturating_add(self.stale_window_secs)
                {
                    return;
                }
            }
        }
        entries.insert(
            key,
            Entry {
                data,
                stored_at: now,
                ttl,
            },
        );
    }

    /// Number of live entries (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("no poisoning").len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (tests).
    pub fn clear(&self) {
        self.entries.lock().expect("no poisoning").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn success() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::NoError,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: false,
        }
    }

    fn failure() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::ServFail,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: true,
        }
    }

    #[test]
    fn fresh_then_stale_then_miss() {
        let c = Cache::new(100);
        c.put(n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1030),
            CacheHit::Fresh(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1061),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1160),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1161),
            CacheHit::Miss
        ));
    }

    #[test]
    fn failure_does_not_clobber_stale_success() {
        let c = Cache::new(1000);
        c.put(n("a.com"), RrType::A, success(), 60, 1000);
        // Success has expired (stale), a failure comes in.
        c.put(n("a.com"), RrType::A, failure(), 30, 1100);
        // The stale success must still be retrievable for serve-stale.
        assert!(c.get_stale_success(&n("a.com"), RrType::A, 1100).is_some());
    }

    #[test]
    fn failure_cached_when_no_success_exists() {
        let c = Cache::new(100);
        c.put(n("b.com"), RrType::A, failure(), 30, 1000);
        match c.get(&n("b.com"), RrType::A, 1010) {
            CacheHit::Fresh(data) => assert!(data.is_failure),
            other => panic!("expected fresh failure, got {other:?}"),
        }
        assert!(c.get_stale_success(&n("b.com"), RrType::A, 1010).is_none());
    }

    #[test]
    fn types_are_separate() {
        let c = Cache::new(100);
        c.put(n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::Aaaa, 1000),
            CacheHit::Miss
        ));
    }
}
