//! The tiered resolution cache.
//!
//! Four tiers serve the scan's access pattern:
//!
//! * **L1** ([`l1::L1Cache`]) — a small per-worker map with zero
//!   synchronization (no `Mutex`, no atomics). Each scan worker owns
//!   one and probes it before the shared store, so the extremely hot
//!   entries (TLD referrals, validated zone keys, repeat-qname
//!   revisits) are served without touching a lock.
//! * **L2** ([`Cache`], this module) — the shared sharded store:
//!   positive, negative, and failure caching with RFC 8767
//!   serve-stale, now with a TTL wheel driving real expiry and an
//!   optional entry/byte budget enforced by a CLOCK (second-chance)
//!   sweep.
//! * **Infrastructure** ([`infra::InfraCache`]) — referral sets and
//!   validated zone keys for the iterative walk, keyed by zone.
//! * **Ranges** ([`ranges::RangeCache`]) — validated NSEC/NSEC3 denial
//!   intervals, keyed by zone and ordered by owner (hash), from which
//!   NXDOMAIN/NODATA answers are synthesized for *covered* names
//!   without asking the authority (RFC 8198).
//!
//! # The shared store
//!
//! The L2 cache is shared across a scan's worker threads (the paper
//! notes Cloudflare answered part of their load from cache), so its
//! layout is dictated by contention: a single `Mutex<HashMap>` would
//! serialize every worker on every probe. Instead the store is
//! **sharded** — a deterministic FNV-1a hash of `(qname, qtype)` picks
//! one of [`SHARD_COUNT`] independently-locked shards, so workers
//! probing different names almost never touch the same lock. The same
//! precomputed hash doubles as the lookup key inside the shard, which
//! means a probe never clones the queried [`Name`].
//!
//! Entries are stored as `Arc<CachedResolution>` and hits hand the `Arc`
//! back: no answer records or diagnosis findings are ever deep-cloned
//! under a shard lock. Entries store the *diagnosis* alongside the
//! answer: replaying a cached failure must replay its findings so the
//! profile can emit the original codes next to *Cached Error (13)*.
//!
//! # Expiry: the TTL wheel
//!
//! Every entry has a hard deadline — `stored_at + ttl + stale window` —
//! past which it can never be served again (not even stale). Each shard
//! buckets those deadlines on a coarse clock ([`WHEEL_BUCKET_SECS`]-
//! second buckets in a `BTreeMap`); every store operation first drains
//! the buckets that lie wholly in the past, physically removing dead
//! entries. Before the wheel, `len()` counted dead entries forever and
//! memory only ever grew.
//!
//! Overwrites are handled lazily: each entry carries a shard-scoped
//! sequence number, and a wheel (or CLOCK ring) slot whose sequence no
//! longer matches the stored entry is simply skipped.
//!
//! # Budget: the CLOCK sweep
//!
//! [`CacheLimits`] optionally bounds the store by entry count and/or
//! approximate heap bytes. The bound is **global and hard**: after any
//! `put` returns, the whole store holds at most `max_entries` entries
//! (and at most `max_bytes` estimated bytes). Enforcement is local —
//! the inserting shard evicts from its own insertion ring, giving
//! recently-hit entries one second chance (CLOCK) before they go. A
//! budget eviction may remove a perfectly live entry, so scan results
//! are only guaranteed bit-identical when the budget never actually
//! fires; the bounded-memory configurations trade exactness for a
//! working-set bound, as a serving front end must.

pub mod infra;
pub mod l1;
pub mod ranges;

use crate::diagnosis::Diagnosis;
use ede_wire::{Name, Rcode, Record, RrType};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards. A power of two so shard
/// selection is a mask; 16 is comfortably above any worker count the
/// scanner uses (worker pools cap at 16), keeping the expected number
/// of workers per shard lock at ~1.
pub const SHARD_COUNT: usize = 16;

/// Width of one TTL-wheel bucket, seconds (as a shift: 64 s). Coarse on
/// purpose: the wheel only needs to find *dead* entries cheaply, the
/// exact freshness test still runs per probe.
const WHEEL_SHIFT: u32 = 6;

/// Width of one TTL-wheel bucket in seconds (documentation constant;
/// the code shifts by `WHEEL_SHIFT`).
pub const WHEEL_BUCKET_SECS: u32 = 1 << WHEEL_SHIFT;

/// What a completed resolution left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedResolution {
    /// Final RCODE.
    pub rcode: Rcode,
    /// Answer records (empty for negative/failure entries).
    pub answers: Vec<Record>,
    /// The diagnosis attached to the resolution.
    pub diagnosis: Diagnosis,
    /// True when this entry is a resolution *failure* (SERVFAIL) — a hit
    /// on it is a *Cached Error*.
    pub is_failure: bool,
}

/// Entry/byte budget for the shared store. `None` means unbounded (the
/// historical behaviour); byte accounting is an explicit estimate, see
/// `entry_cost`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum stored entries across all shards.
    pub max_entries: Option<usize>,
    /// Maximum estimated heap bytes across all shards.
    pub max_bytes: Option<usize>,
}

impl CacheLimits {
    /// True when neither bound is set.
    pub fn unbounded(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// What one store operation did to the cache, for the caller's
/// telemetry (the resolver turns a non-zero outcome into a
/// `CacheEvicted` trace event).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PutOutcome {
    /// Entries removed because their deadline (TTL + stale window) had
    /// lapsed.
    pub expired: u64,
    /// Entries removed by the budget's CLOCK sweep.
    pub evicted: u64,
    /// Stored entries remaining across the whole cache afterwards.
    pub occupancy: u64,
}

impl PutOutcome {
    /// True when the operation removed anything.
    pub fn removed_any(&self) -> bool {
        self.expired + self.evicted > 0
    }
}

/// A frozen copy of the store's internal counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Fresh probes answered.
    pub hits: u64,
    /// Probes that found nothing servable.
    pub misses: u64,
    /// Stale (RFC 8767) entries handed out by
    /// [`Cache::get_stale_success`].
    pub stale_served: u64,
    /// Store operations.
    pub puts: u64,
    /// Entries removed by the TTL wheel.
    pub expired: u64,
    /// Entries removed by the budget's CLOCK sweep.
    pub evicted: u64,
    /// Stored entries right now (including expired-but-unpurged ones;
    /// the wheel removes those on the next store to their shard).
    pub occupancy: u64,
    /// Peak of `occupancy` over the store's lifetime.
    pub occupancy_peak: u64,
    /// Estimated heap bytes stored right now.
    pub bytes: u64,
}

impl CacheStatsSnapshot {
    /// Hit ratio in `[0, 1]` over fresh hits + misses (stale serves
    /// count as hits — the client got an answer from cache).
    pub fn hit_ratio(&self) -> f64 {
        let hits = self.hits + self.stale_served;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    /// Owned key material, kept for collision resolution only — lookups
    /// compare against it, they never clone it.
    qname: Name,
    qtype: u16,
    data: Arc<CachedResolution>,
    stored_at: u32,
    ttl: u32,
    /// Shard-scoped sequence number; wheel and ring slots referencing a
    /// superseded sequence are skipped (lazy deletion).
    seq: u64,
    /// Estimated heap bytes, fixed at store time.
    cost: u64,
    /// CLOCK reference bit: set on every hit, cleared (once) by the
    /// sweep before the entry becomes evictable. `Cell` because hits
    /// hold only a shared borrow of the shard's interior.
    referenced: Cell<bool>,
}

impl Entry {
    /// Hard deadline: past this the entry can never be served again.
    fn deadline(&self, stale_window_secs: u32) -> u32 {
        self.stored_at
            .saturating_add(self.ttl)
            .saturating_add(stale_window_secs)
    }
}

/// Result of a cache probe. Hits share the stored entry (`Arc`): the
/// caller clones individual fields only if and when it needs ownership,
/// never under a cache lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheHit {
    /// Within TTL. Carries `(data, stored_at, ttl)` so an L1 tier can
    /// mirror the entry's exact freshness window (coherence rule: an L1
    /// copy must never outlive the L2 entry's own window).
    Fresh(Arc<CachedResolution>, u32, u32),
    /// Expired but inside the serve-stale window.
    Stale(Arc<CachedResolution>),
    /// Nothing usable.
    Miss,
}

/// One lockable slice of the store. Buckets are keyed by the
/// precomputed `(qname, qtype)` hash; the tiny per-bucket vector
/// resolves the (rare) 64-bit collisions by comparing the stored key.
#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Vec<Entry>>,
    /// TTL wheel: coarse deadline bucket → `(hash, seq)` slots.
    wheel: BTreeMap<u32, Vec<(u64, u64)>>,
    /// Insertion ring for the CLOCK sweep: `(hash, seq)` in store order.
    ring: VecDeque<(u64, u64)>,
    next_seq: u64,
}

impl Shard {
    /// Remove the entry addressed by `(hash, seq)`, returning its cost.
    /// A stale sequence (entry overwritten or already removed) is a
    /// no-op.
    fn remove_slot(&mut self, hash: u64, seq: u64) -> Option<u64> {
        let bucket = self.buckets.get_mut(&hash)?;
        let idx = bucket.iter().position(|e| e.seq == seq)?;
        let cost = bucket.swap_remove(idx).cost;
        if bucket.is_empty() {
            self.buckets.remove(&hash);
        }
        Some(cost)
    }

    /// Drain every wheel bucket that lies wholly before `now`,
    /// physically removing the (certainly dead) entries it references.
    /// Returns `(removed, bytes_freed)`.
    fn advance_wheel(&mut self, now: u32) -> (u64, u64) {
        let cutoff = now >> WHEEL_SHIFT;
        if self
            .wheel
            .first_key_value()
            .is_none_or(|(&b, _)| b >= cutoff)
        {
            return (0, 0);
        }
        let live = self.wheel.split_off(&cutoff);
        let dead = std::mem::replace(&mut self.wheel, live);
        let mut removed = 0u64;
        let mut freed = 0u64;
        for (_, slots) in dead {
            for (hash, seq) in slots {
                if let Some(cost) = self.remove_slot(hash, seq) {
                    removed += 1;
                    freed += cost;
                }
            }
        }
        (removed, freed)
    }
}

/// Live side of [`CacheStatsSnapshot`]: lock-free atomics bumped
/// outside the shard locks wherever possible.
#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stale_served: AtomicU64,
    puts: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    occupancy_peak: AtomicU64,
}

/// The shared (L2) resolver cache.
pub struct Cache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    stale_window_secs: u32,
    limits: CacheLimits,
    /// Stored entries across all shards (including expired-but-unpurged
    /// ones). Global so the budget is a whole-store bound even though
    /// eviction runs in the inserting shard.
    occupancy: AtomicU64,
    /// Estimated stored bytes across all shards.
    bytes: AtomicU64,
    stats: CacheStats,
}

/// Deterministic hash of a probe key. The qname's label bytes are
/// hashed in place ([`Name::shard_hash`]) — no wire-form allocation,
/// no clone — then the qtype is mixed in.
pub(crate) fn probe_hash(qname: &Name, qtype: u16) -> u64 {
    let mut h = qname.shard_hash();
    h ^= u64::from(qtype);
    h = h.wrapping_mul(0x100000001b3);
    h
}

/// Estimated heap bytes of one stored entry. An explicit, documented
/// approximation (names, records, findings and events are counted at a
/// flat per-item rate); the byte budget bounds this estimate, not
/// allocator truth.
fn entry_cost(qname: &Name, data: &CachedResolution) -> u64 {
    let base = 96u64;
    let name = 16 * qname.label_count() as u64;
    let answers = 96 * data.answers.len() as u64;
    let findings = 64 * data.diagnosis.findings.len() as u64;
    let events = 96 * data.diagnosis.ns_events.len() as u64;
    base + name + answers + findings + events
}

impl Cache {
    /// An empty, unbounded cache with the given serve-stale window.
    pub fn new(stale_window_secs: u32) -> Self {
        Cache::with_limits(stale_window_secs, CacheLimits::default())
    }

    /// An empty cache with the given serve-stale window and budget.
    pub fn with_limits(stale_window_secs: u32, limits: CacheLimits) -> Self {
        Cache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            stale_window_secs,
            limits,
            occupancy: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            stats: CacheStats::default(),
        }
    }

    /// The serve-stale window this store was built with.
    pub fn stale_window_secs(&self) -> u32 {
        self.stale_window_secs
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) & (SHARD_COUNT - 1)]
    }

    /// Probe for `(qname, qtype)` at time `now`.
    ///
    /// Hot-path guarantees: one shard lock, zero `Name` clones, zero
    /// `CachedResolution` deep clones — a hit is an `Arc` bump.
    pub fn get(&self, qname: &Name, qtype: RrType, now: u32) -> CacheHit {
        let hit = self.get_inner(qname, qtype, now);
        match &hit {
            CacheHit::Fresh(..) => self.stats.hits.fetch_add(1, Relaxed),
            // A stale entry is only *served* through `get_stale_success`;
            // a plain probe that finds one proceeds to live resolution,
            // which is a miss from the client's point of view.
            CacheHit::Stale(_) | CacheHit::Miss => self.stats.misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn get_inner(&self, qname: &Name, qtype: RrType, now: u32) -> CacheHit {
        let hash = probe_hash(qname, qtype.to_u16());
        let shard = self.shard_for(hash).lock().expect("no poisoning");
        let Some(entry) = shard
            .buckets
            .get(&hash)
            .and_then(|b| find(b, qname, qtype.to_u16()))
        else {
            return CacheHit::Miss;
        };
        let age = now.saturating_sub(entry.stored_at);
        if age <= entry.ttl {
            entry.referenced.set(true);
            CacheHit::Fresh(Arc::clone(&entry.data), entry.stored_at, entry.ttl)
        } else if age <= entry.ttl.saturating_add(self.stale_window_secs) {
            entry.referenced.set(true);
            CacheHit::Stale(Arc::clone(&entry.data))
        } else {
            CacheHit::Miss
        }
    }

    /// Probe only for a *stale-servable successful* entry — used when a
    /// live resolution just failed and RFC 8767 allows falling back.
    pub fn get_stale_success(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<Arc<CachedResolution>> {
        match self.get_inner(qname, qtype, now) {
            CacheHit::Stale(data) | CacheHit::Fresh(data, ..) if !data.is_failure => {
                self.stats.stale_served.fetch_add(1, Relaxed);
                Some(data)
            }
            _ => None,
        }
    }

    /// Store a resolution with the given TTL. Returns what the store
    /// removed along the way: TTL-wheel expiries for this shard, plus
    /// any CLOCK evictions the budget forced.
    pub fn put(
        &self,
        qname: &Name,
        qtype: RrType,
        data: CachedResolution,
        ttl: u32,
        now: u32,
    ) -> PutOutcome {
        self.stats.puts.fetch_add(1, Relaxed);
        let hash = probe_hash(qname, qtype.to_u16());
        let cost = entry_cost(qname, &data);
        // The Arc is built outside the lock; the lock only covers the
        // bucket splice.
        let data = Arc::new(data);
        let mut outcome = PutOutcome::default();
        let mut shard = self.shard_for(hash).lock().expect("no poisoning");

        // 1. Turn the wheel: drop everything in this shard whose
        //    deadline has certainly passed.
        let (expired, freed) = shard.advance_wheel(now);
        if expired > 0 {
            outcome.expired = expired;
            self.occupancy.fetch_sub(expired, Relaxed);
            self.bytes.fetch_sub(freed, Relaxed);
            self.stats.expired.fetch_add(expired, Relaxed);
        }

        // 2. Splice the entry in (or refuse: a failure never clobbers a
        //    still-stale-servable success — the success is what
        //    serve-stale needs later; check and insert happen under the
        //    same shard lock, so a concurrent successful put cannot be
        //    lost in between).
        let seq = shard.next_seq;
        shard.next_seq += 1;
        let deadline = now
            .saturating_add(ttl)
            .saturating_add(self.stale_window_secs);
        let bucket = shard.buckets.entry(hash).or_default();
        let existing = bucket
            .iter_mut()
            .find(|e| e.qtype == qtype.to_u16() && e.qname == *qname);
        if data.is_failure {
            if let Some(e) = &existing {
                if !e.data.is_failure
                    && now.saturating_sub(e.stored_at)
                        <= e.ttl.saturating_add(self.stale_window_secs)
                {
                    outcome.occupancy = self.occupancy.load(Relaxed);
                    return outcome;
                }
            }
        }
        match existing {
            Some(e) => {
                // Overwrite in place: the old wheel/ring slots keep the
                // superseded sequence and will be skipped lazily.
                let old_cost = e.cost;
                e.data = data;
                e.stored_at = now;
                e.ttl = ttl;
                e.seq = seq;
                e.cost = cost;
                e.referenced.set(true);
                self.bytes.fetch_add(cost, Relaxed);
                self.bytes.fetch_sub(old_cost, Relaxed);
            }
            // Entries outlive the resolution that created them: detach
            // the key so it doesn't pin the caller's allocations.
            None => {
                bucket.push(Entry {
                    qname: qname.detached(),
                    qtype: qtype.to_u16(),
                    data,
                    stored_at: now,
                    ttl,
                    seq,
                    cost,
                    referenced: Cell::new(false),
                });
                let occ = self.occupancy.fetch_add(1, Relaxed) + 1;
                self.bytes.fetch_add(cost, Relaxed);
                self.stats.occupancy_peak.fetch_max(occ, Relaxed);
            }
        }
        shard
            .wheel
            .entry(deadline >> WHEEL_SHIFT)
            .or_default()
            .push((hash, seq));
        shard.ring.push_back((hash, seq));

        // 3. Enforce the budget with a CLOCK sweep over this shard's
        //    ring. The inserting shard always holds at least the entry
        //    just stored, so the global bound is restorable locally.
        let over = |cache: &Cache| {
            let entries_over = cache
                .limits
                .max_entries
                .is_some_and(|m| cache.occupancy.load(Relaxed) > m as u64);
            let bytes_over = cache
                .limits
                .max_bytes
                .is_some_and(|m| cache.bytes.load(Relaxed) > m as u64);
            entries_over || bytes_over
        };
        if !self.limits.unbounded() {
            // One full second-chance lap, then evict unconditionally:
            // termination cannot depend on every entry being hot.
            let mut chances = shard.ring.len();
            while over(self) {
                let Some((h, s)) = shard.ring.pop_front() else {
                    break;
                };
                let is_live = shard
                    .buckets
                    .get(&h)
                    .and_then(|b| b.iter().find(|e| e.seq == s))
                    .map(|e| e.referenced.get());
                match is_live {
                    None => continue, // superseded slot
                    Some(true) if chances > 0 => {
                        chances -= 1;
                        if let Some(e) = shard
                            .buckets
                            .get(&h)
                            .and_then(|b| b.iter().find(|e| e.seq == s))
                        {
                            e.referenced.set(false);
                        }
                        shard.ring.push_back((h, s));
                    }
                    Some(_) => {
                        if let Some(cost) = shard.remove_slot(h, s) {
                            outcome.evicted += 1;
                            self.occupancy.fetch_sub(1, Relaxed);
                            self.bytes.fetch_sub(cost, Relaxed);
                            self.stats.evicted.fetch_add(1, Relaxed);
                        }
                    }
                }
            }
        }
        outcome.occupancy = self.occupancy.load(Relaxed);
        outcome
    }

    /// Number of entries still *servable* at `now` — fresh or within
    /// the serve-stale window. Entries past their deadline are dead
    /// even if the wheel hasn't physically removed them yet, and are
    /// not counted.
    pub fn len(&self, now: u32) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("no poisoning")
                    .buckets
                    .values()
                    .flatten()
                    .filter(|e| now <= e.deadline(self.stale_window_secs))
                    .count()
            })
            .sum()
    }

    /// True when no entry is servable at `now`.
    pub fn is_empty(&self, now: u32) -> bool {
        self.len(now) == 0
    }

    /// Total stored entries, including expired-but-unpurged ones (the
    /// quantity the entry budget bounds).
    pub fn total_entries(&self) -> usize {
        self.occupancy.load(Relaxed) as usize
    }

    /// Estimated stored bytes (the quantity the byte budget bounds).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Relaxed)
    }

    /// Physically remove every entry whose deadline lies before `now`,
    /// across all shards, returning how many went. `put` turns each
    /// shard's wheel lazily; this is the eager, whole-store form for
    /// callers that want memory back *now*.
    pub fn purge_expired(&self, now: u32) -> u64 {
        let mut removed = 0u64;
        for s in &self.shards {
            let mut shard = s.lock().expect("no poisoning");
            let (expired, freed) = shard.advance_wheel(now);
            removed += expired;
            self.occupancy.fetch_sub(expired, Relaxed);
            self.bytes.fetch_sub(freed, Relaxed);
            self.stats.expired.fetch_add(expired, Relaxed);
        }
        removed
    }

    /// A frozen copy of the store's counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Relaxed),
            misses: self.stats.misses.load(Relaxed),
            stale_served: self.stats.stale_served.load(Relaxed),
            puts: self.stats.puts.load(Relaxed),
            expired: self.stats.expired.load(Relaxed),
            evicted: self.stats.evicted.load(Relaxed),
            occupancy: self.occupancy.load(Relaxed),
            occupancy_peak: self.stats.occupancy_peak.load(Relaxed),
            bytes: self.bytes.load(Relaxed),
        }
    }

    /// Drop everything (tests and flushes). Counters other than the
    /// occupancy/byte gauges are preserved.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("no poisoning");
            shard.buckets.clear();
            shard.wheel.clear();
            shard.ring.clear();
        }
        self.occupancy.store(0, Relaxed);
        self.bytes.store(0, Relaxed);
    }
}

fn find<'a>(bucket: &'a [Entry], qname: &Name, qtype: u16) -> Option<&'a Entry> {
    bucket
        .iter()
        .find(|e| e.qtype == qtype && e.qname == *qname)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn success() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::NoError,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: false,
        }
    }

    fn failure() -> CachedResolution {
        CachedResolution {
            rcode: Rcode::ServFail,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: true,
        }
    }

    #[test]
    fn fresh_then_stale_then_miss() {
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1030),
            CacheHit::Fresh(..)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1061),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1160),
            CacheHit::Stale(_)
        ));
        assert!(matches!(
            c.get(&n("a.com"), RrType::A, 1161),
            CacheHit::Miss
        ));
    }

    #[test]
    fn failure_does_not_clobber_stale_success() {
        let c = Cache::new(1000);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        // Success has expired (stale), a failure comes in.
        c.put(&n("a.com"), RrType::A, failure(), 30, 1100);
        // The stale success must still be retrievable for serve-stale.
        assert!(c.get_stale_success(&n("a.com"), RrType::A, 1100).is_some());
    }

    #[test]
    fn failure_cached_when_no_success_exists() {
        let c = Cache::new(100);
        c.put(&n("b.com"), RrType::A, failure(), 30, 1000);
        match c.get(&n("b.com"), RrType::A, 1010) {
            CacheHit::Fresh(data, ..) => assert!(data.is_failure),
            other => panic!("expected fresh failure, got {other:?}"),
        }
        assert!(c.get_stale_success(&n("b.com"), RrType::A, 1010).is_none());
    }

    #[test]
    fn types_are_separate() {
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        assert!(matches!(
            c.get(&n("a.com"), RrType::Aaaa, 1000),
            CacheHit::Miss
        ));
    }

    #[test]
    fn hits_share_one_allocation() {
        // The Arc-returning API is what enforces "zero deep clones on
        // the hit path": two probes of the same entry must hand back the
        // same allocation.
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        let (CacheHit::Fresh(first, ..), CacheHit::Fresh(second, ..)) = (
            c.get(&n("a.com"), RrType::A, 1010),
            c.get(&n("a.com"), RrType::A, 1020),
        ) else {
            panic!("expected two fresh hits");
        };
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn entries_spread_and_survive_across_shards() {
        // Many names land in many shards; every one must stay
        // retrievable (shard selection and bucket lookup must agree).
        let c = Cache::new(100);
        for i in 0..200 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 0);
        }
        assert_eq!(c.len(10), 200);
        assert_eq!(c.total_entries(), 200);
        for i in 0..200 {
            assert!(
                matches!(
                    c.get(&n(&format!("d{i}.example")), RrType::A, 10),
                    CacheHit::Fresh(..)
                ),
                "d{i}.example lost"
            );
        }
        c.clear();
        assert!(c.is_empty(10));
        assert_eq!(c.total_entries(), 0);
    }

    #[test]
    fn len_counts_only_servable_entries() {
        let c = Cache::new(100);
        c.put(&n("short.example"), RrType::A, success(), 10, 1000);
        c.put(&n("long.example"), RrType::A, success(), 10_000, 1000);
        assert_eq!(c.len(1005), 2);
        // short's deadline is 1000 + 10 + 100 = 1110.
        assert_eq!(c.len(1111), 1);
        assert!(!c.is_empty(1111));
        assert_eq!(c.len(20_000), 0);
        assert!(c.is_empty(20_000));
        // The dead entries are still *stored* until a wheel turn.
        assert_eq!(c.total_entries(), 2);
    }

    #[test]
    fn purge_expired_removes_dead_entries() {
        let c = Cache::new(50);
        for i in 0..64 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 30, 0);
        }
        assert_eq!(c.total_entries(), 64);
        assert!(c.total_bytes() > 0);
        // Deadline 0 + 30 + 50 = 80; the 64 s wheel bucket containing it
        // is wholly past once now reaches 128.
        assert_eq!(c.purge_expired(128), 64);
        assert_eq!(c.total_entries(), 0);
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.stats().expired, 64);
        // Purging again finds nothing.
        assert_eq!(c.purge_expired(1_000_000), 0);
    }

    #[test]
    fn wheel_turns_lazily_on_put() {
        let c = Cache::new(0);
        c.put(&n("old.example"), RrType::A, success(), 10, 0);
        // Same shard or not, a much-later put must report the expiry of
        // whatever died in its own shard; drive the clock far enough
        // that every wheel bucket is past, then touch all shards.
        let mut expired = 0;
        for i in 0..64 {
            expired += c
                .put(
                    &n(&format!("new{i}.example")),
                    RrType::A,
                    success(),
                    10,
                    10_000,
                )
                .expired;
        }
        assert_eq!(expired, 1, "the dead entry expired exactly once");
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn entry_budget_is_a_hard_global_bound() {
        let limits = CacheLimits {
            max_entries: Some(10),
            max_bytes: None,
        };
        let c = Cache::with_limits(100, limits);
        let mut evicted = 0;
        for i in 0..100 {
            let out = c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 0);
            assert!(c.total_entries() <= 10, "over budget after put {i}");
            evicted += out.evicted;
        }
        assert_eq!(c.total_entries(), 10);
        assert_eq!(evicted, 90);
        assert_eq!(c.stats().evicted, 90);
        assert!(c.stats().occupancy_peak <= 11);
    }

    #[test]
    fn byte_budget_is_enforced() {
        let limits = CacheLimits {
            max_entries: None,
            max_bytes: Some(1024),
        };
        let c = Cache::with_limits(100, limits);
        for i in 0..100 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 0);
            assert!(c.total_bytes() <= 1024, "over byte budget after put {i}");
        }
        assert!(c.stats().evicted > 0);
    }

    #[test]
    fn clock_gives_hot_entries_a_second_chance() {
        let limits = CacheLimits {
            max_entries: Some(4),
            max_bytes: None,
        };
        let c = Cache::with_limits(100, limits);
        // Names chosen freely; what matters is that the hot one is
        // probed (setting its reference bit) before pressure arrives.
        for i in 0..4 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 0);
        }
        assert!(matches!(
            c.get(&n("d0.example"), RrType::A, 1),
            CacheHit::Fresh(..)
        ));
        for i in 4..12 {
            c.put(&n(&format!("d{i}.example")), RrType::A, success(), 60, 1);
        }
        assert_eq!(c.total_entries(), 4);
        // The referenced entry survived at least the first wave of
        // evictions in its shard; pressure in *other* shards can never
        // evict it at all. (d0 may eventually go if its own shard keeps
        // inserting, which is the CLOCK contract — one second chance,
        // not immortality.)
        let stats = c.stats();
        assert_eq!(stats.evicted, 8);
    }

    /// `purge_expired` exactly on a 64 s bucket boundary. A deadline of
    /// 64 lands in bucket 1 (`64 >> 6`), and the wheel only drains
    /// buckets *wholly* before `now`: at `now == 64` the entry is still
    /// servable (deadline is the last servable instant), so the bucket
    /// must survive; through `now == 127` the entry is dead but its
    /// bucket is not yet wholly past, so the coarse wheel legally keeps
    /// it (only `len` drops); at `now == 128` the bucket finally drains.
    #[test]
    fn purge_on_wheel_bucket_boundary() {
        let c = Cache::new(0); // no stale window: deadline = stored_at + ttl
        c.put(
            &n("edge.example"),
            RrType::A,
            success(),
            WHEEL_BUCKET_SECS,
            0,
        );

        // Exactly on the boundary: still alive, nothing may go.
        assert_eq!(c.purge_expired(WHEEL_BUCKET_SECS), 0);
        assert_eq!(c.len(WHEEL_BUCKET_SECS), 1);
        assert!(matches!(
            c.get(&n("edge.example"), RrType::A, WHEEL_BUCKET_SECS),
            CacheHit::Fresh(..)
        ));

        // One past the boundary: dead for `len`/`get`, but the bucket
        // is not wholly past — the wheel holds the memory a little
        // longer by design.
        assert_eq!(c.purge_expired(WHEEL_BUCKET_SECS + 1), 0);
        assert_eq!(c.len(WHEEL_BUCKET_SECS + 1), 0);
        assert!(matches!(
            c.get(&n("edge.example"), RrType::A, WHEEL_BUCKET_SECS + 1),
            CacheHit::Miss
        ));
        assert_eq!(c.total_entries(), 1, "physically present until drained");

        // Last instant of the bucket: still physically present.
        assert_eq!(c.purge_expired(2 * WHEEL_BUCKET_SECS - 1), 0);
        assert_eq!(c.total_entries(), 1);

        // First instant of the next bucket: drained, counted expired.
        assert_eq!(c.purge_expired(2 * WHEEL_BUCKET_SECS), 1);
        assert_eq!(c.total_entries(), 0);
        let s = c.stats();
        assert_eq!(s.expired, 1);
        assert_eq!(s.evicted, 0, "wheel expiry is not a budget eviction");
    }

    /// CLOCK eviction interacting with entries that expire mid-sweep:
    /// a bounded store full of dead-but-unpurged entries must reclaim
    /// them through the wheel (`expired`) as new stores arrive, skip
    /// their superseded ring slots without burning second chances, and
    /// spend budget evictions (`evicted`) only on live entries.
    #[test]
    fn clock_sweep_skips_entries_the_wheel_already_expired() {
        let limits = CacheLimits {
            max_entries: Some(64),
            max_bytes: None,
        };
        let c = Cache::with_limits(0, limits);
        for i in 0..64 {
            c.put(&n(&format!("old{i}.example")), RrType::A, success(), 32, 0);
        }
        assert_eq!(c.total_entries(), 64);

        // t = 100: every first-wave entry is past its deadline but
        // still stored (the wheel is lazy). Each second-wave put turns
        // its own shard's wheel before enforcing the budget, so dead
        // entries drain as expiries, not evictions, and the budget
        // holds throughout.
        for i in 0..64 {
            c.put(
                &n(&format!("new{i}.example")),
                RrType::A,
                success(),
                64,
                100,
            );
            assert!(c.total_entries() <= 64, "budget violated at put {i}");
        }

        // Shards that saw no second-wave put may still hold first-wave
        // corpses; drain them eagerly so the accounting below is exact.
        c.purge_expired(101);
        let live = c.len(101);
        let s = c.stats();
        assert_eq!(s.expired, 64, "every dead entry expires exactly once");
        assert_eq!(
            s.evicted as usize,
            64 - live,
            "evictions account precisely for the live entries that went"
        );
        // The sweep never removed a live entry while dead ones remained
        // in the same shard — so the overwhelming share of the second
        // wave must have survived.
        assert!(live >= 48, "only {live}/64 second-wave entries survived");
        for i in 0..64 {
            let hit = c.get(&n(&format!("old{i}.example")), RrType::A, 101);
            assert!(matches!(hit, CacheHit::Miss), "old{i} outlived expiry");
        }
    }

    #[test]
    fn overwrite_does_not_leak_occupancy() {
        let c = Cache::new(100);
        for _ in 0..50 {
            c.put(&n("same.example"), RrType::A, success(), 60, 0);
        }
        assert_eq!(c.total_entries(), 1);
        assert_eq!(c.len(1), 1);
        // Superseded wheel slots must not remove the live entry.
        assert_eq!(c.purge_expired(1), 0);
        assert!(matches!(
            c.get(&n("same.example"), RrType::A, 1),
            CacheHit::Fresh(..)
        ));
    }

    #[test]
    fn stats_track_probes() {
        let c = Cache::new(100);
        c.put(&n("a.com"), RrType::A, success(), 60, 1000);
        let _ = c.get(&n("a.com"), RrType::A, 1010); // hit
        let _ = c.get(&n("b.com"), RrType::A, 1010); // miss
        let _ = c.get(&n("a.com"), RrType::A, 1100); // stale → miss (not served)
        let _ = c.get_stale_success(&n("a.com"), RrType::A, 1100); // stale served
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.stale_served, 1);
        assert_eq!(s.puts, 1);
        assert!(s.hit_ratio() > 0.0);
    }
}
