//! The infrastructure cache: validated zone keys and root-level
//! referral sets, keyed by zone.
//!
//! The iterative engine used to re-derive the same delegation data for
//! every one of the scan's 303k resolutions: walk from the root, parse
//! the same root→TLD referral, re-validate the same DS RRset. The key
//! half of this cache (the former per-resolver `KeyCache` of
//! `iterative.rs`) already removed the DNSKEY re-fetches; the referral
//! half removes the walk's first hop as well.
//!
//! # Keys
//!
//! [`KeyEntry`] caches the result of validating one zone's DNSKEY
//! RRset. Replaying the stored findings on every hit keeps
//! ancestor-zone conditions (like the stand-by-key case of §4.2.3,
//! which lives at a TLD) visible in every resolution that crosses the
//! zone. Key sets are `Arc`-shared: every resolution crossing a popular
//! zone (a TLD, say) borrows the same validated vectors instead of
//! deep-cloning them per crossing. The shards carry a *singleflight*
//! build permit per zone (see `KeyShard::building`) so a miss storm
//! performs exactly one upstream fetch.
//!
//! # Referrals
//!
//! [`ReferralEntry`] caches one root→TLD delegation: the delegated
//! zone, its server addresses (from glue), the DS RRset, and the
//! facts needed to replay the hop's `Referral` trace event. Entries
//! are only created from **clean** hops — hops that recorded no
//! finding, no nameserver event, and no validation-state change — so
//! replaying one is diagnosis-neutral by construction: the engine just
//! starts the walk one zone down. Hops that *did* record something
//! (chaos faults, broken proofs, lame roots) are never cached and
//! always re-walk live, which keeps every diagnosis self-consistent.
//!
//! The referral tier is deliberately restricted to delegations out of
//! the root (TLD zones): those are crossed by every single resolution,
//! and the restriction bounds the tier's size by the TLD count — no
//! budget or eviction machinery needed.

use crate::diagnosis::{Diagnosis, Finding, ValidationState};
use crate::validate::PublishedKey;
use ede_wire::{Name, Rdata};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of independently-locked shards (power of two). Both halves of
/// the infrastructure cache are hit once per zone cut of every
/// resolution, so they share the resolution cache's contention profile
/// and get the same treatment.
const INFRA_SHARDS: usize = 16;

/// Cached result of validating one zone's DNSKEY RRset.
pub struct KeyEntry {
    /// Keys that chained to the trust anchor (`None` = validation
    /// failed; the zone is effectively bogus until re-fetch).
    pub(crate) trusted: Option<Arc<Vec<PublishedKey>>>,
    /// Everything the zone published, trusted or not (advisory checks).
    pub(crate) published: Arc<Vec<PublishedKey>>,
    /// Findings the original validation recorded; replayed on every hit.
    pub(crate) findings: Vec<Finding>,
    /// The validation state the original validation degraded to.
    pub(crate) state: ValidationState,
    /// Virtual-clock second past which the entry is dead.
    pub(crate) expires: u32,
}

impl KeyEntry {
    /// Build an entry (engine-internal).
    pub(crate) fn new(
        trusted: Option<Arc<Vec<PublishedKey>>>,
        published: Arc<Vec<PublishedKey>>,
        findings: Vec<Finding>,
        state: ValidationState,
        expires: u32,
    ) -> Self {
        KeyEntry {
            trusted,
            published,
            findings,
            state,
            expires,
        }
    }

    /// True when the entry is still usable at `now`.
    pub(crate) fn live(&self, now: u32) -> bool {
        self.expires > now
    }

    /// Replay this entry into `diag` and hand out its shared sets.
    pub(crate) fn replay(
        &self,
        diag: &mut Diagnosis,
    ) -> (Option<Arc<Vec<PublishedKey>>>, Arc<Vec<PublishedKey>>) {
        for f in &self.findings {
            diag.add(f.clone());
        }
        diag.degrade(self.state);
        (self.trusted.clone(), self.published.clone())
    }
}

/// One cached root→TLD delegation, replayable without touching the
/// diagnosis (see the module docs for the clean-hop rule).
#[derive(Debug, Clone)]
pub struct ReferralEntry {
    /// The delegated zone (a TLD).
    pub zone: Name,
    /// The zone's server addresses, as the live hop resolved them
    /// (glue, or the NS-chase fallback).
    pub servers: Vec<IpAddr>,
    /// The delegation's DS RRset; empty when the hop left the chain of
    /// trust (or the resolver has no trust anchors at all).
    pub ds_rdatas: Vec<Rdata>,
    /// NS-name count of the original referral (for the replayed
    /// `Referral` trace event).
    pub ns_count: usize,
    /// Whether the original referral carried a DS RRset (for the
    /// replayed `Referral` trace event).
    pub signed: bool,
    /// Virtual-clock second past which the entry is dead.
    pub expires: u32,
}

impl ReferralEntry {
    /// True when the entry is still usable at `now`.
    pub fn live(&self, now: u32) -> bool {
        self.expires > now
    }
}

/// One lockable slice of the key cache: the validated entries plus one
/// build permit per zone currently being fetched. The permit gives the
/// cache *singleflight* semantics — when several workers miss on the
/// same zone at once, exactly one performs the DNSKEY fetch and the
/// rest wait on the permit and then replay the cached entry. Without
/// it, a miss storm duplicates upstream queries, which both wastes
/// work and makes the scan's query counters depend on thread timing.
#[derive(Default)]
pub(crate) struct KeyShard {
    pub(crate) entries: HashMap<Name, Arc<KeyEntry>>,
    pub(crate) building: HashMap<Name, Arc<Mutex<()>>>,
}

/// The infrastructure cache: sharded zone-key and referral stores, plus
/// hit counters for the per-tier cache report.
pub struct InfraCache {
    key_shards: [Mutex<KeyShard>; INFRA_SHARDS],
    referral_shards: [Mutex<HashMap<Name, Arc<ReferralEntry>>>; INFRA_SHARDS],
    key_hits: AtomicU64,
    referral_hits: AtomicU64,
    referral_misses: AtomicU64,
}

impl Default for InfraCache {
    fn default() -> Self {
        InfraCache {
            key_shards: std::array::from_fn(|_| Mutex::new(KeyShard::default())),
            referral_shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            key_hits: AtomicU64::new(0),
            referral_hits: AtomicU64::new(0),
            referral_misses: AtomicU64::new(0),
        }
    }
}

/// A frozen copy of the infrastructure cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InfraStatsSnapshot {
    /// Zone-key entries replayed from the shared store.
    pub key_hits: u64,
    /// Root→TLD referral hops replayed from the shared store.
    pub referral_hits: u64,
    /// Referral probes that found nothing (the hop walked live).
    pub referral_misses: u64,
}

impl InfraStatsSnapshot {
    /// Referral hit ratio in `[0, 1]`.
    pub fn referral_hit_ratio(&self) -> f64 {
        let total = self.referral_hits + self.referral_misses;
        if total == 0 {
            0.0
        } else {
            self.referral_hits as f64 / total as f64
        }
    }
}

impl InfraCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn key_shard(&self, zone: &Name) -> &Mutex<KeyShard> {
        &self.key_shards[(zone.shard_hash() as usize) & (INFRA_SHARDS - 1)]
    }

    /// Count one shared-store key replay (the engine calls this when it
    /// serves a key entry out of a `key_shard`).
    pub(crate) fn count_key_hit(&self) {
        self.key_hits.fetch_add(1, Relaxed);
    }

    fn referral_shard(&self, zone: &Name) -> &Mutex<HashMap<Name, Arc<ReferralEntry>>> {
        &self.referral_shards[(zone.shard_hash() as usize) & (INFRA_SHARDS - 1)]
    }

    /// Look up the cached root→TLD referral for `zone` at `now`.
    pub fn get_referral(&self, zone: &Name, now: u32) -> Option<Arc<ReferralEntry>> {
        let shard = self.referral_shard(zone).lock().expect("no poisoning");
        match shard.get(zone) {
            Some(e) if e.live(now) => {
                self.referral_hits.fetch_add(1, Relaxed);
                Some(Arc::clone(e))
            }
            _ => {
                self.referral_misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Store one clean root→TLD referral hop.
    pub fn put_referral(&self, entry: ReferralEntry) -> Arc<ReferralEntry> {
        let zone = entry.zone.detached();
        let entry = Arc::new(ReferralEntry {
            zone: zone.clone(),
            servers: entry.servers,
            ds_rdatas: entry.ds_rdatas,
            ns_count: entry.ns_count,
            signed: entry.signed,
            expires: entry.expires,
        });
        self.referral_shard(&zone)
            .lock()
            .expect("no poisoning")
            .insert(zone, Arc::clone(&entry));
        entry
    }

    /// A frozen copy of the hit counters.
    pub fn stats(&self) -> InfraStatsSnapshot {
        InfraStatsSnapshot {
            key_hits: self.key_hits.load(Relaxed),
            referral_hits: self.referral_hits.load(Relaxed),
            referral_misses: self.referral_misses.load(Relaxed),
        }
    }

    /// Drop everything (flushes and tests). Counters are preserved.
    pub fn clear(&self) {
        for shard in &self.key_shards {
            let mut shard = shard.lock().expect("no poisoning");
            shard.entries.clear();
            shard.building.clear();
        }
        for shard in &self.referral_shards {
            shard.lock().expect("no poisoning").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    #[test]
    fn referral_round_trip_and_expiry() {
        let infra = InfraCache::new();
        assert!(infra.get_referral(&n("tld"), 0).is_none());
        infra.put_referral(ReferralEntry {
            zone: n("tld"),
            servers: vec!["192.0.2.53".parse().unwrap()],
            ds_rdatas: Vec::new(),
            ns_count: 2,
            signed: false,
            expires: 100,
        });
        let hit = infra.get_referral(&n("tld"), 50).expect("live");
        assert_eq!(hit.ns_count, 2);
        assert!(infra.get_referral(&n("tld"), 100).is_none(), "expired");
        let s = infra.stats();
        assert_eq!(s.referral_hits, 1);
        assert_eq!(s.referral_misses, 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let infra = InfraCache::new();
        infra.put_referral(ReferralEntry {
            zone: n("tld"),
            servers: Vec::new(),
            ds_rdatas: Vec::new(),
            ns_count: 1,
            signed: true,
            expires: 100,
        });
        assert!(infra.get_referral(&n("tld"), 0).is_some());
        infra.clear();
        assert!(infra.get_referral(&n("tld"), 0).is_none());
        assert_eq!(infra.stats().referral_hits, 1);
    }
}
