//! The L1 tier: a per-worker cache with zero synchronization.
//!
//! Every scan worker (and every [`crate::ResolutionPool`] host thread)
//! owns one [`L1Cache`] and probes it before the shared L2 store. The
//! type contains no `Mutex` and no atomics — all interior mutability is
//! `Cell`/`RefCell`, so it is `!Sync` by construction and the compiler
//! enforces single-threaded use. Pooled resolutions share one via `Rc`
//! (the pool's `spawn` has no `Send` bound; see `docs/CONCURRENCY.md`).
//!
//! # Coherence
//!
//! An L1 answer entry is a *copy* of an L2 entry's `(data, stored_at,
//! ttl)` triple taken at hit/store time, and the L1 serves it only
//! while **fresh** (`age <= ttl` on the same virtual clock). Stale
//! serving stays centralized in L2. This makes coherence structural
//! rather than protocolized: L2 only replaces an entry after the old
//! one's freshness lapsed (a fresh entry is re-served, never
//! re-resolved), so an L1 copy and its L2 original can never both be
//! fresh with different data — by the time the original is replaced,
//! the copy's own window has lapsed on every worker's clock too. The
//! same holds for zone keys and referrals, which are shared `Arc`s
//! with embedded expiry. The only exception is budget eviction (L2 may
//! drop a live entry under memory pressure while an L1 copy survives
//! its remaining freshness window), which is exactly the configuration
//! where bit-identical replay is already forfeit.
//!
//! # Invalidation
//!
//! [`Resolver::flush`](crate::Resolver::flush) bumps a resolver-wide
//! generation counter; the resolver passes the current generation into
//! [`L1Cache::sync_generation`] once per resolution, and a mismatch
//! clears every map. (That one generation read is the resolver's — the
//! L1 itself still performs no atomic operation.)
//!
//! # Capacity
//!
//! Each map is capped (default [`DEFAULT_L1_CAPACITY`] entries). On
//! overflow the map is cleared wholesale — an epoch flip, not LRU.
//! Deterministic, allocation-friendly, and for a tier whose job is
//! catching *extremely* hot entries (TLD referrals, zone keys, repeat
//! qnames), re-warming after a flip costs one L2 round-trip per entry.

use super::infra::{KeyEntry, ReferralEntry};
use super::{probe_hash, CachedResolution};
use ede_wire::{Name, RrType};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// Default per-map entry cap.
pub const DEFAULT_L1_CAPACITY: usize = 4096;

/// One mirrored answer entry.
struct L1Answer {
    /// Owned key material for collision resolution, like the L2 entry.
    qname: Name,
    qtype: u16,
    data: Arc<CachedResolution>,
    stored_at: u32,
    ttl: u32,
}

/// A frozen copy of one L1's counters (summed across workers by the
/// scanner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1StatsSnapshot {
    /// Answer probes served from this tier.
    pub hits: u64,
    /// Answer probes that fell through to L2.
    pub misses: u64,
    /// Zone-key lookups served from this tier.
    pub key_hits: u64,
    /// Referral lookups served from this tier.
    pub referral_hits: u64,
    /// Whole-map clears forced by the capacity cap (epoch flips).
    pub capacity_flips: u64,
    /// Whole-cache clears forced by a generation bump (resolver flush).
    pub generation_flushes: u64,
}

impl L1StatsSnapshot {
    /// Merge another worker's counters into this one.
    pub fn merge(&mut self, other: &L1StatsSnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.key_hits += other.key_hits;
        self.referral_hits += other.referral_hits;
        self.capacity_flips += other.capacity_flips;
        self.generation_flushes += other.generation_flushes;
    }

    /// Hit ratio in `[0, 1]` over answer probes.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-worker tier. `Send + !Sync`: it can move to (or be built on)
/// a worker thread, but two threads can never share one.
pub struct L1Cache {
    answers: RefCell<HashMap<u64, L1Answer>>,
    keys: RefCell<HashMap<Name, Arc<KeyEntry>>>,
    referrals: RefCell<HashMap<Name, Arc<ReferralEntry>>>,
    generation: Cell<u64>,
    capacity: usize,
    hits: Cell<u64>,
    misses: Cell<u64>,
    key_hits: Cell<u64>,
    referral_hits: Cell<u64>,
    capacity_flips: Cell<u64>,
    generation_flushes: Cell<u64>,
}

impl Default for L1Cache {
    fn default() -> Self {
        Self::new()
    }
}

impl L1Cache {
    /// An empty tier with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_L1_CAPACITY)
    }

    /// An empty tier capping each map at `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        L1Cache {
            answers: RefCell::new(HashMap::new()),
            keys: RefCell::new(HashMap::new()),
            referrals: RefCell::new(HashMap::new()),
            generation: Cell::new(0),
            capacity: capacity.max(1),
            hits: Cell::new(0),
            misses: Cell::new(0),
            key_hits: Cell::new(0),
            referral_hits: Cell::new(0),
            capacity_flips: Cell::new(0),
            generation_flushes: Cell::new(0),
        }
    }

    /// Adopt the resolver's current cache generation; on mismatch the
    /// whole tier is invalidated (the shared stores were flushed).
    pub fn sync_generation(&self, generation: u64) {
        if self.generation.get() != generation {
            if self.generation.get() != 0 || generation != 0 {
                // Count real flushes, not the first adoption.
                if !self.answers.borrow().is_empty()
                    || !self.keys.borrow().is_empty()
                    || !self.referrals.borrow().is_empty()
                {
                    self.generation_flushes
                        .set(self.generation_flushes.get() + 1);
                }
            }
            self.answers.borrow_mut().clear();
            self.keys.borrow_mut().clear();
            self.referrals.borrow_mut().clear();
            self.generation.set(generation);
        }
    }

    /// Probe for a **fresh** answer. Stale entries never come from L1 —
    /// serve-stale decisions belong to L2, and refusing to serve past
    /// TTL is what makes L1 coherence trivial.
    pub fn get_answer(
        &self,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<Arc<CachedResolution>> {
        let hash = probe_hash(qname, qtype.to_u16());
        let answers = self.answers.borrow();
        let hit = answers.get(&hash).filter(|e| {
            e.qtype == qtype.to_u16()
                && e.qname == *qname
                && now.saturating_sub(e.stored_at) <= e.ttl
        });
        match hit {
            Some(e) => {
                self.hits.set(self.hits.get() + 1);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    /// Mirror an L2 answer entry (its data plus its *exact* freshness
    /// window — the L1 copy must never outlive the original's TTL).
    pub fn put_answer(
        &self,
        qname: &Name,
        qtype: RrType,
        data: Arc<CachedResolution>,
        stored_at: u32,
        ttl: u32,
    ) {
        let hash = probe_hash(qname, qtype.to_u16());
        let mut answers = self.answers.borrow_mut();
        if answers.len() >= self.capacity && !answers.contains_key(&hash) {
            answers.clear();
            self.capacity_flips.set(self.capacity_flips.get() + 1);
        }
        answers.insert(
            hash,
            L1Answer {
                qname: qname.detached(),
                qtype: qtype.to_u16(),
                data,
                stored_at,
                ttl,
            },
        );
    }

    /// Probe for a live zone-key entry.
    pub(crate) fn get_key(&self, zone: &Name, now: u32) -> Option<Arc<KeyEntry>> {
        let keys = self.keys.borrow();
        let entry = keys.get(zone).filter(|e| e.live(now))?;
        self.key_hits.set(self.key_hits.get() + 1);
        Some(Arc::clone(entry))
    }

    /// Mirror a shared zone-key entry.
    pub(crate) fn put_key(&self, zone: &Name, entry: Arc<KeyEntry>) {
        let mut keys = self.keys.borrow_mut();
        if keys.len() >= self.capacity && !keys.contains_key(zone) {
            keys.clear();
            self.capacity_flips.set(self.capacity_flips.get() + 1);
        }
        keys.insert(zone.detached(), entry);
    }

    /// Probe for a live referral entry.
    pub fn get_referral(&self, zone: &Name, now: u32) -> Option<Arc<ReferralEntry>> {
        let referrals = self.referrals.borrow();
        let entry = referrals.get(zone).filter(|e| e.live(now))?;
        self.referral_hits.set(self.referral_hits.get() + 1);
        Some(Arc::clone(entry))
    }

    /// Mirror a shared referral entry.
    pub fn put_referral(&self, entry: Arc<ReferralEntry>) {
        let mut referrals = self.referrals.borrow_mut();
        if referrals.len() >= self.capacity && !referrals.contains_key(&entry.zone) {
            referrals.clear();
            self.capacity_flips.set(self.capacity_flips.get() + 1);
        }
        referrals.insert(entry.zone.clone(), entry);
    }

    /// A frozen copy of this tier's counters.
    pub fn stats(&self) -> L1StatsSnapshot {
        L1StatsSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            key_hits: self.key_hits.get(),
            referral_hits: self.referral_hits.get(),
            capacity_flips: self.capacity_flips.get(),
            generation_flushes: self.generation_flushes.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::Diagnosis;
    use ede_wire::Rcode;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    fn data() -> Arc<CachedResolution> {
        Arc::new(CachedResolution {
            rcode: Rcode::NoError,
            answers: Vec::new(),
            diagnosis: Diagnosis::new(),
            is_failure: false,
        })
    }

    #[test]
    fn serves_fresh_only() {
        let l1 = L1Cache::new();
        l1.put_answer(&n("a.com"), RrType::A, data(), 1000, 60);
        assert!(l1.get_answer(&n("a.com"), RrType::A, 1060).is_some());
        // One second past TTL: L1 must refuse (stale is L2's business).
        assert!(l1.get_answer(&n("a.com"), RrType::A, 1061).is_none());
        let s = l1.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let l1 = L1Cache::new();
        l1.sync_generation(1);
        l1.put_answer(&n("a.com"), RrType::A, data(), 0, 60);
        l1.sync_generation(1);
        assert!(l1.get_answer(&n("a.com"), RrType::A, 10).is_some());
        l1.sync_generation(2);
        assert!(l1.get_answer(&n("a.com"), RrType::A, 10).is_none());
        assert_eq!(l1.stats().generation_flushes, 1);
    }

    #[test]
    fn capacity_overflow_flips_the_map() {
        let l1 = L1Cache::with_capacity(4);
        for i in 0..4 {
            l1.put_answer(&n(&format!("d{i}.example")), RrType::A, data(), 0, 60);
        }
        assert!(l1.get_answer(&n("d0.example"), RrType::A, 1).is_some());
        l1.put_answer(&n("overflow.example"), RrType::A, data(), 0, 60);
        assert_eq!(l1.stats().capacity_flips, 1);
        assert!(l1.get_answer(&n("d0.example"), RrType::A, 1).is_none());
        assert!(l1
            .get_answer(&n("overflow.example"), RrType::A, 1)
            .is_some());
    }

    #[test]
    fn l1_is_send_and_not_sync() {
        fn assert_send<T: Send>() {}
        assert_send::<L1Cache>();
        // !Sync is enforced by Cell/RefCell; this is a compile-time
        // property (an `impl Sync` would be rejected by the interior
        // mutability), asserted here informally.
    }
}
