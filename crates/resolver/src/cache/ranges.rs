//! The range-keyed denial tier (RFC 8198 aggressive use of the
//! DNSSEC-validated cache).
//!
//! Exact-`(name, type)` caching cannot help a miss-heavy workload where
//! every queried name is unique — but a *validated* NSEC/NSEC3 record
//! proves the nonexistence of an entire span of names, not just the one
//! that was asked. This tier retains those spans after `validate.rs`
//! has verified them and answers later queries for *covered* names
//! locally, skipping the authority round-trip entirely.
//!
//! # Layout
//!
//! Entries are grouped per zone (denial proofs are only meaningful
//! relative to the zone that signed them), and zones are spread over
//! [`SHARD_COUNT`] independently-locked shards by a hash of the apex
//! name, mirroring the L2 store. Within a zone, NSEC3 intervals live in
//! a `BTreeMap` keyed by the 20-byte hashed owner (lookup = one
//! `range(..h).next_back()` plus a wraparound check) and NSEC intervals
//! in a `BTreeMap` keyed by the owner's canonical-order key.
//!
//! # Synthesis rules
//!
//! Synthesis is deliberately conservative — a wrong answer here is an
//! invented NXDOMAIN for a name that exists:
//!
//! * a **matching** interval (owner hash equals the query hash) whose
//!   bitmap has NS set and SOA clear is a delegation point: the parent
//!   zone is authoritative for nothing but DS there, so only a DS
//!   NODATA may be synthesized (RFC 5155 §8.9 semantics);
//! * a matching interval with a CNAME bit never synthesizes (the live
//!   answer would be the CNAME, not NODATA);
//! * NXDOMAIN needs a covering interval for the query hash, a covering
//!   interval for the closest encloser's wildcard, **and** a closest-
//!   encloser proof. The tier short-circuits the encloser walk: it only
//!   synthesizes NXDOMAIN when the qname is exactly one label below the
//!   zone apex, where the apex — known to exist, it signed the proofs —
//!   is provably the closest encloser. Deeper names fall through to a
//!   live query. This narrowing trades a little coverage for never
//!   having to guess at empty non-terminals;
//! * opt-out NSEC3 records are not retained at all: their intervals do
//!   not deny the existence of unsigned delegations (RFC 5155 §6).
//!
//! # Expiry and budget
//!
//! An interval is servable until `min(stored_at + ttl, RRSIG
//! expiration)` — a proof must not outlive the signature that made it
//! trustworthy. A per-shard TTL wheel drains dead intervals on store,
//! and the same [`CacheLimits`] entry/byte budget as the L2 store is
//! enforced by a CLOCK (second-chance) sweep over the inserting shard's
//! ring, reported through the same [`PutOutcome`] accounting.
//!
//! # Freezing
//!
//! [`RangeCache::freeze`] stops retention while keeping reads live. The
//! scanner uses this to keep its negative-load sweep deterministic
//! across worker counts: a frozen tier's contents are a pure set-union
//! of the validated proofs seen before the freeze, independent of the
//! order workers produced them.

use super::{CacheLimits, CacheStatsSnapshot, PutOutcome, SHARD_COUNT, WHEEL_SHIFT};
use ede_crypto::nsec3hash;
use ede_wire::rdata::TypeBitmap;
use ede_wire::{Name, RrType};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// One validated denial span, as extracted by the validator from a
/// proof it has fully verified (signature and shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofRange {
    /// A verified NSEC3 record: `owner_hash` exists (with `types`) and
    /// nothing hashes strictly between `owner_hash` and `next_hash`.
    Nsec3 {
        /// Extra hash iterations the zone uses.
        iterations: u16,
        /// Hash salt the zone uses.
        salt: Vec<u8>,
        /// NSEC3 flags field; bit 0 is opt-out.
        flags: u8,
        /// Hashed owner name (raw digest).
        owner_hash: Vec<u8>,
        /// Hashed next owner (raw digest).
        next_hash: Vec<u8>,
        /// Types present at the owner.
        types: TypeBitmap,
        /// Record TTL.
        ttl: u32,
        /// Covering RRSIG's expiration time.
        sig_expiration: u32,
    },
    /// A verified NSEC record: `owner` exists (with `types`) and no
    /// name sorts strictly between `owner` and `next`.
    Nsec {
        /// Owner name.
        owner: Name,
        /// Next owner in canonical order.
        next: Name,
        /// Types present at the owner.
        types: TypeBitmap,
        /// Record TTL.
        ttl: u32,
        /// Covering RRSIG's expiration time.
        sig_expiration: u32,
    },
}

/// What the tier synthesized for a covered name. `ttl` is the smallest
/// remaining freshness among the intervals the verdict rests on, so a
/// caller caching the synthesized answer cannot outlive its evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesizedDenial {
    /// The name provably does not exist.
    Nxdomain {
        /// Remaining validity of the evidence, seconds.
        ttl: u32,
    },
    /// The name exists but the queried type is provably absent.
    Nodata {
        /// Remaining validity of the evidence, seconds.
        ttl: u32,
    },
}

impl SynthesizedDenial {
    /// Remaining validity of the evidence, seconds.
    pub fn ttl(&self) -> u32 {
        match self {
            SynthesizedDenial::Nxdomain { ttl } | SynthesizedDenial::Nodata { ttl } => *ttl,
        }
    }

    /// True for the NXDOMAIN form.
    pub fn is_nxdomain(&self) -> bool {
        matches!(self, SynthesizedDenial::Nxdomain { .. })
    }
}

/// One stored interval: `key → (next, types)` plus freshness and
/// eviction bookkeeping (mirroring the L2 entry).
#[derive(Debug)]
struct Interval {
    /// Successor key (hashed owner for NSEC3, canonical key for NSEC).
    next: Vec<u8>,
    types: TypeBitmap,
    stored_at: u32,
    ttl: u32,
    sig_expiration: u32,
    seq: u64,
    cost: u64,
    referenced: Cell<bool>,
}

impl Interval {
    /// Seconds of servable life left at `now` (0 = dead). Capped by the
    /// signature expiration: a proof is only as durable as its RRSIG.
    fn remaining(&self, now: u32) -> u32 {
        let by_ttl = self.stored_at.saturating_add(self.ttl);
        by_ttl.min(self.sig_expiration).saturating_sub(now)
    }
}

/// Which per-zone map a wheel/ring slot points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Nsec3,
    Nsec,
}

/// All retained intervals for one zone.
#[derive(Debug, Default)]
struct ZoneRanges {
    /// NSEC3 parameters the stored hashes were computed under. Set by
    /// the first retained NSEC3 range; ranges under different
    /// parameters are ignored (re-keying on a parameter change would
    /// make contents order-dependent, breaking scan determinism).
    params: Option<(u16, Vec<u8>)>,
    /// Hashed owner → interval.
    nsec3: BTreeMap<Vec<u8>, Interval>,
    /// Canonical owner key → interval.
    nsec: BTreeMap<Vec<u8>, Interval>,
}

impl ZoneRanges {
    fn map(&self, kind: Kind) -> &BTreeMap<Vec<u8>, Interval> {
        match kind {
            Kind::Nsec3 => &self.nsec3,
            Kind::Nsec => &self.nsec,
        }
    }

    fn map_mut(&mut self, kind: Kind) -> &mut BTreeMap<Vec<u8>, Interval> {
        match kind {
            Kind::Nsec3 => &mut self.nsec3,
            Kind::Nsec => &mut self.nsec,
        }
    }

    fn is_empty(&self) -> bool {
        self.nsec3.is_empty() && self.nsec.is_empty()
    }
}

/// Addresses one interval for lazy deletion: `(zone hash, map, owner
/// key, sequence)`. A slot whose sequence no longer matches the stored
/// interval is skipped.
type Slot = (u64, Kind, Vec<u8>, u64);

/// One lockable slice of the tier.
#[derive(Default)]
struct Shard {
    /// Zone-apex hash → per-zone ranges. The tiny collision vector
    /// resolves 64-bit hash collisions by comparing the apex name.
    zones: HashMap<u64, Vec<(Name, ZoneRanges)>>,
    /// TTL wheel: coarse deadline bucket → slots.
    wheel: BTreeMap<u32, Vec<Slot>>,
    /// Insertion ring for the CLOCK sweep.
    ring: VecDeque<Slot>,
    next_seq: u64,
}

impl Shard {
    fn zone(&self, hash: u64, apex: &Name) -> Option<&ZoneRanges> {
        self.zones
            .get(&hash)?
            .iter()
            .find(|(n, _)| n == apex)
            .map(|(_, z)| z)
    }

    fn zone_mut(&mut self, hash: u64, apex: &Name) -> &mut ZoneRanges {
        let bucket = self.zones.entry(hash).or_default();
        if let Some(idx) = bucket.iter().position(|(n, _)| n == apex) {
            return &mut bucket[idx].1;
        }
        bucket.push((apex.detached(), ZoneRanges::default()));
        &mut bucket.last_mut().expect("just pushed").1
    }

    /// Remove the interval addressed by `slot`, returning its cost. A
    /// stale sequence is a no-op.
    fn remove_slot(&mut self, slot: &Slot) -> Option<u64> {
        let (hash, kind, key, seq) = slot;
        let bucket = self.zones.get_mut(hash)?;
        let mut cost = None;
        let mut drop_zone = None;
        for (idx, (_, zone)) in bucket.iter_mut().enumerate() {
            let map = zone.map_mut(*kind);
            if map.get(key).is_some_and(|iv| iv.seq == *seq) {
                cost = map.remove(key).map(|iv| iv.cost);
                if zone.is_empty() {
                    drop_zone = Some(idx);
                }
                break;
            }
        }
        if let Some(idx) = drop_zone {
            bucket.swap_remove(idx);
            if bucket.is_empty() {
                self.zones.remove(hash);
            }
        }
        cost
    }

    /// Drain every wheel bucket wholly before `now`, removing the dead
    /// intervals it references. Returns `(removed, bytes_freed)`.
    fn advance_wheel(&mut self, now: u32) -> (u64, u64) {
        let cutoff = now >> WHEEL_SHIFT;
        if self
            .wheel
            .first_key_value()
            .is_none_or(|(&b, _)| b >= cutoff)
        {
            return (0, 0);
        }
        let live = self.wheel.split_off(&cutoff);
        let dead = std::mem::replace(&mut self.wheel, live);
        let mut removed = 0u64;
        let mut freed = 0u64;
        for (_, slots) in dead {
            for slot in slots {
                if let Some(cost) = self.remove_slot(&slot) {
                    removed += 1;
                    freed += cost;
                }
            }
        }
        (removed, freed)
    }
}

#[derive(Debug, Default)]
struct RangeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    expired: AtomicU64,
    evicted: AtomicU64,
    occupancy_peak: AtomicU64,
}

/// The range-keyed denial tier.
pub struct RangeCache {
    shards: [Mutex<Shard>; SHARD_COUNT],
    limits: CacheLimits,
    frozen: AtomicBool,
    /// Stored intervals across all shards.
    occupancy: AtomicU64,
    /// Estimated stored bytes across all shards.
    bytes: AtomicU64,
    stats: RangeStats,
}

/// Estimated heap bytes of one stored interval: owner + next keys plus
/// flat map/bookkeeping overhead. An explicit estimate, like the L2
/// store's `entry_cost`.
fn interval_cost(key: &[u8], next: &[u8], types: &TypeBitmap) -> u64 {
    96 + key.len() as u64 + next.len() as u64 + 8 * types.iter().count() as u64
}

/// Canonical-order key for NSEC lookups: labels reversed (rightmost
/// first), lowercased, each terminated by `0x00`. Lexicographic order
/// of these keys matches RFC 4034 §6.1 canonical name order for any
/// label bytes that occur in practice.
fn canonical_key(name: &Name) -> Vec<u8> {
    let labels: Vec<&[u8]> = name.labels().collect();
    let mut key = Vec::with_capacity(name.to_wire().len());
    for label in labels.iter().rev() {
        key.extend(label.iter().map(|b| b.to_ascii_lowercase()));
        key.push(0);
    }
    key
}

/// True when `h` lies strictly inside the arc from `owner` to `next`,
/// accounting for the wraparound arc (`next <= owner`) that closes the
/// ring. An endpoint is never covered — it *exists*.
fn covers(owner: &[u8], next: &[u8], h: &[u8]) -> bool {
    if h == owner || h == next {
        return false;
    }
    if owner < next {
        owner < h && h < next
    } else {
        // Wraparound (or single-owner) arc: everything except the
        // endpoints.
        h > owner || h < next
    }
}

impl Default for RangeCache {
    fn default() -> Self {
        RangeCache::new()
    }
}

impl RangeCache {
    /// An empty, unbounded tier.
    pub fn new() -> Self {
        RangeCache::with_limits(CacheLimits::default())
    }

    /// An empty tier with the given entry/byte budget.
    pub fn with_limits(limits: CacheLimits) -> Self {
        RangeCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            limits,
            frozen: AtomicBool::new(false),
            occupancy: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            stats: RangeStats::default(),
        }
    }

    /// Stop (true) or resume (false) retention. Reads stay live either
    /// way.
    pub fn freeze(&self, frozen: bool) {
        self.frozen.store(frozen, Relaxed);
    }

    /// True while retention is disabled.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Relaxed)
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) & (SHARD_COUNT - 1)]
    }

    /// Retain validated denial spans for `zone`. Returns the same
    /// expiry/eviction accounting as an L2 `put`.
    pub fn retain(&self, zone: &Name, ranges: &[ProofRange], now: u32) -> PutOutcome {
        let mut outcome = PutOutcome::default();
        if ranges.is_empty() || self.is_frozen() {
            outcome.occupancy = self.occupancy.load(Relaxed);
            return outcome;
        }
        let hash = zone.shard_hash();
        let mut shard = self.shard_for(hash).lock().expect("no poisoning");

        // 1. Turn the wheel for this shard.
        let (expired, freed) = shard.advance_wheel(now);
        if expired > 0 {
            outcome.expired = expired;
            self.occupancy.fetch_sub(expired, Relaxed);
            self.bytes.fetch_sub(freed, Relaxed);
            self.stats.expired.fetch_add(expired, Relaxed);
        }

        // 2. Splice the spans in. Insertion is a set-union keyed by
        //    owner: re-validating the same proof overwrites in place
        //    (refreshing TTL bookkeeping), so the resulting contents do
        //    not depend on the order concurrent workers validated them
        //    once the clock stands still (as it does within a scan
        //    pass).
        for range in ranges {
            let (kind, key, next, types, ttl, sig_expiration) = match range {
                ProofRange::Nsec3 {
                    iterations,
                    salt,
                    flags,
                    owner_hash,
                    next_hash,
                    types,
                    ttl,
                    sig_expiration,
                } => {
                    // Opt-out spans do not deny unsigned delegations.
                    if flags & 0x01 != 0 {
                        continue;
                    }
                    let zr = shard.zone_mut(hash, zone);
                    match &zr.params {
                        None => zr.params = Some((*iterations, salt.clone())),
                        Some((it, s)) if (it, s) != (iterations, salt) => continue,
                        Some(_) => {}
                    }
                    (
                        Kind::Nsec3,
                        owner_hash.clone(),
                        next_hash.clone(),
                        types,
                        *ttl,
                        *sig_expiration,
                    )
                }
                ProofRange::Nsec {
                    owner,
                    next,
                    types,
                    ttl,
                    sig_expiration,
                } => (
                    Kind::Nsec,
                    canonical_key(owner),
                    canonical_key(next),
                    types,
                    *ttl,
                    *sig_expiration,
                ),
            };
            self.stats.puts.fetch_add(1, Relaxed);
            let cost = interval_cost(&key, &next, types);
            let seq = shard.next_seq;
            shard.next_seq += 1;
            let deadline = now.saturating_add(ttl).min(sig_expiration);
            let map = shard.zone_mut(hash, zone).map_mut(kind);
            match map.get_mut(&key) {
                Some(iv) => {
                    let old_cost = iv.cost;
                    iv.next = next;
                    iv.types = types.clone();
                    iv.stored_at = now;
                    iv.ttl = ttl;
                    iv.sig_expiration = sig_expiration;
                    iv.seq = seq;
                    iv.cost = cost;
                    iv.referenced.set(true);
                    self.bytes.fetch_add(cost, Relaxed);
                    self.bytes.fetch_sub(old_cost, Relaxed);
                }
                None => {
                    map.insert(
                        key.clone(),
                        Interval {
                            next,
                            types: types.clone(),
                            stored_at: now,
                            ttl,
                            sig_expiration,
                            seq,
                            cost,
                            referenced: Cell::new(false),
                        },
                    );
                    let occ = self.occupancy.fetch_add(1, Relaxed) + 1;
                    self.bytes.fetch_add(cost, Relaxed);
                    self.stats.occupancy_peak.fetch_max(occ, Relaxed);
                }
            }
            shard
                .wheel
                .entry(deadline >> WHEEL_SHIFT)
                .or_default()
                .push((hash, kind, key.clone(), seq));
            shard.ring.push_back((hash, kind, key, seq));
        }

        // 3. Enforce the budget with a CLOCK sweep, exactly as the L2
        //    store does: one full second-chance lap, then evict
        //    unconditionally.
        let over = |cache: &RangeCache| {
            let entries_over = cache
                .limits
                .max_entries
                .is_some_and(|m| cache.occupancy.load(Relaxed) > m as u64);
            let bytes_over = cache
                .limits
                .max_bytes
                .is_some_and(|m| cache.bytes.load(Relaxed) > m as u64);
            entries_over || bytes_over
        };
        if !self.limits.unbounded() {
            let mut chances = shard.ring.len();
            while over(self) {
                let Some(slot) = shard.ring.pop_front() else {
                    break;
                };
                let (h, kind, key, seq) = &slot;
                let is_live = shard
                    .zones
                    .get(h)
                    .and_then(|b| {
                        b.iter()
                            .find_map(|(_, z)| z.map(*kind).get(key).filter(|iv| iv.seq == *seq))
                    })
                    .map(|iv| iv.referenced.get());
                match is_live {
                    None => continue,
                    Some(true) if chances > 0 => {
                        chances -= 1;
                        if let Some(iv) = shard.zones.get(h).and_then(|b| {
                            b.iter().find_map(|(_, z)| {
                                z.map(*kind).get(key).filter(|iv| iv.seq == *seq)
                            })
                        }) {
                            iv.referenced.set(false);
                        }
                        shard.ring.push_back(slot);
                    }
                    Some(_) => {
                        if let Some(cost) = shard.remove_slot(&slot) {
                            outcome.evicted += 1;
                            self.occupancy.fetch_sub(1, Relaxed);
                            self.bytes.fetch_sub(cost, Relaxed);
                            self.stats.evicted.fetch_add(1, Relaxed);
                        }
                    }
                }
            }
        }
        outcome.occupancy = self.occupancy.load(Relaxed);
        outcome
    }

    /// Try to synthesize a denial for `(qname, qtype)` from retained
    /// spans, walking qname's ancestors (deepest first) to find the
    /// closest zone with evidence. Counts one probe (hit or miss).
    pub fn deny(&self, qname: &Name, qtype: RrType, now: u32) -> Option<SynthesizedDenial> {
        let mut zone = Some(qname.clone());
        let mut verdict = None;
        while let Some(apex) = zone {
            if let Some(v) = self.deny_in_zone(&apex, qname, qtype, now) {
                verdict = Some(v);
                break;
            }
            zone = apex.parent();
        }
        match verdict {
            Some(_) => self.stats.hits.fetch_add(1, Relaxed),
            None => self.stats.misses.fetch_add(1, Relaxed),
        };
        verdict
    }

    /// Synthesis attempt against one zone's retained spans.
    fn deny_in_zone(
        &self,
        apex: &Name,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<SynthesizedDenial> {
        let hash = apex.shard_hash();
        let shard = self.shard_for(hash).lock().expect("no poisoning");
        let zr = shard.zone(hash, apex)?;

        if let Some((iterations, salt)) = &zr.params {
            let qh = nsec3hash::nsec3_hash(&qname.to_wire(), salt, *iterations);
            if let Some(v) = Self::verdict(
                &zr.nsec3,
                &qh,
                |n| nsec3hash::nsec3_hash(&n.to_wire(), salt, *iterations),
                apex,
                qname,
                qtype,
                now,
            ) {
                return Some(v);
            }
        }
        if !zr.nsec.is_empty() {
            let qk = canonical_key(qname);
            return Self::verdict(&zr.nsec, &qk, canonical_key, apex, qname, qtype, now);
        }
        None
    }

    /// The shared NSEC/NSEC3 decision procedure over one ordered map,
    /// parameterized by the key function (`hash` for NSEC3, canonical
    /// key for NSEC).
    fn verdict(
        map: &BTreeMap<Vec<u8>, Interval>,
        qkey: &[u8],
        key_of: impl Fn(&Name) -> Vec<u8>,
        apex: &Name,
        qname: &Name,
        qtype: RrType,
        now: u32,
    ) -> Option<SynthesizedDenial> {
        if let Some(iv) = map.get(qkey) {
            let ttl = iv.remaining(now);
            if ttl == 0 {
                return None;
            }
            iv.referenced.set(true);
            // The name exists. A delegation point (NS without SOA) is
            // authoritative parent-side for DS only; anything else must
            // ask the child zone live.
            if iv.types.contains(RrType::Ns) && !iv.types.contains(RrType::Soa) {
                if qtype == RrType::Ds && !iv.types.contains(RrType::Ds) {
                    return Some(SynthesizedDenial::Nodata { ttl });
                }
                return None;
            }
            // A DS query at this zone's own apex belongs to the parent
            // zone; this zone's bitmap cannot answer it.
            if qtype == RrType::Ds && iv.types.contains(RrType::Soa) {
                return None;
            }
            // A CNAME would rewrite the answer, not deny it.
            if iv.types.contains(RrType::Cname) {
                return None;
            }
            if !iv.types.contains(qtype) {
                return Some(SynthesizedDenial::Nodata { ttl });
            }
            return None;
        }

        // NXDOMAIN: only when the apex is provably the closest encloser
        // — the qname sits exactly one label below it.
        if qname.parent().as_ref() != Some(apex) {
            return None;
        }
        let (cover_iv, cover_ttl) = Self::covering(map, qkey, now)?;
        let wildcard = apex.child("*").ok()?;
        let wkey = key_of(&wildcard);
        if map.contains_key(&wkey) {
            // The wildcard exists; the live answer would be an
            // expansion, not NXDOMAIN.
            return None;
        }
        let (wild_iv, wild_ttl) = Self::covering(map, &wkey, now)?;
        cover_iv.referenced.set(true);
        wild_iv.referenced.set(true);
        Some(SynthesizedDenial::Nxdomain {
            ttl: cover_ttl.min(wild_ttl),
        })
    }

    /// The fresh interval strictly covering `key`, if any.
    fn covering<'a>(
        map: &'a BTreeMap<Vec<u8>, Interval>,
        key: &[u8],
        now: u32,
    ) -> Option<(&'a Interval, u32)> {
        // Predecessor owner, falling back to the last owner for keys
        // that precede the whole map (the wraparound arc).
        let (owner, iv) = map
            .range::<[u8], _>((Bound::Unbounded, Bound::Excluded(key)))
            .next_back()
            .or_else(|| map.iter().next_back())?;
        if !covers(owner, &iv.next, key) {
            return None;
        }
        let ttl = iv.remaining(now);
        if ttl == 0 {
            return None;
        }
        Some((iv, ttl))
    }

    /// Stored intervals right now (the quantity the entry budget
    /// bounds).
    pub fn total_entries(&self) -> usize {
        self.occupancy.load(Relaxed) as usize
    }

    /// Estimated stored bytes (the quantity the byte budget bounds).
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Relaxed)
    }

    /// Eagerly remove every interval past its deadline, across all
    /// shards.
    pub fn purge_expired(&self, now: u32) -> u64 {
        let mut removed = 0u64;
        for s in &self.shards {
            let mut shard = s.lock().expect("no poisoning");
            let (expired, freed) = shard.advance_wheel(now);
            removed += expired;
            self.occupancy.fetch_sub(expired, Relaxed);
            self.bytes.fetch_sub(freed, Relaxed);
            self.stats.expired.fetch_add(expired, Relaxed);
        }
        removed
    }

    /// A frozen copy of the tier's counters, in the same shape as the
    /// other cache tiers (`stale_served` is always zero — there is no
    /// serve-stale for proofs). Hits and misses count [`Self::deny`]
    /// probes.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.stats.hits.load(Relaxed),
            misses: self.stats.misses.load(Relaxed),
            stale_served: 0,
            puts: self.stats.puts.load(Relaxed),
            expired: self.stats.expired.load(Relaxed),
            evicted: self.stats.evicted.load(Relaxed),
            occupancy: self.occupancy.load(Relaxed),
            occupancy_peak: self.stats.occupancy_peak.load(Relaxed),
            bytes: self.bytes.load(Relaxed),
        }
    }

    /// Drop everything (tests and flushes). Counters other than the
    /// occupancy/byte gauges are preserved.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("no poisoning");
            shard.zones.clear();
            shard.wheel.clear();
            shard.ring.clear();
        }
        self.occupancy.store(0, Relaxed);
        self.bytes.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Name {
        Name::parse(s).unwrap()
    }

    const ITER: u16 = 0;
    const SALT: &[u8] = &[0xab, 0xcd];

    fn h(name: &str) -> Vec<u8> {
        nsec3hash::nsec3_hash(&n(name).to_wire(), SALT, ITER)
    }

    /// A full honest NSEC3 chain over `owners` (plus their bitmaps),
    /// as the validator would extract it.
    fn chain(owners: &[(&str, &[RrType])], ttl: u32, sig_expiration: u32) -> Vec<ProofRange> {
        let mut hashed: Vec<(Vec<u8>, TypeBitmap)> = owners
            .iter()
            .map(|(o, t)| (h(o), TypeBitmap::from_types(t.iter().copied())))
            .collect();
        hashed.sort_by(|a, b| a.0.cmp(&b.0));
        (0..hashed.len())
            .map(|i| ProofRange::Nsec3 {
                iterations: ITER,
                salt: SALT.to_vec(),
                flags: 0,
                owner_hash: hashed[i].0.clone(),
                next_hash: hashed[(i + 1) % hashed.len()].0.clone(),
                types: hashed[i].1.clone(),
                ttl,
                sig_expiration,
            })
            .collect()
    }

    const APEX_TYPES: &[RrType] = &[
        RrType::Soa,
        RrType::Ns,
        RrType::Dnskey,
        RrType::Nsec3param,
        RrType::Rrsig,
    ];

    #[test]
    fn nxdomain_synthesized_for_covered_name() {
        let rc = RangeCache::new();
        let zone = n("example");
        let ranges = chain(
            &[
                ("example", APEX_TYPES),
                ("alpha.example", &[RrType::Ns]),
                ("beta.example", &[RrType::Ns]),
            ],
            300,
            10_000,
        );
        rc.retain(&zone, &ranges, 100);
        // Every unregistered direct child of the apex is now provably
        // absent: the full chain covers the whole hash ring.
        for probe in ["zz000.example", "nope.example", "x.example"] {
            match rc.deny(&n(probe), RrType::A, 150) {
                Some(SynthesizedDenial::Nxdomain { ttl }) => assert_eq!(ttl, 250),
                other => panic!("{probe}: expected NXDOMAIN, got {other:?}"),
            }
        }
        assert_eq!(rc.stats().hits, 3);
    }

    #[test]
    fn registered_owner_is_never_denied() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(
            &zone,
            &chain(
                &[("example", APEX_TYPES), ("alpha.example", &[RrType::Ns])],
                300,
                10_000,
            ),
            100,
        );
        // A delegation point: the parent can only speak to DS absence.
        assert_eq!(rc.deny(&n("alpha.example"), RrType::A, 150), None);
        assert_eq!(
            rc.deny(&n("alpha.example"), RrType::Ds, 150),
            Some(SynthesizedDenial::Nodata { ttl: 250 })
        );
    }

    #[test]
    fn nodata_synthesized_from_matching_bitmap() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 300, 10_000), 100);
        // AAAA is absent from the apex bitmap → NODATA.
        assert_eq!(
            rc.deny(&n("example"), RrType::Aaaa, 150),
            Some(SynthesizedDenial::Nodata { ttl: 250 })
        );
        // SOA is present → cannot deny.
        assert_eq!(rc.deny(&n("example"), RrType::Soa, 150), None);
        // DS at the apex belongs to the parent zone.
        assert_eq!(rc.deny(&n("example"), RrType::Ds, 150), None);
    }

    #[test]
    fn nxdomain_needs_wildcard_cover() {
        let rc = RangeCache::new();
        let zone = n("example");
        // Retain only the arc that covers the probe — if the wildcard
        // hash happens to fall in the *other* arc, synthesis must
        // refuse. Build a two-owner chain and retain one record at a
        // time to find such a split.
        let ranges = chain(
            &[("example", APEX_TYPES), ("alpha.example", &[RrType::Ns])],
            300,
            10_000,
        );
        let probe = n("zz000.example");
        let ph = h("zz000.example");
        let wh = h("*.example");
        let covering_probe: Vec<ProofRange> = ranges
            .iter()
            .filter(|r| match r {
                ProofRange::Nsec3 {
                    owner_hash,
                    next_hash,
                    ..
                } => covers(owner_hash, next_hash, &ph),
                _ => false,
            })
            .cloned()
            .collect();
        assert_eq!(covering_probe.len(), 1);
        let same_arc = match &covering_probe[0] {
            ProofRange::Nsec3 {
                owner_hash,
                next_hash,
                ..
            } => covers(owner_hash, next_hash, &wh),
            _ => unreachable!(),
        };
        rc.retain(&zone, &covering_probe, 100);
        let got = rc.deny(&probe, RrType::A, 150);
        if same_arc {
            assert!(matches!(got, Some(SynthesizedDenial::Nxdomain { .. })));
        } else {
            assert_eq!(got, None, "wildcard arc missing → no synthesis");
            // Retaining the rest of the chain unlocks it.
            rc.retain(&zone, &ranges, 100);
            assert!(matches!(
                rc.deny(&probe, RrType::A, 150),
                Some(SynthesizedDenial::Nxdomain { .. })
            ));
        }
    }

    #[test]
    fn deeper_names_are_not_synthesized() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 300, 10_000), 100);
        // Two labels below the apex: the closest-encloser shortcut does
        // not apply, so no NXDOMAIN even though the hash is covered.
        assert_eq!(rc.deny(&n("a.b.example"), RrType::A, 150), None);
    }

    #[test]
    fn expiry_is_capped_by_signature_validity() {
        let rc = RangeCache::new();
        let zone = n("example");
        // TTL would allow until 100+300=400, but the RRSIG dies at 200.
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 300, 200), 100);
        assert_eq!(
            rc.deny(&n("example"), RrType::Aaaa, 150),
            Some(SynthesizedDenial::Nodata { ttl: 50 })
        );
        assert_eq!(rc.deny(&n("example"), RrType::Aaaa, 200), None);
    }

    #[test]
    fn ttl_expiry_removes_intervals() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 30, 10_000), 0);
        assert_eq!(rc.total_entries(), 1);
        assert!(rc.deny(&n("example"), RrType::Aaaa, 10).is_some());
        assert_eq!(rc.deny(&n("example"), RrType::Aaaa, 31), None);
        // The wheel physically removes it once its bucket is past.
        assert_eq!(rc.purge_expired(128), 1);
        assert_eq!(rc.total_entries(), 0);
        assert_eq!(rc.total_bytes(), 0);
        assert_eq!(rc.stats().expired, 1);
    }

    #[test]
    fn opt_out_ranges_are_not_retained() {
        let rc = RangeCache::new();
        let zone = n("example");
        let mut ranges = chain(&[("example", APEX_TYPES)], 300, 10_000);
        for r in &mut ranges {
            if let ProofRange::Nsec3 { flags, .. } = r {
                *flags = 0x01;
            }
        }
        rc.retain(&zone, &ranges, 100);
        assert_eq!(rc.total_entries(), 0);
        assert_eq!(rc.deny(&n("zz.example"), RrType::A, 150), None);
    }

    #[test]
    fn frozen_tier_serves_but_does_not_retain() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 300, 10_000), 100);
        rc.freeze(true);
        rc.retain(
            &n("other"),
            &chain(&[("other", APEX_TYPES)], 300, 10_000),
            100,
        );
        assert_eq!(rc.total_entries(), 1, "frozen tier must not grow");
        // Existing evidence still serves.
        assert!(rc.deny(&n("example"), RrType::Aaaa, 150).is_some());
        rc.freeze(false);
        rc.retain(
            &n("other"),
            &chain(&[("other", APEX_TYPES)], 300, 10_000),
            100,
        );
        assert_eq!(rc.total_entries(), 2);
    }

    #[test]
    fn entry_budget_is_a_hard_bound_with_clock_eviction() {
        let rc = RangeCache::with_limits(CacheLimits {
            max_entries: Some(8),
            max_bytes: None,
        });
        for i in 0..50 {
            let zone = n(&format!("z{i}.example"));
            let apex = format!("z{i}.example");
            rc.retain(&zone, &chain(&[(&apex, APEX_TYPES)], 300, 10_000), 0);
            assert!(rc.total_entries() <= 8, "over budget after zone {i}");
        }
        assert_eq!(rc.total_entries(), 8);
        let stats = rc.stats();
        assert_eq!(stats.evicted + 8, stats.puts);
        assert!(stats.occupancy_peak <= 9);
    }

    #[test]
    fn nsec_ranges_synthesize_too() {
        let rc = RangeCache::new();
        let zone = n("example");
        // Canonical order: example < alpha.example < beta.example.
        let mk = |owner: &str, next: &str, types: &[RrType]| ProofRange::Nsec {
            owner: n(owner),
            next: n(next),
            types: TypeBitmap::from_types(types.iter().copied()),
            ttl: 300,
            sig_expiration: 10_000,
        };
        rc.retain(
            &zone,
            &[
                mk("example", "alpha.example", APEX_TYPES),
                mk("alpha.example", "beta.example", &[RrType::Ns]),
                mk("beta.example", "example", &[RrType::Ns]),
            ],
            100,
        );
        // "zz.example" sorts after beta.example → wraparound arc; the
        // wildcard "*.example" sorts before alpha.example → first arc.
        assert!(matches!(
            rc.deny(&n("zz.example"), RrType::A, 150),
            Some(SynthesizedDenial::Nxdomain { ttl: 250 })
        ));
        // Matching NSEC: NODATA for absent type at the apex.
        assert!(matches!(
            rc.deny(&n("example"), RrType::Aaaa, 150),
            Some(SynthesizedDenial::Nodata { .. })
        ));
        // Registered delegation: never denied for A.
        assert_eq!(rc.deny(&n("alpha.example"), RrType::A, 150), None);
    }

    #[test]
    fn canonical_key_orders_like_rfc_4034() {
        // RFC 4034 §6.1 example ordering (subset).
        let ordered = [
            "example",
            "a.example",
            "yljkjljk.a.example",
            "z.a.example",
            "zabc.a.example",
            "z.example",
        ];
        let keys: Vec<Vec<u8>> = ordered.iter().map(|s| canonical_key(&n(s))).collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "canonical order violated");
        }
    }

    #[test]
    fn mismatched_nsec3_params_are_ignored() {
        let rc = RangeCache::new();
        let zone = n("example");
        rc.retain(&zone, &chain(&[("example", APEX_TYPES)], 300, 10_000), 100);
        let alien = ProofRange::Nsec3 {
            iterations: 5,
            salt: vec![0x01],
            flags: 0,
            owner_hash: vec![0u8; 20],
            next_hash: vec![0xffu8; 20],
            types: TypeBitmap::new(),
            ttl: 300,
            sig_expiration: 10_000,
        };
        rc.retain(&zone, &[alien], 100);
        assert_eq!(rc.total_entries(), 1, "alien-parameter range ignored");
    }
}
