//! Resolver configuration: root hints, trust anchor, limits, retry
//! policy — constructed through [`ResolverConfig::builder()`].

use crate::retry::RetryPolicy;
use ede_wire::{Name, Rdata};
use std::net::IpAddr;

/// One root server hint (name + address), as in a `root.hints` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootHint {
    /// Root server name (informational).
    pub name: Name,
    /// Root server address.
    pub addr: IpAddr,
}

/// Static resolver configuration.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`ResolverConfig::default()`], [`ResolverConfig::with_roots()`], or
/// the fluent [`ResolverConfig::builder()`], then adjust individual
/// public fields. Struct-literal construction outside this crate no
/// longer compiles, which is what lets new knobs (like [`retry`]) land
/// without a breaking change.
///
/// [`retry`]: ResolverConfig::retry
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ResolverConfig {
    /// Where resolution starts.
    pub root_hints: Vec<RootHint>,
    /// DS-form trust anchor(s) for the root zone (RFC 4035 §4.4). Empty
    /// disables validation entirely (a non-validating resolver).
    pub trust_anchors: Vec<Rdata>,
    /// Source address used for queries (ACLs see this).
    pub source_addr: IpAddr,
    /// Referral-depth limit for one resolution.
    pub max_referrals: usize,
    /// Recursion limit for out-of-bailiwick nameserver lookups and CNAME
    /// chains.
    pub max_depth: usize,
    /// How many addresses of a zone's NS set to try before giving up.
    pub max_servers_per_zone: usize,
    /// Enable the answer/failure cache.
    pub enable_cache: bool,
    /// Serve expired cache entries when live resolution fails
    /// (RFC 8767); produces EDE 3 / 19.
    pub serve_stale: bool,
    /// How long after expiry an entry may still be served stale, seconds.
    pub stale_window_secs: u32,
    /// TTL for cached resolution failures (SERVFAIL), seconds — the
    /// substrate of EDE 13 (*Cached Error*).
    pub failure_ttl_secs: u32,
    /// Hard bound on shared-cache entries (`None` = unbounded). When a
    /// put would exceed it, the cache evicts expired entries first and
    /// then live ones in CLOCK order. Eviction can change what a later
    /// resolution observes (a replay becomes a live walk), so bounded
    /// configurations trade bit-identical reproducibility for bounded
    /// memory — see `docs/PERFORMANCE.md`.
    pub max_cache_entries: Option<usize>,
    /// Hard bound on the shared cache's estimated heap footprint in
    /// bytes (`None` = unbounded). Same eviction and reproducibility
    /// trade-off as [`max_cache_entries`](Self::max_cache_entries).
    pub max_cache_bytes: Option<usize>,
    /// DNS Error Reporting (RFC 9567): when set to an (agent domain,
    /// agent server address) pair, every EDE-carrying resolution also
    /// fires a report query toward the agent. The address stands in for
    /// resolving the agent's own NS set — a documented simplification.
    pub error_reporting: Option<(Name, IpAddr)>,
    /// QNAME minimization (RFC 7816): expose only one additional label
    /// per zone while walking referrals (probing with NS queries), in
    /// the "relaxed" style deployed resolvers use. Off by default.
    pub qname_minimization: bool,
    /// RFC 8198 aggressive use of the DNSSEC-validated cache: retain
    /// NSEC/NSEC3 ranges from validated denial and insecure-delegation
    /// proofs in a range-keyed cache tier, and answer later queries
    /// falling inside a still-valid range with a synthesized
    /// NXDOMAIN/NODATA instead of asking the authority. Off by default
    /// (the historical behaviour); even when on, the per-vendor gate
    /// [`crate::Vendor::synthesizes_denial`] must also agree.
    pub synthesize_denial: bool,
    /// Hard bound on range-tier entries (`None` = unbounded). Same
    /// CLOCK-eviction trade-off as [`max_cache_entries`](Self::max_cache_entries).
    pub max_range_entries: Option<usize>,
    /// Hard bound on the range tier's estimated heap footprint in bytes
    /// (`None` = unbounded).
    pub max_range_bytes: Option<usize>,
    /// How failed exchanges are retried, backed off, and hedged. The
    /// default is [`RetryPolicy::none()`] — one shot per server in
    /// referral order, exactly the historical behaviour — so pinned
    /// traces and the Table 4 matrix are unaffected. Opt into
    /// [`RetryPolicy::default()`] for the hardened profile.
    pub retry: RetryPolicy,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            root_hints: Vec::new(),
            trust_anchors: Vec::new(),
            source_addr: "192.0.32.59".parse().expect("valid"),
            max_referrals: 24,
            max_depth: 8,
            max_servers_per_zone: 4,
            enable_cache: true,
            serve_stale: true,
            stale_window_secs: 3 * 86_400,
            failure_ttl_secs: 30,
            max_cache_entries: None,
            max_cache_bytes: None,
            error_reporting: None,
            qname_minimization: false,
            synthesize_denial: false,
            max_range_entries: None,
            max_range_bytes: None,
            retry: RetryPolicy::none(),
        }
    }
}

impl ResolverConfig {
    /// Convenience: configuration with the given hints and anchors.
    pub fn with_roots(root_hints: Vec<RootHint>, trust_anchors: Vec<Rdata>) -> Self {
        ResolverConfig {
            root_hints,
            trust_anchors,
            ..Default::default()
        }
    }

    /// Start a fluent builder from the defaults.
    pub fn builder() -> ResolverConfigBuilder {
        ResolverConfigBuilder {
            config: ResolverConfig::default(),
        }
    }
}

/// Fluent builder for [`ResolverConfig`]; finish with
/// [`build`](ResolverConfigBuilder::build).
///
/// ```
/// use ede_resolver::{ResolverConfig, RetryPolicy};
///
/// let config = ResolverConfig::builder()
///     .failure_ttl_secs(900)
///     .qname_minimization(true)
///     .retry(RetryPolicy::default())
///     .build();
/// assert_eq!(config.failure_ttl_secs, 900);
/// ```
#[derive(Debug, Clone)]
pub struct ResolverConfigBuilder {
    config: ResolverConfig,
}

impl ResolverConfigBuilder {
    /// Set the root hints.
    pub fn root_hints(mut self, hints: Vec<RootHint>) -> Self {
        self.config.root_hints = hints;
        self
    }

    /// Set the DS-form trust anchors.
    pub fn trust_anchors(mut self, anchors: Vec<Rdata>) -> Self {
        self.config.trust_anchors = anchors;
        self
    }

    /// Set both root hints and trust anchors in one step.
    pub fn roots(mut self, hints: Vec<RootHint>, anchors: Vec<Rdata>) -> Self {
        self.config.root_hints = hints;
        self.config.trust_anchors = anchors;
        self
    }

    /// Set the query source address.
    pub fn source_addr(mut self, addr: IpAddr) -> Self {
        self.config.source_addr = addr;
        self
    }

    /// Set the referral-depth limit.
    pub fn max_referrals(mut self, n: usize) -> Self {
        self.config.max_referrals = n;
        self
    }

    /// Set the out-of-bailiwick / CNAME recursion limit.
    pub fn max_depth(mut self, n: usize) -> Self {
        self.config.max_depth = n;
        self
    }

    /// Set how many of a zone's NS addresses are tried.
    pub fn max_servers_per_zone(mut self, n: usize) -> Self {
        self.config.max_servers_per_zone = n;
        self
    }

    /// Enable or disable the answer/failure cache.
    pub fn enable_cache(mut self, on: bool) -> Self {
        self.config.enable_cache = on;
        self
    }

    /// Enable or disable RFC 8767 serve-stale.
    pub fn serve_stale(mut self, on: bool) -> Self {
        self.config.serve_stale = on;
        self
    }

    /// Set the serve-stale window (seconds past expiry).
    pub fn stale_window_secs(mut self, secs: u32) -> Self {
        self.config.stale_window_secs = secs;
        self
    }

    /// Set the failure-cache TTL (seconds).
    pub fn failure_ttl_secs(mut self, secs: u32) -> Self {
        self.config.failure_ttl_secs = secs;
        self
    }

    /// Bound the shared cache to at most `n` entries (`None` =
    /// unbounded, the default).
    pub fn max_cache_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_cache_entries = n;
        self
    }

    /// Bound the shared cache's estimated heap footprint (`None` =
    /// unbounded, the default).
    pub fn max_cache_bytes(mut self, n: Option<usize>) -> Self {
        self.config.max_cache_bytes = n;
        self
    }

    /// Enable RFC 9567 error reporting toward (agent domain, agent
    /// server address).
    pub fn error_reporting(mut self, agent: Name, addr: IpAddr) -> Self {
        self.config.error_reporting = Some((agent, addr));
        self
    }

    /// Enable or disable QNAME minimization.
    pub fn qname_minimization(mut self, on: bool) -> Self {
        self.config.qname_minimization = on;
        self
    }

    /// Enable or disable RFC 8198 aggressive NSEC/NSEC3 synthesis.
    pub fn synthesize_denial(mut self, on: bool) -> Self {
        self.config.synthesize_denial = on;
        self
    }

    /// Bound the range tier to at most `n` retained intervals (`None`
    /// = unbounded, the default).
    pub fn max_range_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_range_entries = n;
        self
    }

    /// Bound the range tier's estimated heap footprint (`None` =
    /// unbounded, the default).
    pub fn max_range_bytes(mut self, n: Option<usize>) -> Self {
        self.config.max_range_bytes = n;
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = policy;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> ResolverConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::ServerSelection;

    #[test]
    fn defaults_are_sane() {
        let c = ResolverConfig::default();
        assert!(c.enable_cache);
        assert!(c.serve_stale);
        assert!(c.max_referrals >= 8);
        assert!(c.failure_ttl_secs > 0);
        // RFC 8198 synthesis is opt-in: pinned traces and fingerprints
        // must be unaffected by the range tier's existence.
        assert!(!c.synthesize_denial);
        // The default retry policy must be the exact-compat baseline:
        // golden traces and the Table 4 matrix depend on it.
        assert_eq!(c.retry, RetryPolicy::none());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let agent: Name = "agent.example.".parse().unwrap();
        let c = ResolverConfig::builder()
            .source_addr("198.51.100.7".parse().unwrap())
            .max_referrals(10)
            .max_depth(4)
            .max_servers_per_zone(2)
            .enable_cache(false)
            .serve_stale(false)
            .stale_window_secs(60)
            .failure_ttl_secs(900)
            .max_cache_entries(Some(10_000))
            .max_cache_bytes(Some(64 << 20))
            .error_reporting(agent.clone(), "203.0.113.9".parse().unwrap())
            .qname_minimization(true)
            .synthesize_denial(true)
            .max_range_entries(Some(4_096))
            .max_range_bytes(Some(1 << 20))
            .retry(RetryPolicy::default().with_hedge_rounds(2))
            .build();
        assert_eq!(c.source_addr.to_string(), "198.51.100.7");
        assert_eq!(c.max_referrals, 10);
        assert_eq!(c.max_depth, 4);
        assert_eq!(c.max_servers_per_zone, 2);
        assert!(!c.enable_cache);
        assert!(!c.serve_stale);
        assert_eq!(c.stale_window_secs, 60);
        assert_eq!(c.failure_ttl_secs, 900);
        assert_eq!(c.max_cache_entries, Some(10_000));
        assert_eq!(c.max_cache_bytes, Some(64 << 20));
        assert_eq!(
            c.error_reporting,
            Some((agent, "203.0.113.9".parse().unwrap()))
        );
        assert!(c.qname_minimization);
        assert!(c.synthesize_denial);
        assert_eq!(c.max_range_entries, Some(4_096));
        assert_eq!(c.max_range_bytes, Some(1 << 20));
        assert_eq!(c.retry.hedge_rounds, 2);
        assert_eq!(c.retry.selection, ServerSelection::SmoothedRtt);
    }
}
