//! Resolver configuration: root hints, trust anchor, limits.

use ede_wire::{Name, Rdata};
use std::net::IpAddr;

/// One root server hint (name + address), as in a `root.hints` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootHint {
    /// Root server name (informational).
    pub name: Name,
    /// Root server address.
    pub addr: IpAddr,
}

/// Static resolver configuration.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Where resolution starts.
    pub root_hints: Vec<RootHint>,
    /// DS-form trust anchor(s) for the root zone (RFC 4035 §4.4). Empty
    /// disables validation entirely (a non-validating resolver).
    pub trust_anchors: Vec<Rdata>,
    /// Source address used for queries (ACLs see this).
    pub source_addr: IpAddr,
    /// Referral-depth limit for one resolution.
    pub max_referrals: usize,
    /// Recursion limit for out-of-bailiwick nameserver lookups and CNAME
    /// chains.
    pub max_depth: usize,
    /// How many addresses of a zone's NS set to try before giving up.
    pub max_servers_per_zone: usize,
    /// Enable the answer/failure cache.
    pub enable_cache: bool,
    /// Serve expired cache entries when live resolution fails
    /// (RFC 8767); produces EDE 3 / 19.
    pub serve_stale: bool,
    /// How long after expiry an entry may still be served stale, seconds.
    pub stale_window_secs: u32,
    /// TTL for cached resolution failures (SERVFAIL), seconds — the
    /// substrate of EDE 13 (*Cached Error*).
    pub failure_ttl_secs: u32,
    /// DNS Error Reporting (RFC 9567): when set to an (agent domain,
    /// agent server address) pair, every EDE-carrying resolution also
    /// fires a report query toward the agent. The address stands in for
    /// resolving the agent's own NS set — a documented simplification.
    pub error_reporting: Option<(Name, IpAddr)>,
    /// QNAME minimization (RFC 7816): expose only one additional label
    /// per zone while walking referrals (probing with NS queries), in
    /// the "relaxed" style deployed resolvers use. Off by default.
    pub qname_minimization: bool,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            root_hints: Vec::new(),
            trust_anchors: Vec::new(),
            source_addr: "192.0.32.59".parse().expect("valid"),
            max_referrals: 24,
            max_depth: 8,
            max_servers_per_zone: 4,
            enable_cache: true,
            serve_stale: true,
            stale_window_secs: 3 * 86_400,
            failure_ttl_secs: 30,
            error_reporting: None,
            qname_minimization: false,
        }
    }
}

impl ResolverConfig {
    /// Convenience: configuration with the given hints and anchors.
    pub fn with_roots(root_hints: Vec<RootHint>, trust_anchors: Vec<Rdata>) -> Self {
        ResolverConfig {
            root_hints,
            trust_anchors,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ResolverConfig::default();
        assert!(c.enable_cache);
        assert!(c.serve_stale);
        assert!(c.max_referrals >= 8);
        assert!(c.failure_ttl_secs > 0);
    }
}
