//! Vendor profiles: capability sets and EDE emission rules for the seven
//! systems the paper tests.
//!
//! A profile has two halves:
//!
//! * [`ValidatorCaps`] — which algorithms/digests the vendor's validator
//!   can use, its minimum key size, and its NSEC3 iteration cap. These
//!   feed *into* validation (Cloudflare treats an Ed448-signed zone as
//!   insecure because it cannot validate it; Knot validates it fine).
//! * an **emission function** mapping a [`Diagnosis`] to the EDE entries
//!   the vendor attaches. Every rule below is a function of structured
//!   finding kinds, derived from the paper's Table 4 (and §4.2 for the
//!   codes only the wild scan exercises). Where two vendors map the same
//!   finding to different codes — the paper's 94 %-disagreement result —
//!   the divergence lives here, visibly.
//!
//! BIND 9.19.9 implements only the serve-stale and policy codes (its
//! DNSSEC EDEs were still on the roadmap at measurement time, §2), so its
//! DNSSEC column is all `None` — reproduced by an emission function that
//! ignores DNSSEC findings entirely.

use crate::diagnosis::{
    AlgStatus, DenialIssue, Diagnosis, DsMismatch, Finding, NegativeKind, NsFailure, SigTarget,
};
use ede_wire::{EdeCode, EdeEntry};
use std::collections::BTreeSet;

/// What a vendor's validator is capable of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidatorCaps {
    /// Supported DNSSEC signing algorithm numbers.
    pub algorithms: BTreeSet<u8>,
    /// Supported DS digest types.
    pub digests: BTreeSet<u8>,
    /// Keys below this modeled size trigger *unsupported key size*.
    pub min_key_bits: u16,
    /// NSEC3 iteration cap before refusing to hash.
    pub nsec3_iteration_cap: u16,
}

impl ValidatorCaps {
    /// Everything a modern open-source validator supports (including
    /// Ed448; GOST and the deprecated RSA/MD5 & DSA family excluded —
    /// RFC 8624 forbids validating with those).
    pub fn full() -> Self {
        ValidatorCaps {
            algorithms: [5, 7, 8, 10, 13, 14, 15, 16].into(),
            digests: [1, 2, 4].into(),
            min_key_bits: 0,
            nsec3_iteration_cap: 150,
        }
    }

    /// Cloudflare's capabilities at measurement time: no Ed448 (§3.3),
    /// no GOST (§4.2.7/§4.2.10), and a minimum key size (§4.2.7).
    pub fn cloudflare() -> Self {
        ValidatorCaps {
            algorithms: [5, 7, 8, 10, 13, 14, 15].into(),
            digests: [1, 2, 4].into(),
            min_key_bits: 1024,
            nsec3_iteration_cap: 150,
        }
    }
}

/// The seven tested systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// BIND 9.19.9.
    Bind9,
    /// Unbound 1.16.2.
    Unbound,
    /// PowerDNS Recursor 4.8.2.
    PowerDns,
    /// Knot Resolver 5.6.0.
    Knot,
    /// Cloudflare DNS (1.1.1.1).
    Cloudflare,
    /// Quad9 (9.9.9.9).
    Quad9,
    /// OpenDNS / Cisco Umbrella.
    OpenDns,
}

impl Vendor {
    /// All seven, in the paper's Table 4 column order.
    pub const ALL: [Vendor; 7] = [
        Vendor::Bind9,
        Vendor::Unbound,
        Vendor::PowerDns,
        Vendor::Knot,
        Vendor::Cloudflare,
        Vendor::Quad9,
        Vendor::OpenDns,
    ];

    /// Whether this vendor turns on RFC 8198 aggressive NSEC/NSEC3
    /// synthesis when the resolver-level knob
    /// ([`crate::ResolverConfig::synthesize_denial`]) requests it.
    /// Deployed vendors differ on defaulting it on: the open-source
    /// validators and the big anycast services ship it (Unbound since
    /// 1.7, BIND since 9.12, Knot/PowerDNS behind a default-on option,
    /// Cloudflare and Quad9 operationally), while OpenDNS — whose
    /// filtering pipeline rewrites NXDOMAIN — does not. The effective
    /// switch is the config knob AND this gate.
    pub fn synthesizes_denial(self) -> bool {
        !matches!(self, Vendor::OpenDns)
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Bind9 => "BIND 9.19.9",
            Vendor::Unbound => "Unbound 1.16.2",
            Vendor::PowerDns => "PowerDNS 4.8.2",
            Vendor::Knot => "Knot 5.6.0",
            Vendor::Cloudflare => "Cloudflare DNS",
            Vendor::Quad9 => "Quad9",
            Vendor::OpenDns => "OpenDNS",
        }
    }
}

/// A vendor profile: caps + emission rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VendorProfile {
    /// Which vendor this is.
    pub vendor: Vendor,
    /// Validation capabilities.
    pub caps: ValidatorCaps,
}

impl VendorProfile {
    /// Profile for a vendor, with that vendor's capability set.
    pub fn new(vendor: Vendor) -> Self {
        let caps = match vendor {
            Vendor::Cloudflare => ValidatorCaps::cloudflare(),
            _ => ValidatorCaps::full(),
        };
        VendorProfile { vendor, caps }
    }

    /// All seven profiles in Table 4 order.
    pub fn all() -> Vec<VendorProfile> {
        Vendor::ALL.into_iter().map(VendorProfile::new).collect()
    }

    /// Map a diagnosis to the EDE entries this vendor attaches.
    pub fn emit(&self, diag: &Diagnosis) -> Vec<EdeEntry> {
        match self.vendor {
            Vendor::Bind9 => emit_bind(diag),
            Vendor::Unbound => emit_unbound(diag),
            Vendor::PowerDns => emit_powerdns(diag),
            Vendor::Knot => emit_knot(diag),
            Vendor::Cloudflare => emit_cloudflare(diag),
            Vendor::Quad9 => emit_quad9(diag),
            Vendor::OpenDns => emit_opendns(diag),
        }
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn bare(code: u16) -> EdeEntry {
    EdeEntry::bare(EdeCode::from_u16(code))
}

fn has(diag: &Diagnosis, pred: impl Fn(&Finding) -> bool) -> bool {
    diag.any(pred)
}

fn stale_entries(diag: &Diagnosis, out: &mut Vec<EdeEntry>) {
    if has(diag, |f| {
        matches!(f, Finding::ServedStale { nxdomain: false })
    }) {
        out.push(bare(3));
    }
    if has(diag, |f| {
        matches!(f, Finding::ServedStale { nxdomain: true })
    }) {
        out.push(bare(19));
    }
}

fn cached_error_entry(diag: &Diagnosis, out: &mut Vec<EdeEntry>) {
    if has(diag, |f| matches!(f, Finding::CachedError)) {
        out.push(bare(13));
    }
}

// ---------------------------------------------------------------------------
// BIND 9.19.9 — serve-stale codes only; DNSSEC EDEs not yet implemented.
// ---------------------------------------------------------------------------

fn emit_bind(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();
    stale_entries(diag, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Unbound 1.16.2 — full DNSSEC coverage, one (most specific) code.
// ---------------------------------------------------------------------------

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_unbound(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();
    stale_entries(diag, &mut out);
    cached_error_entry(diag, &mut out);

    let code = if has(diag, |f| matches!(f, Finding::DsNoMatchingDnskey { .. })) {
        Some(9)
    } else if has(diag, |f| matches!(f, Finding::DnskeySigBogus { .. })) {
        Some(9)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Dnskey
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(9)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DnskeySigMissingByMatchedKey | Finding::DnskeyAllSigsMissing
        )
    }) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::RrsigMissing {
                target: SigTarget::Answer
            } | Finding::NegativeUnsigned { .. }
        )
    }) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Answer
            } | Finding::SignatureNotYetValid {
                target: SigTarget::Answer
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Answer
            } | Finding::SignatureBogus { .. }
        )
    }) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::Absent,
                ..
            }
        )
    }) {
        Some(12)
    } else if has(diag, |f| matches!(f, Finding::DenialProofBroken { .. })) {
        Some(6)
    } else if has(diag, |f| matches!(f, Finding::DenialSigMissing { .. })) {
        Some(12)
    } else if has(diag, |f| matches!(f, Finding::DenialSigBogus { .. })) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::RrsigKeyMissing {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(9)
    } else {
        None
    };
    out.extend(code.map(bare));
    out
}

// ---------------------------------------------------------------------------
// PowerDNS Recursor 4.8.2
// ---------------------------------------------------------------------------

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_powerdns(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();
    stale_entries(diag, &mut out);
    cached_error_entry(diag, &mut out);

    let code = if has(diag, |f| matches!(f, Finding::NoZoneKeyBitSet)) {
        Some(10)
    } else if has(diag, |f| matches!(f, Finding::DsNoMatchingDnskey { .. })) {
        Some(9)
    } else if has(diag, |f| matches!(f, Finding::DnskeySigMissingByMatchedKey)) {
        Some(9)
    } else if has(diag, |f| matches!(f, Finding::DnskeyAllSigsMissing)) {
        Some(10)
    } else if has(diag, |f| matches!(f, Finding::DnskeySigBogus { .. })) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Dnskey
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(8)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::NegativeUnsigned { .. }
                | Finding::RrsigMissing {
                    target: SigTarget::Answer
                }
        )
    }) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Answer
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(8)
    } else if has(diag, |f| matches!(f, Finding::SignatureBogus { .. })) {
        Some(6)
    } else {
        None
    };
    out.extend(code.map(bare));
    out
}

// ---------------------------------------------------------------------------
// Knot Resolver 5.6.0
// ---------------------------------------------------------------------------

const KNOT_LSLC: &str = "LSLC: unsupported digest/key";

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_knot(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();
    stale_entries(diag, &mut out);
    cached_error_entry(diag, &mut out);

    let code = if has(diag, |f| matches!(f, Finding::NoZoneKeyBitSet)) {
        Some(bare(10))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DsUnknownAlgorithm { .. }
                | Finding::DsUnsupportedDigest { .. }
                | Finding::ZoneAlgorithmUnsupported {
                    status: AlgStatus::Deprecated,
                    ..
                }
        )
    }) {
        Some(EdeEntry::with_text(EdeCode::Other, KNOT_LSLC))
    } else if has(diag, |f| matches!(f, Finding::DnskeyAllSigsMissing)) {
        Some(bare(10))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DsNoMatchingDnskey { .. }
                | Finding::DnskeySigMissingByMatchedKey
                | Finding::DnskeySigBogus { .. }
        )
    }) {
        Some(bare(6))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Dnskey
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(bare(7))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(bare(8))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::NegativeUnsigned { .. }
                | Finding::RrsigMissing {
                    target: SigTarget::Answer
                }
        )
    }) {
        Some(bare(10))
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::Absent,
                ..
            }
        )
    }) {
        Some(bare(12))
    } else if has(diag, |f| matches!(f, Finding::DenialProofBroken { .. })) {
        Some(bare(6))
    } else if has(diag, |f| matches!(f, Finding::DenialSigMissing { .. })) {
        Some(bare(10))
    } else if has(diag, |f| matches!(f, Finding::DenialSigBogus { .. })) {
        Some(bare(6))
    } else if has(diag, |f| matches!(f, Finding::SignatureBogus { .. })) {
        Some(bare(6))
    } else {
        None
    };
    out.extend(code);
    out
}

// ---------------------------------------------------------------------------
// Cloudflare DNS — the most specific implementation; emits combinations.
// ---------------------------------------------------------------------------

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_cloudflare(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();

    let primary: Option<EdeEntry> =
        if has(diag, |f| matches!(f, Finding::DsUnsupportedDigest { .. })) {
            Some(bare(2))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DsUnknownAlgorithm {
                    status: AlgStatus::Reserved,
                    ..
                }
            )
        }) {
            Some(EdeEntry::with_text(
                EdeCode::UnsupportedDnskeyAlgorithm,
                "no supported DNSKEY algorithm",
            ))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DsUnknownAlgorithm {
                    status: AlgStatus::Unassigned,
                    ..
                }
            )
        }) {
            Some(bare(9))
        } else if has(diag, |f| {
            matches!(f, Finding::ZoneAlgorithmUnsupported { .. })
        }) {
            Some(EdeEntry::with_text(
                EdeCode::UnsupportedDnskeyAlgorithm,
                "no supported DNSKEY algorithm",
            ))
        } else if has(diag, |f| matches!(f, Finding::UnsupportedKeySize { .. })) {
            Some(EdeEntry::with_text(
                EdeCode::UnsupportedDnskeyAlgorithm,
                "unsupported key size",
            ))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DsNoMatchingDnskey {
                    cause: DsMismatch::TagOrAlgorithm
                }
            )
        }) {
            Some(bare(9))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DsNoMatchingDnskey {
                    cause: DsMismatch::Digest
                }
            )
        }) {
            Some(bare(6))
        } else if has(diag, |f| matches!(f, Finding::DnskeyUnobtainable { .. })) {
            Some(bare(9))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::SignatureExpiredBeforeValid {
                    target: SigTarget::Dnskey
                }
            )
        }) {
            Some(bare(10))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::SignatureExpired {
                    target: SigTarget::Dnskey
                }
            )
        }) {
            Some(bare(7))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::SignatureNotYetValid {
                    target: SigTarget::Dnskey
                }
            )
        }) {
            Some(bare(8))
        } else if has(diag, |f| matches!(f, Finding::DnskeySigBogus { .. })) {
            Some(bare(6))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DnskeySigMissingByMatchedKey | Finding::DnskeyAllSigsMissing
            )
        }) {
            Some(bare(10))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::NegativeUnsigned { .. }
                    | Finding::RrsigMissing {
                        target: SigTarget::Answer
                    }
            )
        }) {
            Some(bare(10))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::SignatureExpired {
                    target: SigTarget::Answer
                } | Finding::SignatureExpiredBeforeValid {
                    target: SigTarget::Answer
                }
            )
        }) {
            Some(bare(7))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::SignatureNotYetValid {
                    target: SigTarget::Answer
                }
            )
        }) {
            Some(bare(8))
        } else if has(diag, |f| matches!(f, Finding::SignatureBogus { .. })) {
            Some(bare(6))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::RrsigKeyMissing {
                    target: SigTarget::Answer
                }
            )
        }) {
            Some(bare(9))
        } else if has(diag, |f| {
            matches!(
                f,
                Finding::DenialProofBroken { .. }
                    | Finding::DenialSigMissing { .. }
                    | Finding::DenialSigBogus { .. }
            )
        }) {
            Some(bare(6))
        } else if let Some(Finding::InsecureReferralProofMissing) = diag
            .findings
            .iter()
            .find(|f| matches!(f, Finding::InsecureReferralProofMissing))
        {
            Some(EdeEntry::with_text(
                EdeCode::NsecMissing,
                "failed to verify an insecure referral proof",
            ))
        } else if has(diag, |f| {
            matches!(f, Finding::Nsec3IterationsExceeded { .. })
        }) {
            Some(EdeEntry::with_text(
                EdeCode::Other,
                "iteration limit exceeded",
            ))
        } else if has(diag, |f| matches!(f, Finding::StandbyKeyWithoutRrsig)) {
            // NOERROR + EDE: key rollover in progress / stand-by key (§4.2.3).
            Some(bare(10))
        } else {
            None
        };
    out.extend(primary);

    // Invalid Data (24): EDNS-oblivious servers (§4.2.6).
    if let Some(Finding::EdnsNotSupported { addr }) = diag
        .findings
        .iter()
        .find(|f| matches!(f, Finding::EdnsNotSupported { .. }))
    {
        out.push(EdeEntry::with_text(
            EdeCode::InvalidData,
            format!("Mismatched question from the authoritative server {addr}"),
        ));
    }

    stale_entries(diag, &mut out);
    cached_error_entry(diag, &mut out);

    // Connectivity: 22 when the whole NS set failed; 23 with the
    // offending server in EXTRA-TEXT only for *spoken* failures (an
    // RCODE arrived). Timeouts and unroutable glue stay silent on 23 —
    // §4.2.11 shows unresponsive-nameserver stale answers carrying
    // {3, 22} without a Network Error.
    if has(diag, |f| matches!(f, Finding::AllServersFailed { .. })) {
        out.push(bare(22));
    }
    if let Some(ev) = diag.ns_events.iter().find(|e| e.failure.is_rcode_failure()) {
        out.push(EdeEntry::with_text(
            EdeCode::NetworkError,
            format!(
                "{}:53 {} for {} {}",
                ev.addr, ev.failure, ev.qname, ev.qtype
            ),
        ));
    }

    out
}

// ---------------------------------------------------------------------------
// Quad9
// ---------------------------------------------------------------------------

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_quad9(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();

    let answer_key_missing = has(diag, |f| {
        matches!(
            f,
            Finding::RrsigKeyMissing {
                target: SigTarget::Answer
            }
        )
    });

    let code = if has(diag, |f| matches!(f, Finding::NoZoneKeyBitSet)) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DnskeySigBogus {
                some_sig_valid: true,
                ..
            }
        )
    }) {
        Some(6)
    } else if answer_key_missing
        && has(diag, |f| {
            matches!(
                f,
                Finding::DnskeySigBogus {
                    zsk_present: true,
                    ..
                }
            )
        })
    {
        // A zone-key ZSK is still published and the answer's RRSIG points
        // at a tag that no longer exists: Quad9 reports generic bogus.
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DsNoMatchingDnskey { .. }
                | Finding::DnskeySigBogus { .. }
                | Finding::DnskeyAllSigsMissing
                | Finding::DnskeySigMissingByMatchedKey
                | Finding::SignatureNotYetValid {
                    target: SigTarget::Dnskey
                }
                | Finding::SignatureExpiredBeforeValid {
                    target: SigTarget::Dnskey
                }
        )
    }) {
        Some(9)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Dnskey
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::RrsigMissing {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(8)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::NegativeUnsigned {
                kind: NegativeKind::Nodata
            }
        )
    }) {
        Some(9)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::NegativeUnsigned {
                kind: NegativeKind::Nxdomain
            }
        )
    }) {
        Some(10)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::Absent,
                kind: NegativeKind::Nodata
            }
        )
    }) {
        Some(9)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::OwnerMismatch | DenialIssue::ChainMismatch,
                ..
            }
        )
    }) {
        Some(6)
    } else if has(diag, |f| matches!(f, Finding::DenialSigMissing { .. })) {
        Some(9)
    } else if has(diag, |f| matches!(f, Finding::SignatureBogus { .. })) {
        Some(6)
    } else {
        None
    };
    out.extend(code.map(bare));
    out
}

// ---------------------------------------------------------------------------
// OpenDNS
// ---------------------------------------------------------------------------

#[allow(clippy::if_same_then_else)] // each arm is one Table 4 rule
fn emit_opendns(diag: &Diagnosis) -> Vec<EdeEntry> {
    let mut out = Vec::new();

    let code = if has(diag, |f| {
        matches!(
            f,
            Finding::DsNoMatchingDnskey { .. }
                | Finding::DsUnknownAlgorithm { .. }
                | Finding::DnskeySigBogus { .. }
                | Finding::DnskeyAllSigsMissing
                | Finding::DnskeySigMissingByMatchedKey
                | Finding::NoZoneKeyBitSet
                | Finding::SignatureExpired {
                    target: SigTarget::Dnskey
                }
                | Finding::SignatureNotYetValid {
                    target: SigTarget::Dnskey
                }
                | Finding::SignatureExpiredBeforeValid {
                    target: SigTarget::Dnskey
                }
        )
    }) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureExpired {
                target: SigTarget::Answer
            } | Finding::SignatureExpiredBeforeValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(7)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::SignatureNotYetValid {
                target: SigTarget::Answer
            }
        )
    }) {
        Some(8)
    } else if has(diag, |f| matches!(f, Finding::SignatureBogus { .. })) {
        Some(6)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::Absent | DenialIssue::OwnerMismatch,
                ..
            } | Finding::DenialSigMissing { .. }
        )
    }) {
        Some(12)
    } else if has(diag, |f| {
        matches!(
            f,
            Finding::DenialProofBroken {
                issue: DenialIssue::ChainMismatch,
                ..
            } | Finding::DenialSigBogus { .. }
                | Finding::NegativeUnsigned { .. }
        )
    }) {
        Some(6)
    } else if diag
        .ns_events
        .iter()
        .any(|e| e.failure == NsFailure::Refused)
    {
        // The paper's "unexpected in this context" observation (§3.3):
        // OpenDNS answers Prohibited (18) when authorities refuse it.
        Some(18)
    } else {
        None
    };
    out.extend(code.map(bare));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::NsEvent;
    use ede_wire::{Name, RrType};

    fn diag_with(findings: Vec<Finding>) -> Diagnosis {
        let mut d = Diagnosis::new();
        for f in findings {
            d.add(f);
        }
        d
    }

    fn codes(entries: &[EdeEntry]) -> Vec<u16> {
        entries.iter().map(|e| e.code.to_u16()).collect()
    }

    #[test]
    fn bind_ignores_dnssec_findings() {
        let d = diag_with(vec![Finding::DsNoMatchingDnskey {
            cause: DsMismatch::TagOrAlgorithm,
        }]);
        assert!(VendorProfile::new(Vendor::Bind9).emit(&d).is_empty());
    }

    #[test]
    fn bind_emits_stale() {
        let d = diag_with(vec![Finding::ServedStale { nxdomain: false }]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Bind9).emit(&d)), vec![3]);
        let d = diag_with(vec![Finding::ServedStale { nxdomain: true }]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Bind9).emit(&d)), vec![19]);
    }

    #[test]
    fn vendors_disagree_on_ds_mismatch() {
        // The ds-bad-tag row of Table 4: None/9/9/6/9/9/6.
        let d = diag_with(vec![Finding::DsNoMatchingDnskey {
            cause: DsMismatch::TagOrAlgorithm,
        }]);
        let got: Vec<Vec<u16>> = VendorProfile::all()
            .iter()
            .map(|p| codes(&p.emit(&d)))
            .collect();
        assert_eq!(
            got,
            vec![vec![], vec![9], vec![9], vec![6], vec![9], vec![9], vec![6]]
        );
    }

    #[test]
    fn cloudflare_combines_connectivity_codes() {
        let mut d = diag_with(vec![
            Finding::DnskeyUnobtainable {
                failure: NsFailure::Refused,
            },
            Finding::AllServersFailed {
                any_rcode_failure: true,
            },
        ]);
        d.add_event(NsEvent {
            addr: "192.0.2.1".parse().unwrap(),
            failure: NsFailure::Refused,
            qname: Name::parse("x.example").unwrap(),
            qtype: RrType::A,
        });
        let entries = VendorProfile::new(Vendor::Cloudflare).emit(&d);
        assert_eq!(codes(&entries), vec![9, 22, 23]);
        let net = entries.last().unwrap();
        assert!(net.extra_text.contains("rcode=REFUSED"));
        assert!(net.extra_text.contains("192.0.2.1:53"));
    }

    #[test]
    fn cloudflare_silent_on_unroutable_network_error() {
        // Bad-glue testbed rows: only 22, never 23.
        let mut d = diag_with(vec![Finding::AllServersFailed {
            any_rcode_failure: false,
        }]);
        d.add_event(NsEvent {
            addr: "10.0.0.1".parse().unwrap(),
            failure: NsFailure::Unroutable,
            qname: Name::parse("x.example").unwrap(),
            qtype: RrType::A,
        });
        assert_eq!(
            codes(&VendorProfile::new(Vendor::Cloudflare).emit(&d)),
            vec![22]
        );
    }

    #[test]
    fn opendns_prohibited_on_refusal() {
        let mut d = Diagnosis::new();
        d.add(Finding::AllServersFailed {
            any_rcode_failure: true,
        });
        d.add_event(NsEvent {
            addr: "192.0.2.1".parse().unwrap(),
            failure: NsFailure::Refused,
            qname: Name::parse("x.example").unwrap(),
            qtype: RrType::A,
        });
        assert_eq!(
            codes(&VendorProfile::new(Vendor::OpenDns).emit(&d)),
            vec![18]
        );
    }

    #[test]
    fn quad9_distinguishes_dnskey_bogus_shapes() {
        // bad-rrsig-ksk: a valid non-KSK signature exists → 6.
        let d = diag_with(vec![Finding::DnskeySigBogus {
            zsk_present: true,
            some_sig_valid: true,
        }]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Quad9).emit(&d)), vec![6]);

        // bad-rrsig-dnskey: nothing verifies, ZSK present, answer tag OK → 9.
        let d = diag_with(vec![Finding::DnskeySigBogus {
            zsk_present: true,
            some_sig_valid: false,
        }]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Quad9).emit(&d)), vec![9]);

        // bad-zsk: nothing verifies AND the answer references a gone tag → 6.
        let d = diag_with(vec![
            Finding::DnskeySigBogus {
                zsk_present: true,
                some_sig_valid: false,
            },
            Finding::RrsigKeyMissing {
                target: SigTarget::Answer,
            },
        ]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Quad9).emit(&d)), vec![6]);

        // no-zsk: no ZSK at all → 9.
        let d = diag_with(vec![
            Finding::DnskeySigBogus {
                zsk_present: false,
                some_sig_valid: false,
            },
            Finding::RrsigKeyMissing {
                target: SigTarget::Answer,
            },
        ]);
        assert_eq!(codes(&VendorProfile::new(Vendor::Quad9).emit(&d)), vec![9]);
    }

    #[test]
    fn no_vendor_maps_synthesized_denial_to_an_ede() {
        // The RFC 8198 contract: a synthesized denial must be
        // EDE-indistinguishable from the live denial it replaces, so
        // the marker finding is invisible to every emission function.
        let d = diag_with(vec![
            Finding::SynthesizedDenial {
                kind: NegativeKind::Nxdomain,
            },
            Finding::SynthesizedDenial {
                kind: NegativeKind::Nodata,
            },
        ]);
        for p in VendorProfile::all() {
            assert!(p.emit(&d).is_empty(), "{:?} emitted", p.vendor);
        }
    }

    #[test]
    fn opendns_is_the_only_vendor_gating_synthesis_off() {
        let on: Vec<Vendor> = Vendor::ALL
            .into_iter()
            .filter(|v| v.synthesizes_denial())
            .collect();
        assert_eq!(on.len(), 6);
        assert!(!Vendor::OpenDns.synthesizes_denial());
    }

    #[test]
    fn cloudflare_caps_lack_ed448() {
        assert!(!ValidatorCaps::cloudflare().algorithms.contains(&16));
        assert!(ValidatorCaps::full().algorithms.contains(&16));
    }

    #[test]
    fn knot_lslc_text() {
        let d = diag_with(vec![Finding::DsUnknownAlgorithm {
            status: AlgStatus::Unassigned,
            algorithm: 100,
        }]);
        let entries = VendorProfile::new(Vendor::Knot).emit(&d);
        assert_eq!(codes(&entries), vec![0]);
        assert_eq!(entries[0].extra_text, KNOT_LSLC);
    }
}
