//! The EDE-capable validating iterative resolver — the paper's primary
//! measurement instrument, rebuilt.
//!
//! # Architecture: diagnosis vs. emission
//!
//! The paper's central observation is that seven resolver implementations
//! facing the *same* broken zone return *different* Extended DNS Error
//! codes — 94 % of testbed cases disagree — yet all of them are
//! "correct": they map one underlying condition onto differently-specific
//! INFO-CODEs. This crate models that separation explicitly:
//!
//! * the **engine** ([`iterative`] + [`validate`]) performs full
//!   iterative resolution (root priming, referrals, glue, CNAME chasing,
//!   retries over a zone's NS set) and DNSSEC chain-of-trust validation,
//!   recording every protocol-visible condition as a structured
//!   [`diagnosis::Finding`];
//! * a **vendor profile** ([`profiles`]) is a pure function from a
//!   [`diagnosis::Diagnosis`] to the list of [`ede_wire::EdeEntry`]s that
//!   vendor attaches, plus a capability set (supported algorithms,
//!   digests, NSEC3 iteration cap) that feeds back into validation.
//!
//! Profiles for BIND 9.19.9, Unbound 1.16.2, PowerDNS Recursor 4.8.2,
//! Knot Resolver 5.6.0, Cloudflare DNS, Quad9 and OpenDNS are derived
//! from the paper's Table 4 and vendor documentation; their rules are
//! functions of finding *kinds* only, never of query names.
//!
//! The [`cache`] implements positive, negative and failure caching with
//! RFC 8767 serve-stale — the substrate behind EDE 3 (*Stale Answer*),
//! 13 (*Cached Error*) and 19 (*Stale NXDOMAIN Answer*). It is tiered:
//! a private per-worker L1 ([`cache::l1`], lock-free by construction),
//! the shared bounded L2 with TTL-wheel expiry and CLOCK eviction
//! ([`cache::Cache`]), an infrastructure cache for the referral
//! walk's hot path ([`cache::infra`]), and a range-keyed tier of
//! DNSSEC-validated NSEC/NSEC3 intervals ([`cache::ranges`]) that,
//! when [`ResolverConfig::synthesize_denial`] and the vendor gate
//! agree, answers misses with a synthesized denial before any network
//! send (RFC 8198 aggressive use). A [`policy`] layer reproduces
//! blocklist-style codes (4, 15–18).
//!
//! # Execution model
//!
//! Resolutions are *resumable tasks*: the engine suspends on every
//! network exchange and retry timer, and a [`task::ResolutionPool`]
//! multiplexes thousands of suspended resolutions on one thread by
//! draining a deterministic completion-event queue. The blocking
//! [`Resolver::resolve`] call still exists (it drives a single task
//! inline and is bit-identical to the historical blocking engine);
//! [`Resolver::resolve_on`] is the pool-facing shape. The full model —
//! states, transitions, event ordering, determinism rules — is
//! specified in `docs/CONCURRENCY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod diagnosis;
pub mod explain;
pub mod forwarder;
pub mod iterative;
pub mod policy;
pub mod profiles;
pub mod reporting;
pub mod resolver;
pub mod retry;
pub mod task;
pub mod validate;

pub use cache::infra::{InfraCache, InfraStatsSnapshot, ReferralEntry};
pub use cache::l1::{L1Cache, L1StatsSnapshot};
pub use cache::ranges::{ProofRange, RangeCache, SynthesizedDenial};
pub use cache::{Cache, CacheHit, CacheLimits, CacheStatsSnapshot, CachedResolution};
pub use config::{ResolverConfig, ResolverConfigBuilder};
pub use diagnosis::{Diagnosis, Finding, NsFailure, ValidationState};
pub use profiles::{Vendor, VendorProfile};
pub use resolver::{Resolution, Resolver};
pub use retry::{RetryPolicy, ServerSelection, SrttTable};
pub use task::{ResolutionPool, TaskHandle};
