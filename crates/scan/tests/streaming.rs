//! Streaming-analytics contracts (see `docs/OBSERVABILITY.md`):
//!
//! * the streaming aggregation is **bit-identical to the batch fold**
//!   at every (workers, inflight) cross-point, with sinks attached and
//!   the sweep running;
//! * the export **cadence cannot change results** — only how many
//!   mid-scan progress snapshots fan out;
//! * the query-log ring is **bounded**: a capacity far below the record
//!   count keeps peak occupancy at the cap, spills rotated records as
//!   loadable JSONL, and still produces a fingerprint-identical report;
//! * `scan_json` is **versioned and DTO-generated**: the golden test
//!   pins `schema_version` and the key set.

use ede_scan::aggregate::PartialAggregate;
use ede_scan::query::load_jsonl;
use ede_scan::scanner::{scan, scan_streaming, ScanConfig};
use ede_scan::{Population, PopulationConfig, QueryRecord};
use ede_trace::{MemorySnapshotSink, SnapshotSink};
use std::collections::BTreeMap;
use std::sync::Arc;

fn tiny_pop() -> Population {
    Population::generate(PopulationConfig::tiny())
}

/// Streaming (sinks attached, tight cadence) must equal the plain batch
/// scan at every (workers, inflight) cross-point — including a sweep
/// leg, which must also agree with itself across configurations.
#[test]
fn streaming_is_bit_identical_to_batch_at_every_cross_point() {
    let pop = tiny_pop();
    let baseline_world = ede_scan::ScanWorld::build(&pop);
    let baseline = scan(
        &pop,
        &baseline_world,
        &ScanConfig::builder().workers(1).build(),
    );

    for (workers, inflight) in [(1, 1), (4, 1), (1, 32), (4, 16)] {
        let sink = Arc::new(MemorySnapshotSink::new());
        let world = ede_scan::ScanWorld::build(&pop);
        let config = ScanConfig::builder()
            .workers(workers)
            .inflight(inflight)
            .snapshot_cadence_secs(1)
            .build();
        let streaming = scan_streaming(
            &pop,
            &world,
            &config,
            &[Arc::clone(&sink) as Arc<dyn SnapshotSink>],
        );
        assert!(
            baseline.stats.same_results(&streaming.stats),
            "results diverged at workers={workers} inflight={inflight}"
        );
        assert_eq!(
            baseline.stats.fingerprint, streaming.stats.fingerprint,
            "fingerprint diverged at workers={workers} inflight={inflight}"
        );
        assert_eq!(
            baseline.final_records(),
            streaming.final_records(),
            "records diverged at workers={workers} inflight={inflight}"
        );
        assert_eq!(baseline.traffic, streaming.traffic);
        // The final complete snapshot reached the sink.
        let entries = sink.entries();
        assert!(!entries.is_empty(), "nothing exported");
        let last = &entries[entries.len() - 1].json;
        assert!(last.contains("\"complete\": true"), "final export missing");
        assert!(last.contains(&format!(
            "\"fingerprint\": \"{:016x}\"",
            streaming.stats.fingerprint
        )));
    }

    // Sweep cross-point: synthesis + sweep streaming at two
    // configurations must agree with each other on everything,
    // including the sweep report.
    let run_sweep = |workers: usize, inflight: usize| {
        let world = ede_scan::ScanWorld::build(&pop);
        let config = ScanConfig::builder()
            .workers(workers)
            .inflight(inflight)
            .synthesize(true)
            .sweep_ratio(1.5)
            .snapshot_cadence_secs(1)
            .build();
        let sink = Arc::new(MemorySnapshotSink::new());
        scan_streaming(
            &pop,
            &world,
            &config,
            &[Arc::clone(&sink) as Arc<dyn SnapshotSink>],
        )
    };
    let sweep_a = run_sweep(1, 1);
    let sweep_b = run_sweep(4, 16);
    assert!(sweep_a.stats.same_results(&sweep_b.stats));
    assert_eq!(sweep_a.sweep, sweep_b.sweep);
    assert_eq!(sweep_a.traffic, sweep_b.traffic);
    // And the sweep leg's *results* equal the sweep-free baseline.
    assert!(baseline.stats.same_results(&sweep_a.stats));
}

/// The export cadence is an observability knob, never a results knob:
/// 0 (final-only), 1 s, and 7 s cadences must produce identical final
/// snapshots — only the number of mid-scan exports may differ.
#[test]
fn export_cadence_cannot_change_results() {
    let pop = tiny_pop();
    let mut fingerprints = Vec::new();
    let mut exports = Vec::new();
    for cadence in [0u64, 1, 7] {
        let sink = Arc::new(MemorySnapshotSink::new());
        let world = ede_scan::ScanWorld::build(&pop);
        let config = ScanConfig::builder()
            .workers(4)
            .snapshot_cadence_secs(cadence)
            .build();
        let result = scan_streaming(
            &pop,
            &world,
            &config,
            &[Arc::clone(&sink) as Arc<dyn SnapshotSink>],
        );
        fingerprints.push(result.stats.fingerprint);
        exports.push(sink.len());
        // Every exported document is internally consistent JSON with
        // the pinned schema version.
        for entry in sink.entries() {
            assert!(entry.json.starts_with('{'), "not a JSON document");
            assert!(entry.json.contains("\"schema_version\": 1"));
        }
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[1], fingerprints[2]);
    // Cadence 0 exports exactly the final snapshot; cadence 1 at least
    // as many as cadence 7.
    assert_eq!(exports[0], 1, "cadence 0 must export final-only");
    assert!(exports[1] >= exports[2], "tighter cadence exported less");
    assert!(exports[1] > 1, "1 s cadence never exported mid-scan");
}

/// A ring far smaller than the record count: bounded peak occupancy,
/// rotated records spilled as loadable JSONL, and a report that is
/// fingerprint-identical to the unbounded scan — the aggregation never
/// depended on the buffer.
#[test]
fn bounded_ring_spills_and_keeps_the_report_identical() {
    let pop = tiny_pop();
    let unbounded_world = ede_scan::ScanWorld::build(&pop);
    let unbounded = scan(
        &pop,
        &unbounded_world,
        &ScanConfig::builder().workers(4).build(),
    );
    assert!(
        unbounded.records.len() > 512,
        "population too small for this test"
    );

    let dir = std::env::temp_dir().join(format!("ede-stream-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let spill = dir.join("spill.jsonl");

    const CAPACITY: usize = 256;
    let world = ede_scan::ScanWorld::build(&pop);
    let config = ScanConfig::builder()
        .workers(4)
        .query_log_capacity(CAPACITY)
        .query_log_spill(Some(spill.clone()))
        .build();
    let bounded = scan(&pop, &world, &config);

    // Bounded memory, identical report.
    assert!(
        bounded.log.peak <= CAPACITY,
        "peak {} > cap",
        bounded.log.peak
    );
    assert!(bounded.records.len() <= CAPACITY);
    assert!(bounded.log.spilled > 0, "nothing spilled");
    assert_eq!(bounded.log.dropped, 0, "spill configured, nothing may drop");
    assert!(unbounded.stats.same_results(&bounded.stats));
    assert_eq!(unbounded.stats.fingerprint, bounded.stats.fingerprint);

    // Spill + retained ring = the complete record stream: replaying the
    // last-wins record per domain through a fresh fold reproduces the
    // scan fingerprint exactly.
    let mut all: Vec<QueryRecord> = load_jsonl(&spill).expect("load spill");
    assert_eq!(all.len() as u64, bounded.log.spilled);
    all.extend(bounded.records.iter().cloned());
    all.sort_by_key(|r| r.seq);
    assert_eq!(all.len(), bounded.resolutions);
    let mut last: BTreeMap<usize, &QueryRecord> = BTreeMap::new();
    for r in &all {
        last.insert(r.domain, r);
    }
    assert_eq!(last.len(), pop.domains.len(), "a domain's records vanished");
    let mut replay = PartialAggregate::default();
    for r in last.values() {
        replay.fold(r);
    }
    assert_eq!(
        replay.fingerprint(),
        bounded.stats.fingerprint,
        "replaying the spilled stream must reproduce the scan fingerprint"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Golden schema pin for the versioned scan JSON: `schema_version` is 1
/// and the document carries exactly the expected top-level keys, in
/// order. Bumping the schema requires touching this test — that is the
/// point.
#[test]
fn scan_json_schema_is_pinned() {
    let pop = tiny_pop();
    let world = ede_scan::ScanWorld::build(&pop);
    let result = scan(&pop, &world, &ScanConfig::builder().workers(4).build());
    let json = ede_scan::report::scan_json(&result.stats);

    assert_eq!(ede_scan::stats::v1::SCHEMA_VERSION, 1);
    assert!(json.contains("\"schema_version\": 1,"));

    let expected_keys = [
        "schema_version",
        "seq",
        "vtime_ms",
        "complete",
        "scale",
        "fingerprint",
        "ede",
        "tlds",
        "ranks",
        "cache",
        "traffic",
        "query_log",
    ];
    // Top-level keys are exactly two-space indented in the document.
    let mut found = Vec::new();
    for line in json.lines() {
        if let Some(rest) = line.strip_prefix("  \"") {
            if line.starts_with("   ") {
                continue;
            }
            if let Some((key, _)) = rest.split_once('"') {
                found.push(key.to_string());
            }
        }
    }
    assert_eq!(
        found,
        expected_keys.to_vec(),
        "top-level schema drifted without a version bump"
    );

    // Nested result keys the consumers rely on.
    for key in [
        "total_domains",
        "ede_domains",
        "noerror_with_ede",
        "servfail_domains",
        "per_code",
        "per_combo",
        "nameservers",
        "gtld_zero_fraction",
        "tranco_size",
        "queries_per_domain",
        "capacity",
        "spilled",
    ] {
        assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
    }
    assert!(json.contains("\"complete\": true"));
}
