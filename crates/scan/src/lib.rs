//! Section 4 of the paper at (scaled) Internet scale: synthetic domain
//! population, scan world, scanner, aggregation, and the report
//! generators for every table and figure.
//!
//! The paper resolves 303 M registered domains through Cloudflare DNS
//! and reads the Extended DNS Errors that come back. This crate
//! reproduces that pipeline end-to-end at a configurable scale factor
//! (default 1:1000):
//!
//! 1. [`population`] generates a registered-domain population across
//!    ~1,475 TLDs with misconfigurations *planted* at rates calibrated
//!    to §4.2's observed counts — but the planted conditions are root
//!    causes (a REFUSED nameserver, a missing RRSIG, a stand-by TLD
//!    key), never EDE codes;
//! 2. [`world`] materializes the population as a simulated internet of
//!    synthetic-but-faithful servers (a real signed root zone, per-TLD
//!    referral servers, shared hosting servers with per-address fault
//!    modes);
//! 3. [`scanner`] drives a Cloudflare-profile resolver over the whole
//!    input list from a scoped worker pool (collecting live metrics
//!    through the `ede-trace` pipeline), with a revisit pass that
//!    exercises the serve-stale and cached-error paths — results stream
//!    out as they happen: per-chunk partial aggregates merge into a
//!    shared snapshot store ([`stream`]) and records land in a bounded
//!    query-log ring ([`querylog`]), so there is no end-of-scan
//!    aggregation barrier and no unbounded outcome buffer;
//! 4. [`aggregate`] and [`stats`] compute the paper's numbers: the
//!    §4.2 per-INFO-CODE inventory, nameserver concentration, Figure 1's
//!    per-TLD CDFs, and Figure 2's Tranco-rank distribution — exposed
//!    as the versioned typed DTOs in [`stats::v1`];
//! 5. [`report`] renders each table/figure from those DTOs, [`query`]
//!    filters the query log (live or from JSONL traces), and the
//!    `repro-*` binaries regenerate everything from the command line;
//! 6. [`chaos`] sweeps `ede-netsim` fault-plan intensity over the scan
//!    world (the `repro-chaos` binary) and reports how the EDE-code
//!    inventory shifts under loss, corruption, and truncation — with
//!    the intensity-0 leg pinned bit-identical to the plain scan.
//!
//! Every number reported is *measured* through the resolver — the
//! planting only decides what is broken, the pipeline decides what EDE
//! codes that brokenness produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod chaos;
pub mod population;
pub mod query;
pub mod querylog;
pub mod report;
pub mod rng;
pub mod scanner;
pub mod stats;
pub mod stream;
pub mod world;

pub use chaos::{campaign, ChaosConfig, ChaosLeg, ChaosReport};
pub use population::{Category, DomainRecord, Population, PopulationConfig};
pub use query::{FilterSummary, QueryFilter};
pub use querylog::{QueryLog, QueryLogStats, QueryRecord};
pub use scanner::{scan, scan_streaming, ScanConfig, ScanConfigBuilder, ScanResult, SweepReport};
pub use stats::v1::StatsSnapshot;
pub use stream::StreamReport;
pub use world::ScanWorld;
