//! A small deterministic PRNG for population synthesis.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood 2014): 64 bits of
//! state, a full 2^64 period over the counter, and excellent avalanche
//! behavior — far more than enough for planting misconfiguration
//! categories. Keeping it in-tree makes the scan reproducible from the
//! seed alone with no external RNG dependency.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Same seed, same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits of the next output).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `0..n`. Panics when `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        // Multiply-shift bounded sampling (Lemire); the bias for any
        // n << 2^64 is far below anything this crate could observe.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(42);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn index_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = r.gen_index(10);
            assert!(i < 10);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
