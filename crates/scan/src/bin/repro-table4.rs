//! Regenerate Table 4: resolve the whole testbed through all seven
//! vendor profiles and print the matrix plus agreement statistics.
fn main() {
    print!("{}", ede_scan::report::table4());
}
