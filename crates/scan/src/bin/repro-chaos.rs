//! Sweep fault-plan intensity over the scan world and report how the
//! EDE-code inventory shifts — the robustness companion to repro-scan.
//!
//! Usage: repro-chaos \[scale\] \[--seed N\] \[--smoke\]
//!
//! * `scale` — population scale divisor (default 10000, ≈30k domains;
//!   repro-scan's paper-shape default is 1000).
//! * `--seed N` — fault-plan / jitter seed (default 0x0EDEFA17). Legs
//!   are bit-stable per seed.
//! * `--smoke` — tiny population and a short sweep, for CI.
//!
//! Before sweeping, the run proves the hardening left the paper's
//! results untouched: the 63 × 7 testbed matrix must equal Table 4 cell
//! by cell, and the intensity-0 leg must be bit-identical to a plain
//! repro-scan.

use ede_scan::chaos::{
    baseline_matches_plain_scan, campaign, inflight_matches_blocking_scan, synthesis_configs_hold,
    table4_concurrent_deviation, table4_deviation, tier_configs_hold, ChaosConfig,
};
use ede_scan::{Population, PopulationConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x0EDE_FA17);
    let scale: u32 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|a| a.parse().ok())
        .unwrap_or(10_000);

    let pop = if smoke {
        Population::generate(PopulationConfig::tiny())
    } else {
        let cfg = PopulationConfig {
            scale,
            ..Default::default()
        };
        eprintln!("generating population at scale 1:{scale}...");
        Population::generate(cfg)
    };
    eprintln!("{} domains", pop.domains.len());

    let config = ChaosConfig::default()
        .with_seed(seed)
        .with_intensities(if smoke {
            vec![0.0, 0.05]
        } else {
            vec![0.0, 0.01, 0.02, 0.05, 0.10]
        });

    eprintln!("checking the Table 4 matrix at intensity 0...");
    let deviations = table4_deviation();
    if !deviations.is_empty() {
        for d in &deviations {
            eprintln!("  table4 deviation: {d}");
        }
        eprintln!("FAIL: {} Table 4 cells deviate", deviations.len());
        std::process::exit(1);
    }
    eprintln!("  ok: 63 x 7 cells bit-identical");

    eprintln!("checking the Table 4 matrix with all 7 vendors concurrent per row...");
    let deviations = table4_concurrent_deviation();
    if !deviations.is_empty() {
        for d in &deviations {
            eprintln!("  table4 deviation: {d}");
        }
        eprintln!(
            "FAIL: {} Table 4 cells deviate under concurrency",
            deviations.len()
        );
        std::process::exit(1);
    }
    eprintln!("  ok: 63 x 7 cells bit-identical with 7 resolutions in flight");

    eprintln!("checking an inflight=32 scan against the blocking scan...");
    let diffs = inflight_matches_blocking_scan(&pop, &config, 32);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  inflight deviation: {d}");
        }
        eprintln!("FAIL: event-driven scan is not bit-identical to the blocking scan");
        std::process::exit(1);
    }
    eprintln!("  ok: bit-identical observations, traffic, and metrics at inflight 32");

    eprintln!("checking the cache-tier configurations (L1 off; 8-entry L2 budget)...");
    let diffs = tier_configs_hold(&pop, &config);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  tier deviation: {d}");
        }
        eprintln!("FAIL: cache-tier configurations break the scan contract");
        std::process::exit(1);
    }
    eprintln!("  ok: L1-off bit-identical; tiny budget bounded with evictions");

    eprintln!("checking the RFC 8198 synthesis legs (on/off fingerprint; tiny range budget)...");
    let diffs = synthesis_configs_hold(&pop, &config);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  synthesis deviation: {d}");
        }
        eprintln!("FAIL: denial-synthesis configurations break the scan contract");
        std::process::exit(1);
    }
    eprintln!("  ok: synthesis-on bit-identical, sweep served from ranges, budget bounded");

    eprintln!("checking the intensity-0 leg against a plain scan...");
    let diffs = baseline_matches_plain_scan(&pop, &config);
    if !diffs.is_empty() {
        for d in &diffs {
            eprintln!("  baseline deviation: {d}");
        }
        eprintln!("FAIL: intensity-0 leg is not the plain scan");
        std::process::exit(1);
    }
    eprintln!("  ok: bit-identical observations, traffic, and metrics");

    eprintln!("sweeping fault intensity (seed {seed:#x})...");
    let report = campaign(&pop, &config);
    for leg in &report.legs {
        let bad = leg.reconcile();
        if !bad.is_empty() {
            for b in &bad {
                eprintln!(
                    "  reconciliation failure at intensity {}: {b}",
                    leg.intensity
                );
            }
            std::process::exit(1);
        }
    }
    print!("{}", report.render());
}
