//! Regenerate the §4.2 inventory: run the scaled Internet-wide scan and
//! print measured vs paper counts per INFO-CODE.
//!
//! Usage: repro-scan \[scale\] \[--json\]   (default scale 1000, i.e. 303k domains)
use ede_scan::{aggregate, report, scanner, Population, PopulationConfig, ScanWorld};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let scale: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(1000);
    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    eprintln!("generating population at scale 1:{scale}...");
    let pop = Population::generate(cfg);
    eprintln!("{} domains; building world...", pop.domains.len());
    let world = ScanWorld::build(&pop);
    eprintln!("scanning...");
    let config = scanner::ScanConfig::builder().progress(!json).build();
    let result = scanner::scan(&pop, &world, &config);
    let agg = aggregate::aggregate(&pop, &result);
    if json {
        print!("{}", report::scan_json(&pop, &agg));
    } else {
        print!("{}", report::scan_summary(&pop, &agg));
        println!("\n{}", report::traffic_line(&result));
        println!("\n{}", result.metrics.render());
    }
}
