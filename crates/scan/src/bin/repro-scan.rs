//! Regenerate the §4.2 inventory: run the scaled Internet-wide scan and
//! print measured vs paper counts per INFO-CODE.
//!
//! Usage: repro-scan \[scale\] \[--json | --fingerprint\] \[--no-l1\] \[--cache-budget=N\]
//!        \[--synthesize\] \[--sweep=R\] \[--range-budget=N\]
//! (default scale 1000, i.e. 303k domains)
//!
//! `--no-l1` disables the per-worker L1 cache tier (results must stay
//! bit-identical — compare `--fingerprint` outputs). `--cache-budget=N`
//! bounds the shared cache to N entries; with a budget smaller than the
//! working set the scan still completes, with bounded memory and
//! nonzero evictions, but eviction legally changes observations, so
//! budgeted fingerprints are *not* comparable.
//!
//! `--synthesize` turns on RFC 8198 denial synthesis in the scanning
//! resolver; observation fingerprints must stay identical to the
//! synthesis-free walk (registered names are never covered by validated
//! ranges). `--sweep=R` adds R nonexistent-name probes per registered
//! domain after both passes (range tier frozen, probes excluded from
//! observations and fingerprints). `--range-budget=N` bounds the range
//! tier to N spans — occupancy stays bounded and evictions show up in
//! the sweep hit rate, never in the observations.
use ede_scan::{aggregate, report, scanner, Population, PopulationConfig, ScanWorld};

/// FNV-1a over the sorted per-observation tuples — a stable digest of
/// the complete scan report, for bit-identity checks across engine
/// changes and cache configurations.
fn observation_fingerprint(result: &scanner::ScanResult) -> u64 {
    let mut lines: Vec<String> = result
        .observations
        .iter()
        .map(|o| {
            format!(
                "{}|{:?}|{}|{:?}|{}|{:?}|{:?}",
                o.name, o.category, o.tld, o.rank, o.rcode, o.codes, o.network_error_text
            )
        })
        .collect();
    lines.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in &lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let fingerprint = args.iter().any(|a| a == "--fingerprint");
    let no_l1 = args.iter().any(|a| a == "--no-l1");
    let cache_budget: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--cache-budget="))
        .and_then(|v| v.parse().ok());
    let synthesize = args.iter().any(|a| a == "--synthesize");
    let sweep_ratio: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--sweep="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let range_budget: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--range-budget="))
        .and_then(|v| v.parse().ok());
    let scale: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(1000);
    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    eprintln!("generating population at scale 1:{scale}...");
    let pop = Population::generate(cfg);
    eprintln!("{} domains; building world...", pop.domains.len());
    let world = ScanWorld::build(&pop);
    eprintln!("scanning...");
    let config = scanner::ScanConfig::builder()
        .progress(!json && !fingerprint)
        .l1(!no_l1)
        .max_cache_entries(cache_budget)
        .synthesize(synthesize)
        .sweep_ratio(sweep_ratio)
        .max_range_entries(range_budget)
        .build();
    let result = scanner::scan(&pop, &world, &config);
    let agg = aggregate::aggregate(&pop, &result);
    if fingerprint {
        println!(
            "fingerprint {:016x} observations {} evictions {}",
            observation_fingerprint(&result),
            result.observations.len(),
            result.cache.l2.evicted,
        );
        if synthesize || sweep_ratio > 0.0 {
            let sweep = result.sweep.clone().unwrap_or_default();
            println!(
                "ranges hits {} probes {} evicted {} live {} sweep_hit_pct {:.1} \
                 queries_per_domain {:.3}",
                result.cache.range.hits,
                result.cache.range.hits + result.cache.range.misses,
                result.cache.range.evicted,
                result.cache.range.occupancy,
                100.0 * sweep.hit_ratio(),
                result.queries_per_domain(),
            );
        }
    } else if json {
        print!("{}", report::scan_json(&pop, &agg));
    } else {
        print!("{}", report::scan_summary(&pop, &agg));
        println!("\n{}", report::traffic_line(&result));
        println!("\n{}", result.metrics.render());
        println!("{}", result.cache.render());
    }
}
