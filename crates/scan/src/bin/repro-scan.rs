//! Regenerate the §4.2 inventory: run the scaled Internet-wide scan and
//! print measured vs paper counts per INFO-CODE.
//!
//! Usage: repro-scan \[scale\] \[--json | --fingerprint\] \[--no-l1\] \[--cache-budget=N\]
//!        \[--synthesize\] \[--sweep=R\] \[--range-budget=N\]
//!        \[--cadence=SECS\] \[--log-capacity=N\] \[--log-spill=PATH\]
//!        \[--snapshots=PATH\] \[--query=EXPR\] \[--stream-smoke\]
//! (default scale 1000, i.e. 303k domains)
//!
//! `--no-l1` disables the per-worker L1 cache tier (results must stay
//! bit-identical — compare `--fingerprint` outputs). `--cache-budget=N`
//! bounds the shared cache to N entries; with a budget smaller than the
//! working set the scan still completes, with bounded memory and
//! nonzero evictions, but eviction legally changes results, so
//! budgeted fingerprints are *not* comparable.
//!
//! `--synthesize` turns on RFC 8198 denial synthesis in the scanning
//! resolver; scan fingerprints must stay identical to the
//! synthesis-free walk (registered names are never covered by validated
//! ranges). `--sweep=R` adds R nonexistent-name probes per registered
//! domain after both passes (range tier frozen, probes excluded from
//! the records and fingerprints). `--range-budget=N` bounds the range
//! tier to N spans.
//!
//! Streaming analytics: `--snapshots=PATH` writes a JSONL stream of
//! [`ede_scan::StatsSnapshot`] documents, one per `--cadence=SECS`
//! boundary of the virtual clock plus the final complete snapshot.
//! `--log-capacity=N` bounds the query-log ring; `--log-spill=PATH`
//! rotates evicted records into a JSONL trace instead of dropping them.
//! `--query=EXPR` filters the retained records after the scan (e.g.
//! `--query=code=23,tld=com,rank=1-500`). `--stream-smoke` runs the
//! streaming-vs-batch equivalence check CI relies on and exits nonzero
//! on any mismatch.
use ede_scan::query::QueryFilter;
use ede_scan::{report, scanner, Population, PopulationConfig, ScanWorld};
use ede_trace::{JsonlSnapshotWriter, MemorySnapshotSink, SnapshotSink};
use std::path::PathBuf;
use std::sync::Arc;

/// The `--stream-smoke` leg: a streaming scan with a deliberately tiny
/// query-log ring and a tight export cadence must produce the same
/// results as the plain scan, export at least the final snapshot, and
/// keep ring occupancy bounded. Exits the process nonzero on failure.
fn stream_smoke(scale: u32) {
    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    let pop = Population::generate(cfg);

    let baseline_world = ScanWorld::build(&pop);
    let baseline = scanner::scan(&pop, &baseline_world, &scanner::ScanConfig::default());

    let sink = Arc::new(MemorySnapshotSink::new());
    let streaming_world = ScanWorld::build(&pop);
    let config = scanner::ScanConfig::builder()
        .snapshot_cadence_secs(1)
        .query_log_capacity(1024)
        .build();
    let streaming = scanner::scan_streaming(
        &pop,
        &streaming_world,
        &config,
        &[Arc::clone(&sink) as Arc<dyn SnapshotSink>],
    );

    let mut bad = Vec::new();
    if !baseline.stats.same_results(&streaming.stats) {
        bad.push("streaming results differ from the batch scan".to_string());
    }
    if baseline.stats.fingerprint != streaming.stats.fingerprint {
        bad.push(format!(
            "fingerprint mismatch: {:016x} != {:016x}",
            baseline.stats.fingerprint, streaming.stats.fingerprint
        ));
    }
    if sink.is_empty() {
        bad.push("no snapshot was exported".to_string());
    }
    if streaming.log.peak > streaming.log.capacity {
        bad.push(format!(
            "ring peak {} exceeded capacity {}",
            streaming.log.peak, streaming.log.capacity
        ));
    }
    if streaming.records.len() > streaming.log.capacity {
        bad.push(format!(
            "retained {} records from a {}-record ring",
            streaming.records.len(),
            streaming.log.capacity
        ));
    }
    if streaming.stream.merges == 0 {
        bad.push("no partial-aggregate merges were recorded".to_string());
    }
    if bad.is_empty() {
        println!(
            "stream-smoke PASS: fingerprint {:016x}, {} snapshots exported, \
             {} merges ({} ns), ring peak {}/{} ({} dropped)",
            streaming.stats.fingerprint,
            sink.len(),
            streaming.stream.merges,
            streaming.stream.merge_ns,
            streaming.log.peak,
            streaming.log.capacity,
            streaming.log.dropped,
        );
    } else {
        for b in &bad {
            eprintln!("stream-smoke FAIL: {b}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let fingerprint = args.iter().any(|a| a == "--fingerprint");
    let no_l1 = args.iter().any(|a| a == "--no-l1");
    let cache_budget: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--cache-budget="))
        .and_then(|v| v.parse().ok());
    let synthesize = args.iter().any(|a| a == "--synthesize");
    let sweep_ratio: f64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--sweep="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    let range_budget: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--range-budget="))
        .and_then(|v| v.parse().ok());
    let cadence: u64 = args
        .iter()
        .find_map(|a| a.strip_prefix("--cadence="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let log_capacity: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--log-capacity="))
        .and_then(|v| v.parse().ok());
    let log_spill: Option<PathBuf> = args
        .iter()
        .find_map(|a| a.strip_prefix("--log-spill="))
        .map(PathBuf::from);
    let snapshots: Option<PathBuf> = args
        .iter()
        .find_map(|a| a.strip_prefix("--snapshots="))
        .map(PathBuf::from);
    let query: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--query="))
        .map(str::to_string);
    let scale: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(1000);

    if args.iter().any(|a| a == "--stream-smoke") {
        stream_smoke(scale);
        return;
    }

    let filter = query.map(|expr| match QueryFilter::parse(&expr) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bad --query: {e}");
            std::process::exit(2);
        }
    });

    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    eprintln!("generating population at scale 1:{scale}...");
    let pop = Population::generate(cfg);
    eprintln!("{} domains; building world...", pop.domains.len());
    let world = ScanWorld::build(&pop);
    eprintln!("scanning...");
    let mut builder = scanner::ScanConfig::builder()
        .progress(!json && !fingerprint)
        .l1(!no_l1)
        .max_cache_entries(cache_budget)
        .synthesize(synthesize)
        .sweep_ratio(sweep_ratio)
        .max_range_entries(range_budget)
        .snapshot_cadence_secs(cadence)
        .query_log_spill(log_spill);
    if let Some(capacity) = log_capacity {
        builder = builder.query_log_capacity(capacity);
    }
    let config = builder.build();

    let mut sinks: Vec<Arc<dyn SnapshotSink>> = Vec::new();
    if let Some(path) = &snapshots {
        match JsonlSnapshotWriter::create(path) {
            Ok(writer) => sinks.push(Arc::new(writer)),
            Err(e) => {
                eprintln!("cannot open {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let result = scanner::scan_streaming(&pop, &world, &config, &sinks);

    if fingerprint {
        println!(
            "fingerprint {:016x} domains {} evictions {}",
            result.stats.fingerprint, result.stats.ede.total_domains, result.cache.l2.evicted,
        );
        if synthesize || sweep_ratio > 0.0 {
            let sweep = result.sweep.clone().unwrap_or_default();
            println!(
                "ranges hits {} probes {} evicted {} live {} sweep_hit_pct {:.1} \
                 queries_per_domain {:.3}",
                result.cache.range.hits,
                result.cache.range.hits + result.cache.range.misses,
                result.cache.range.evicted,
                result.cache.range.occupancy,
                100.0 * sweep.hit_ratio(),
                result.queries_per_domain(),
            );
        }
    } else if json {
        print!("{}", report::scan_json(&result.stats));
    } else {
        print!("{}", report::scan_summary(&result.stats));
        println!("\n{}", report::traffic_line(&result.stats));
        println!("\n{}", result.metrics.render());
        println!("{}", result.cache.render());
        // No wall-clock fields here: stdout stays byte-identical across
        // equal-result runs (merge_ns lives in BENCH_scan.json).
        println!(
            "streaming: {} merges, {} snapshots exported, \
             query log peak {}/{} ({} spilled, {} dropped)",
            result.stream.merges,
            result.stream.exports,
            result.log.peak,
            result.log.capacity,
            result.log.spilled,
            result.log.dropped,
        );
    }

    if let Some(filter) = filter {
        print!("\n{}", filter.summarize(&result.records).render());
    }
}
