//! Regenerate Figure 1: per-TLD misconfiguration-ratio CDFs for gTLDs
//! and ccTLDs.
//!
//! Usage: repro-fig1 \[scale\]   (default 1000)
use ede_scan::{report, scanner, Population, PopulationConfig, ScanWorld};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scanner::scan(&pop, &world, &scanner::ScanConfig::default());
    print!("{}", report::figure1(&result.stats));
}
