//! Regenerate Table 2: the 63 testbed subdomains by group.
fn main() {
    print!("{}", ede_scan::report::table2());
}
