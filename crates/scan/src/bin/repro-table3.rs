//! Regenerate Table 3: per-subdomain configuration detail.
fn main() {
    print!("{}", ede_scan::report::table3());
}
