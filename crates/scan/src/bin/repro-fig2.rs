//! Regenerate Figure 2: the distribution of EDE-triggering domains
//! across the Tranco ranking.
//!
//! Usage: repro-fig2 \[scale\]   (default 1000)
use ede_scan::{report, scanner, Population, PopulationConfig, ScanWorld};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let cfg = PopulationConfig {
        scale,
        ..Default::default()
    };
    let pop = Population::generate(cfg);
    let world = ScanWorld::build(&pop);
    let result = scanner::scan(&pop, &world, &scanner::ScanConfig::default());
    print!("{}", report::figure2(&result.stats));
}
