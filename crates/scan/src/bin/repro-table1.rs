//! Regenerate Table 1: the registered Extended DNS Error codes.
fn main() {
    print!("{}", ede_scan::report::table1());
}
