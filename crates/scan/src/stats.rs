//! Statistics: CDF/concentration utilities plus the versioned typed
//! report DTOs in [`v1`].

pub mod v1;

/// Empirical CDF of `values`: returns (value, cumulative fraction)
/// pairs, sorted ascending. The fractions reach 1.0 at the maximum.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in inputs"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of the CDF's mass at exactly `value` (e.g. the share of
/// TLDs with a ratio of exactly 0).
pub fn fraction_at(values: &[f64], value: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values
        .iter()
        .filter(|&&v| (v - value).abs() < 1e-12)
        .count() as f64
        / values.len() as f64
}

/// Given per-key weights (e.g. domains per nameserver), how many of the
/// heaviest keys are needed to cover `target` fraction of the total?
pub fn keys_to_cover(weights: &[usize], target: f64) -> usize {
    let total: usize = weights.iter().sum();
    if total == 0 {
        return 0;
    }
    let mut sorted = weights.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let goal = (total as f64 * target).ceil() as usize;
    let mut acc = 0;
    for (i, w) in sorted.iter().enumerate() {
        acc += w;
        if acc >= goal {
            return i + 1;
        }
    }
    sorted.len()
}

/// Render a CDF as a compact ASCII plot (for the repro binaries).
pub fn ascii_cdf(series: &[(f64, f64)], width: usize, height: usize, x_label: &str) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let x_min = series.first().expect("nonempty").0;
    let x_max = series.last().expect("nonempty").0.max(x_min + f64::EPSILON);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in series {
        let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
        let row = ((1.0 - y) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let y_tick = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_tick:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      {x_min:<12.3} {x_label:^width$} {x_max:>10.3}\n",
        "-".repeat(width),
        width = width.saturating_sub(26),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_normalized() {
        let values = [3.0, 1.0, 2.0, 2.0];
        let c = cdf(&values);
        assert_eq!(c.len(), 4);
        assert_eq!(c.last().expect("nonempty").1, 1.0);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn fraction_at_zero() {
        let values = [0.0, 0.0, 0.5, 1.0];
        assert_eq!(fraction_at(&values, 0.0), 0.5);
        assert_eq!(fraction_at(&values, 1.0), 0.25);
    }

    #[test]
    fn concentration() {
        // One giant (80) + 20 ones: 80/100 needs just the giant... 81%
        // needs the giant plus one more.
        let mut weights = vec![80usize];
        weights.extend(std::iter::repeat_n(1usize, 20));
        assert_eq!(keys_to_cover(&weights, 0.80), 1);
        assert_eq!(keys_to_cover(&weights, 0.81), 2);
        assert_eq!(keys_to_cover(&[], 0.5), 0);
    }

    #[test]
    fn ascii_plot_smoke() {
        let series = cdf(&[0.0, 0.1, 0.5, 0.9, 1.0]);
        let plot = ascii_cdf(&series, 40, 10, "ratio");
        assert!(plot.contains('*'));
        assert!(plot.lines().count() >= 10);
    }
}
