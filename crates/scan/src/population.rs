//! Synthetic registered-domain population with calibrated planting.
//!
//! Calibration targets come straight from the paper's §4.2 (counts per
//! 303 M domains) and §4.3 (per-TLD concentration). The generator plants
//! *root causes*; the scanner later measures what EDE codes those causes
//! produce through the full resolution pipeline.

use crate::rng::SplitMix64;
use ede_wire::Name;
use std::net::Ipv4Addr;

/// What is wrong (or right) with one planted domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Correctly served, unsigned.
    HealthyUnsigned,
    /// Correctly served and DNSSEC-signed.
    HealthySigned,
    /// Every nameserver answers REFUSED (or SERVFAIL) — the dominant
    /// lame-delegation mode (§4.2.1/2 → EDE 22+23).
    LameRcode,
    /// Every nameserver is silent or the glue is unroutable (→ 22 only).
    LameSilent,
    /// One nameserver is broken but another answers (→ 23 on NOERROR).
    PartialBroken,
    /// Lives under a TLD publishing a stand-by KSK (§4.2.3 → EDE 10 on
    /// NOERROR).
    StandbyTldMember,
    /// Signed, but the DS does not match any DNSKEY (§4.2.4 → EDE 9).
    DsMismatch,
    /// Signed and entirely unreachable (§4.2.4's "accompanied by 22"
    /// flavor → 9+22+23).
    UnreachableSigned,
    /// Signed, no apex A, and broken denial-of-existence (§4.2.5 → 6).
    BrokenDenial,
    /// Nameservers predate EDNS (§4.2.6 → 24).
    NoEdns,
    /// Zone signed with an algorithm Cloudflare lacks (GOST) (§4.2.7 → 1).
    UnsupportedAlgGost,
    /// Zone signed with a deprecated algorithm (DSA) (§4.2.7 → 1).
    UnsupportedAlgDsa,
    /// Zone keys are 512-bit (§4.2.7 "unsupported key size" → 1).
    SmallKey,
    /// All RRSIGs expired (§4.2.8 → 7).
    SigExpired,
    /// Unsigned delegation whose (signed) parent fails to prove DS
    /// absence (§4.2.9 → 12).
    InsecureProofBroken,
    /// DS uses the GOST digest type (§4.2.10 → 2).
    GostDigest,
    /// DS uses an unassigned digest type (8) (§4.2.10 → 2).
    UnassignedDigest,
    /// Server answers once then starts refusing — revisits serve stale
    /// (§4.2.11 → 3 [+22, +23]).
    StaleFlapRefuse,
    /// Server answers once then goes silent (§4.2.11 → 3+22).
    StaleFlapDrop,
    /// All RRSIGs not yet valid (§4.2.12 → 8).
    SigNotYetValid,
    /// Nameservers answer NOTAUTH; the second probe hits the failure
    /// cache (§4.2.13 → 13).
    NotAuthCached,
    /// NSEC3 iteration count above any validator cap (§4.2.14 → 0,
    /// "iteration limit exceeded").
    IterationLimit,
}

impl Category {
    /// Every category, for iteration and name-based parsing.
    pub const ALL: [Category; 22] = [
        Category::HealthyUnsigned,
        Category::HealthySigned,
        Category::LameRcode,
        Category::LameSilent,
        Category::PartialBroken,
        Category::StandbyTldMember,
        Category::DsMismatch,
        Category::UnreachableSigned,
        Category::BrokenDenial,
        Category::NoEdns,
        Category::UnsupportedAlgGost,
        Category::UnsupportedAlgDsa,
        Category::SmallKey,
        Category::SigExpired,
        Category::InsecureProofBroken,
        Category::GostDigest,
        Category::UnassignedDigest,
        Category::StaleFlapRefuse,
        Category::StaleFlapDrop,
        Category::SigNotYetValid,
        Category::NotAuthCached,
        Category::IterationLimit,
    ];

    /// The stable name of this category (its variant name) — used by
    /// the query-log JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            Category::HealthyUnsigned => "HealthyUnsigned",
            Category::HealthySigned => "HealthySigned",
            Category::LameRcode => "LameRcode",
            Category::LameSilent => "LameSilent",
            Category::PartialBroken => "PartialBroken",
            Category::StandbyTldMember => "StandbyTldMember",
            Category::DsMismatch => "DsMismatch",
            Category::UnreachableSigned => "UnreachableSigned",
            Category::BrokenDenial => "BrokenDenial",
            Category::NoEdns => "NoEdns",
            Category::UnsupportedAlgGost => "UnsupportedAlgGost",
            Category::UnsupportedAlgDsa => "UnsupportedAlgDsa",
            Category::SmallKey => "SmallKey",
            Category::SigExpired => "SigExpired",
            Category::InsecureProofBroken => "InsecureProofBroken",
            Category::GostDigest => "GostDigest",
            Category::UnassignedDigest => "UnassignedDigest",
            Category::StaleFlapRefuse => "StaleFlapRefuse",
            Category::StaleFlapDrop => "StaleFlapDrop",
            Category::SigNotYetValid => "SigNotYetValid",
            Category::NotAuthCached => "NotAuthCached",
            Category::IterationLimit => "IterationLimit",
        }
    }

    /// Parse a category from its [`name`](Category::name).
    pub fn parse(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == s)
    }

    /// True when the scanner should probe this domain a second time
    /// (after the flap / with a warm failure cache).
    pub fn needs_revisit(self) -> bool {
        matches!(
            self,
            Category::StaleFlapRefuse | Category::StaleFlapDrop | Category::NotAuthCached
        )
    }

    /// True when the domain's zone is DNSSEC-signed.
    pub fn signed(self) -> bool {
        !matches!(
            self,
            Category::HealthyUnsigned
                | Category::LameRcode
                | Category::LameSilent
                | Category::PartialBroken
                | Category::NoEdns
                | Category::InsecureProofBroken
                | Category::StaleFlapRefuse
                | Category::StaleFlapDrop
                | Category::NotAuthCached
        )
    }
}

/// One TLD of the population.
#[derive(Debug, Clone)]
pub struct TldInfo {
    /// The TLD name.
    pub name: Name,
    /// ccTLD (true) or gTLD (false).
    pub cc: bool,
    /// Publishes a stand-by KSK (§4.2.3).
    pub standby_key: bool,
    /// Fails to include NSEC3 proofs on insecure referrals (§4.2.9).
    pub broken_insecure_proof: bool,
    /// Index of this TLD's server address.
    pub server_index: usize,
}

/// One domain of the input list.
#[derive(Debug, Clone)]
pub struct DomainRecord {
    /// Fully qualified registered name.
    pub name: Name,
    /// Index into [`Population::tlds`].
    pub tld: usize,
    /// Planted condition.
    pub category: Category,
    /// Addresses of the domain's nameservers (hosting-pool addresses).
    pub ns_addrs: Vec<Ipv4Addr>,
    /// Tranco-style popularity rank (1-based), if the domain is in the
    /// scaled top list.
    pub rank: Option<u32>,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Scale divisor relative to the paper's 303 M (1000 → 303 k).
    pub scale: u32,
    /// RNG seed: same seed, same population.
    pub seed: u64,
    /// Number of gTLDs.
    pub gtlds: usize,
    /// Number of ccTLDs.
    pub cctlds: usize,
    /// Size of the scaled Tranco list.
    pub tranco_size: u32,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            scale: 1000,
            seed: 0xEDE_2023,
            gtlds: 1150,
            cctlds: 325,
            tranco_size: 1000,
        }
    }
}

impl PopulationConfig {
    /// A small config for unit/integration tests.
    pub fn tiny() -> Self {
        PopulationConfig {
            scale: 100_000,
            gtlds: 40,
            cctlds: 12,
            tranco_size: 50,
            ..Default::default()
        }
    }

    /// Scale a paper count (per 303 M) down, keeping at least 1 when the
    /// original is nonzero, and keeping counts under 100 at their
    /// absolute value so rare phenomena stay visible (documented in
    /// EXPERIMENTS.md).
    pub fn scaled(&self, paper_count: u64) -> usize {
        if paper_count == 0 {
            return 0;
        }
        if paper_count < 100 {
            return paper_count as usize;
        }
        ((paper_count + u64::from(self.scale) / 2) / u64::from(self.scale)).max(1) as usize
    }
}

/// Planting targets, straight out of §4.2 (counts per 303 M domains).
pub struct Targets {
    /// Lame with RCODE failures on all NSes (22 ∩ 23).
    pub lame_rcode: usize,
    /// Lame with silence/unroutability (22 only).
    pub lame_silent: usize,
    /// One broken + one working NS (23 only).
    pub partial_broken: usize,
    /// Domains under stand-by-key TLDs (code 10).
    pub standby_members: usize,
    /// DS mismatch (code 9, reachable).
    pub ds_mismatch: usize,
    /// Signed + unreachable (9+22+23).
    pub unreachable_signed: usize,
    /// Broken denial (code 6).
    pub broken_denial: usize,
    /// EDNS-oblivious (code 24).
    pub no_edns: usize,
    /// GOST-signed zones (code 1).
    pub alg_gost: usize,
    /// DSA-signed zones (code 1).
    pub alg_dsa: usize,
    /// 512-bit keys (code 1).
    pub small_key: usize,
    /// Expired signatures (code 7).
    pub sig_expired: usize,
    /// Broken insecure-referral proofs (code 12).
    pub insecure_proof: usize,
    /// GOST DS digests (code 2).
    pub gost_digest: usize,
    /// Unassigned DS digest type 8 (code 2).
    pub unassigned_digest: usize,
    /// Stale with REFUSED flap (3+22+23).
    pub stale_refuse: usize,
    /// Stale with silent flap (3+22).
    pub stale_drop: usize,
    /// Not-yet-valid signatures (code 8).
    pub not_yet_valid: usize,
    /// NOTAUTH + cached error (code 13).
    pub notauth_cached: usize,
    /// Iteration-limit zones (code 0).
    pub iteration_limit: usize,
}

impl Targets {
    /// Derive targets from the paper's §4.2 counts at the configured
    /// scale.
    pub fn from_config(cfg: &PopulationConfig) -> Targets {
        // |22| = 13,965,865 and |23| = 11,647,551 with |22 ∪ 23| ≈
        // 14.8 M (§4.2.2) ⇒ |22 ∩ 23| ≈ 10.8 M.
        let both = 10_817_000u64;
        let only22 = 13_965_865u64 - both;
        let only23 = 11_647_551u64 - both;
        let code9 = 296_643u64;
        let unreachable_signed = code9 * 2 / 5; // the "accompanied by 22" flavor
        Targets {
            lame_rcode: cfg.scaled(both),
            lame_silent: cfg.scaled(only22),
            partial_broken: cfg.scaled(only23),
            standby_members: cfg.scaled(2_746_604),
            ds_mismatch: cfg.scaled(code9 - unreachable_signed),
            unreachable_signed: cfg.scaled(unreachable_signed),
            broken_denial: cfg.scaled(82_465),
            no_edns: cfg.scaled(12_268),
            // §4.2.7's 8,751 domains split across GOST, prohibited
            // algorithms, and undersized keys.
            alg_gost: cfg.scaled(5_800),
            alg_dsa: cfg.scaled(1_500),
            small_key: cfg.scaled(1_451),
            sig_expired: cfg.scaled(2_877),
            insecure_proof: cfg.scaled(1_980),
            gost_digest: 54,
            unassigned_digest: 8,
            stale_refuse: 20,
            stale_drop: 12,
            not_yet_valid: 29,
            notauth_cached: 8,
            iteration_limit: 7,
        }
    }
}

/// The generated population.
pub struct Population {
    /// Generator configuration.
    pub config: PopulationConfig,
    /// All TLDs.
    pub tlds: Vec<TldInfo>,
    /// All domains, in randomized scan order.
    pub domains: Vec<DomainRecord>,
    /// Addresses of the healthy hosting pool.
    pub healthy_ns: Vec<Ipv4Addr>,
    /// Addresses of the broken hosting pool (lame nameservers).
    pub broken_ns: Vec<Ipv4Addr>,
}

/// How a broken-pool nameserver misbehaves. The mode is a deterministic
/// function of the address index so the generator and the world builder
/// agree without communicating. Segment sizes follow §4.2.2's breakdown
/// of 293 k broken nameservers: 267 k REFUSED, 21 k SERVFAIL, 15 k
/// silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrokenMode {
    /// Answers REFUSED.
    Refused,
    /// Answers SERVFAIL.
    ServFail,
    /// Never answers.
    Drop,
}

/// The fault mode of broken nameserver `i` out of `total`.
pub fn broken_mode(i: usize, total: usize) -> BrokenMode {
    // 267/303 ≈ 88 % REFUSED, 21/303 ≈ 7 % SERVFAIL, rest silent.
    let refused_end = total * 88 / 100;
    let servfail_end = total * 95 / 100;
    if i < refused_end {
        BrokenMode::Refused
    } else if i < servfail_end {
        BrokenMode::ServFail
    } else {
        BrokenMode::Drop
    }
}

/// Allocate the i-th address of a /8-sized pool rooted at `base`.
fn pool_addr(base: u8, i: usize) -> Ipv4Addr {
    Ipv4Addr::new(base, (i >> 16) as u8, (i >> 8) as u8, i as u8)
}

/// Address of the i-th healthy hosting server.
pub fn healthy_addr(i: usize) -> Ipv4Addr {
    pool_addr(13, i)
}

/// Address of the i-th broken hosting server.
pub fn broken_addr(i: usize) -> Ipv4Addr {
    pool_addr(23, i)
}

/// Address of the i-th TLD server.
pub fn tld_addr(i: usize) -> Ipv4Addr {
    pool_addr(33, i)
}

impl Population {
    /// Generate a population.
    pub fn generate(config: PopulationConfig) -> Population {
        let mut rng = SplitMix64::seed_from_u64(config.seed);
        let targets = Targets::from_config(&config);
        let total = config.scaled(303_000_000);

        // --- TLDs ----------------------------------------------------------
        // §4.3: 38 % of gTLDs and 4 % of ccTLDs have no misconfigured
        // domain; 11 gTLDs + 2 ccTLDs are fully broken; 2 ccTLDs carry
        // stand-by keys; a handful of gTLDs fail insecure-referral
        // proofs.
        let mut tlds = Vec::new();
        for i in 0..config.gtlds {
            tlds.push(TldInfo {
                name: Name::parse(&format!("gtld{i:04}")).expect("valid"),
                cc: false,
                standby_key: false,
                broken_insecure_proof: false,
                server_index: i,
            });
        }
        for i in 0..config.cctlds {
            tlds.push(TldInfo {
                name: Name::parse(&format!("cc{i:03}")).expect("valid"),
                cc: true,
                standby_key: i < 2, // the two stand-by-KSK ccTLDs (§4.2.3)
                broken_insecure_proof: false,
                server_index: config.gtlds + i,
            });
        }
        // A few gTLDs with broken insecure-referral proofs (§4.2.9) —
        // low indices so they can never collide with the fully-broken
        // tail below.
        let insecure_tlds: Vec<usize> = (16..20).collect();
        for &t in &insecure_tlds {
            tlds[t].broken_insecure_proof = true;
        }

        // Which TLDs are clean (no misconfigured domains planted there)?
        // 38 % of gTLDs, 4 % of ccTLDs, excluding the special ones.
        let clean_gtlds = (config.gtlds as f64 * 0.38) as usize;
        let clean_cctlds = (config.cctlds as f64 * 0.04) as usize;
        // Fully-broken small TLDs: last 11 gTLDs + last 2 ccTLDs.
        let fully_broken: Vec<usize> = (config.gtlds - 11..config.gtlds)
            .chain(config.gtlds + config.cctlds - 2..config.gtlds + config.cctlds)
            .collect();

        // TLD weights: Zipf-like sizes, ccTLDs smaller on average.
        let mut weights: Vec<f64> = (0..tlds.len())
            .map(|i| {
                let rank = (i + 1) as f64;
                let base = 1.0 / rank.powf(1.03);
                if tlds[i].cc {
                    base * 0.4
                } else {
                    base
                }
            })
            .collect();
        for &t in &fully_broken {
            // The fully-broken TLDs are tiny (108 k domains across 13).
            weights[t] = 0.0;
        }
        let weight_sum: f64 = weights.iter().sum();

        // --- Hosting pools ------------------------------------------------------
        // §4.2.2: 293 k broken nameservers; 6 giants serve >100 k domains
        // each; fixing ~20 k (6.8 %) would repair 81 % of domains.
        let broken_ns_count = (293_000 / config.scale as usize).clamp(24, 50_000);
        let healthy_ns_count = (total / 40).clamp(16, 40_000);
        let healthy_ns: Vec<Ipv4Addr> = (0..healthy_ns_count).map(healthy_addr).collect();
        let broken_ns: Vec<Ipv4Addr> = (0..broken_ns_count).map(broken_addr).collect();

        // Zipf over the broken pool reproduces the concentration: the
        // head nameservers accumulate most lame domains. Draws are
        // segment-aware so a category needing a *spoken* failure never
        // lands on a silent server and vice versa.
        let zipf_in = |rng: &mut SplitMix64, lo: usize, hi: usize| -> usize {
            debug_assert!(lo < hi);
            let span = hi - lo;
            let weights: f64 = (0..span).map(|i| 1.0 / ((i + 1) as f64).powf(1.12)).sum();
            let mut x = rng.gen_f64() * weights;
            for i in 0..span {
                x -= 1.0 / ((i + 1) as f64).powf(1.12);
                if x <= 0.0 {
                    return lo + i;
                }
            }
            hi - 1
        };
        let rcode_end = broken_ns_count * 95 / 100; // Refused + ServFail
        let pick_broken_rcode =
            |rng: &mut SplitMix64| broken_addr(zipf_in(rng, 0, rcode_end.max(1)));
        let drop_start = rcode_end.min(broken_ns_count - 1);
        let pick_broken_silent =
            |rng: &mut SplitMix64| broken_addr(zipf_in(rng, drop_start, broken_ns_count));

        // --- Build the category list -----------------------------------------------
        let mut categories: Vec<Category> = Vec::with_capacity(total);
        let push = |cat: Category, n: usize, categories: &mut Vec<Category>| {
            categories.extend(std::iter::repeat_n(cat, n));
        };
        push(Category::LameRcode, targets.lame_rcode, &mut categories);
        push(Category::LameSilent, targets.lame_silent, &mut categories);
        push(
            Category::PartialBroken,
            targets.partial_broken,
            &mut categories,
        );
        push(
            Category::StandbyTldMember,
            targets.standby_members,
            &mut categories,
        );
        push(Category::DsMismatch, targets.ds_mismatch, &mut categories);
        push(
            Category::UnreachableSigned,
            targets.unreachable_signed,
            &mut categories,
        );
        push(
            Category::BrokenDenial,
            targets.broken_denial,
            &mut categories,
        );
        push(Category::NoEdns, targets.no_edns, &mut categories);
        push(
            Category::UnsupportedAlgGost,
            targets.alg_gost,
            &mut categories,
        );
        push(
            Category::UnsupportedAlgDsa,
            targets.alg_dsa,
            &mut categories,
        );
        push(Category::SmallKey, targets.small_key, &mut categories);
        push(Category::SigExpired, targets.sig_expired, &mut categories);
        push(
            Category::InsecureProofBroken,
            targets.insecure_proof,
            &mut categories,
        );
        push(Category::GostDigest, targets.gost_digest, &mut categories);
        push(
            Category::UnassignedDigest,
            targets.unassigned_digest,
            &mut categories,
        );
        push(
            Category::StaleFlapRefuse,
            targets.stale_refuse,
            &mut categories,
        );
        push(Category::StaleFlapDrop, targets.stale_drop, &mut categories);
        push(
            Category::SigNotYetValid,
            targets.not_yet_valid,
            &mut categories,
        );
        push(
            Category::NotAuthCached,
            targets.notauth_cached,
            &mut categories,
        );
        push(
            Category::IterationLimit,
            targets.iteration_limit,
            &mut categories,
        );
        // Fill with healthy domains (~15 % of the healthy pool signed,
        // matching global DNSSEC deployment levels).
        while categories.len() < total {
            let signed = rng.gen_f64() < 0.15;
            categories.push(if signed {
                Category::HealthySigned
            } else {
                Category::HealthyUnsigned
            });
        }
        categories.truncate(total);

        // --- Assign TLDs and nameservers ----------------------------------------------
        let pick_tld = |rng: &mut SplitMix64, broken: bool, tld_weights: &[f64]| -> usize {
            loop {
                let mut x = rng.gen_f64() * weight_sum;
                let mut idx = tlds.len() - 1;
                for (i, w) in tld_weights.iter().enumerate() {
                    x -= w;
                    if x <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                // Special TLDs host only their designated categories:
                // everything under a stand-by-key or broken-proof TLD
                // would otherwise inherit that TLD's condition.
                if tlds[idx].standby_key || tlds[idx].broken_insecure_proof {
                    continue;
                }
                let is_clean = (idx < clean_gtlds && !tlds[idx].cc)
                    || (tlds[idx].cc && idx - config.gtlds < clean_cctlds);
                if broken && is_clean {
                    continue; // clean TLDs host no misconfigured domains
                }
                return idx;
            }
        };

        let mut domains: Vec<DomainRecord> = Vec::with_capacity(total);
        let mut counter_per_tld = vec![0usize; tlds.len()];
        for (i, &category) in categories.iter().enumerate() {
            let broken = !matches!(
                category,
                Category::HealthyUnsigned | Category::HealthySigned
            );
            // Stand-by members must live under the stand-by ccTLDs;
            // insecure-proof cases under the broken-proof gTLDs.
            let tld = match category {
                Category::StandbyTldMember => config.gtlds + (i % 2),
                Category::InsecureProofBroken => insecure_tlds[i % insecure_tlds.len()],
                _ => pick_tld(&mut rng, broken, &weights),
            };
            counter_per_tld[tld] += 1;
            let label = format!("d{:07}", i);
            let name = tlds[tld].name.child(&label).expect("valid label");

            let ns_addrs: Vec<Ipv4Addr> = match category {
                Category::LameRcode | Category::UnreachableSigned => {
                    vec![pick_broken_rcode(&mut rng)]
                }
                Category::LameSilent => vec![pick_broken_silent(&mut rng)],
                Category::PartialBroken => vec![
                    pick_broken_rcode(&mut rng),
                    healthy_addr(rng.gen_index(healthy_ns_count)),
                ],
                // NotAuth and flapping behavior is per-domain and lives
                // in the hosting fabric.
                _ => vec![healthy_addr(rng.gen_index(healthy_ns_count))],
            };

            domains.push(DomainRecord {
                name,
                tld,
                category,
                ns_addrs,
                rank: None,
            });
        }

        // --- Fully-broken tiny TLDs (§4.3's 100 %-misconfigured tail) -------------
        let fully_broken_total = config.scaled(108_000).max(fully_broken.len());
        let per_tld = (fully_broken_total / fully_broken.len()).max(1);
        for (k, &t) in fully_broken.iter().enumerate() {
            for j in 0..per_tld {
                let label = format!("fb{k:02}x{j:05}");
                let name = tlds[t].name.child(&label).expect("valid label");
                domains.push(DomainRecord {
                    name,
                    tld: t,
                    category: Category::LameRcode,
                    ns_addrs: vec![pick_broken_rcode(&mut rng)],
                    rank: None,
                });
            }
        }

        // --- Tranco ranks: assigned independently of misconfiguration --------------
        // (§4.3/Fig. 2: EDE-triggering domains are evenly distributed
        // across the ranking.)
        let n = domains.len();
        let mut rank_targets: Vec<usize> = Vec::with_capacity(config.tranco_size as usize);
        while rank_targets.len() < (config.tranco_size as usize).min(n) {
            let idx = rng.gen_index(n);
            if domains[idx].rank.is_none() {
                domains[idx].rank = Some(0); // placeholder, numbered below
                rank_targets.push(idx);
            }
        }
        for (rank0, &idx) in rank_targets.iter().enumerate() {
            domains[idx].rank = Some(rank0 as u32 + 1);
        }

        // Randomize scan order, as the paper did to spread load.
        for i in (1..domains.len()).rev() {
            let j = rng.gen_index(i + 1);
            domains.swap(i, j);
        }

        Population {
            config,
            tlds,
            domains,
            healthy_ns,
            broken_ns,
        }
    }

    /// Count of domains per category (diagnostics, ground truth).
    pub fn category_counts(&self) -> Vec<(Category, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for d in &self.domains {
            *map.entry(d.category).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(PopulationConfig::tiny());
        let b = Population::generate(PopulationConfig::tiny());
        assert_eq!(a.domains.len(), b.domains.len());
        for (x, y) in a.domains.iter().zip(&b.domains) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.category, y.category);
            assert_eq!(x.ns_addrs, y.ns_addrs);
        }
    }

    #[test]
    fn tiny_population_has_all_rare_categories() {
        let p = Population::generate(PopulationConfig::tiny());
        let counts = p.category_counts();
        let has = |c: Category| counts.iter().any(|(cat, n)| *cat == c && *n > 0);
        assert!(has(Category::GostDigest));
        assert!(has(Category::StaleFlapRefuse));
        assert!(has(Category::NotAuthCached));
        assert!(has(Category::IterationLimit));
        assert!(has(Category::LameRcode));
        assert!(has(Category::HealthyUnsigned));
    }

    #[test]
    fn standby_members_live_under_standby_cctlds() {
        let p = Population::generate(PopulationConfig::tiny());
        for d in &p.domains {
            if d.category == Category::StandbyTldMember {
                assert!(p.tlds[d.tld].standby_key, "{}", d.name);
            }
            if d.category == Category::InsecureProofBroken {
                assert!(p.tlds[d.tld].broken_insecure_proof, "{}", d.name);
            }
        }
    }

    #[test]
    fn scaled_counts_follow_rules() {
        let cfg = PopulationConfig::default();
        assert_eq!(cfg.scaled(303_000_000), 303_000);
        assert_eq!(cfg.scaled(62), 62); // small counts stay absolute
        assert_eq!(cfg.scaled(1_980), 2);
        assert_eq!(cfg.scaled(0), 0);
    }

    #[test]
    fn tranco_ranks_unique_and_bounded() {
        let p = Population::generate(PopulationConfig::tiny());
        let mut ranks: Vec<u32> = p.domains.iter().filter_map(|d| d.rank).collect();
        ranks.sort_unstable();
        let expected: Vec<u32> = (1..=p.config.tranco_size.min(ranks.len() as u32)).collect();
        assert_eq!(ranks, expected);
    }

    #[test]
    fn address_pools_are_disjoint_and_routable() {
        use ede_netsim::classify;
        for i in [0usize, 5, 300, 70000] {
            assert!(classify(healthy_addr(i).into()).is_routable());
            assert!(classify(broken_addr(i).into()).is_routable());
            assert!(classify(tld_addr(i).into()).is_routable());
            assert_ne!(healthy_addr(i), broken_addr(i));
        }
    }
}
