//! The bounded query-log store: every scan resolution becomes one
//! [`QueryRecord`] in a fixed-capacity ring, with optional JSONL spill
//! for the records the ring rotates out.
//!
//! This replaces the old unbounded `Vec<Observation>`: a scan at any
//! scale holds at most [`QueryLog::capacity`] records in memory, and the
//! streaming aggregation (see [`crate::aggregate::PartialAggregate`])
//! never needs the full log — the ring exists for the operator surface
//! (`ede_scan::query`, `troubleshoot --log`), not for the report.
//!
//! # Determinism
//!
//! Two fields of a record are *worker-timing-dependent*: `seq` (ring
//! arrival order) and `vtime_ms` (the virtual-clock stamp at
//! completion). Everything else is a pure function of the domain and
//! the simulated world, bit-identical at any worker count or in-flight
//! window. `PartialEq` therefore compares **only the deterministic
//! fields**, and the aggregate fingerprint hashes
//! [`QueryRecord::outcome_line`], which excludes both.

use crate::population::Category;
use ede_resolver::Vendor;
use ede_trace::json::json_string;
use ede_wire::Rcode;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One completed scan resolution, as retained by the query log.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Ring arrival sequence (assigned at push; timing-dependent).
    pub seq: u64,
    /// Virtual-clock stamp at completion, ms (timing-dependent).
    pub vtime_ms: u64,
    /// Scan pass that produced this record (1 or 2).
    pub pass: u8,
    /// Index of the domain in the population.
    pub domain: usize,
    /// The queried name, dotted presentation form.
    pub name: String,
    /// TLD index in the population.
    pub tld: usize,
    /// Tranco rank, if ranked.
    pub rank: Option<u32>,
    /// Planted ground truth (calibration cross-checks only).
    pub category: Category,
    /// Vendor profile the scan ran with.
    pub vendor: Vendor,
    /// Final RCODE.
    pub rcode: Rcode,
    /// Observed EDE codes, wire order.
    pub codes: Vec<u16>,
    /// EXTRA-TEXT of the Network Error entry, when present.
    pub network_error_text: Option<String>,
}

impl QueryRecord {
    /// The record's TLD label, derived from the name (last label before
    /// the root dot) — lets filters work on historical JSONL traces
    /// without the population in hand.
    pub fn tld_label(&self) -> &str {
        self.name
            .trim_end_matches('.')
            .rsplit('.')
            .next()
            .unwrap_or("")
    }

    /// The canonical outcome line: every deterministic field, one
    /// record per line. This is what the commutative scan fingerprint
    /// hashes — `seq`/`vtime_ms` are deliberately excluded (they depend
    /// on worker timing) and so is `pass` (a revisited domain's final
    /// record always comes from pass 2, so it adds nothing).
    pub fn outcome_line(&self) -> String {
        format!(
            "{}|{:?}|{}|{:?}|{:?}|{:?}|{:?}",
            self.name,
            self.category,
            self.tld,
            self.rank,
            self.rcode,
            self.codes,
            self.network_error_text
        )
    }

    /// One-line JSON serialization (the query-log JSONL schema).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"seq\":{},", self.seq));
        out.push_str(&format!("\"vtime\":{},", self.vtime_ms));
        out.push_str(&format!("\"pass\":{},", self.pass));
        out.push_str(&format!("\"domain\":{},", self.domain));
        out.push_str(&format!("\"name\":{},", json_string(&self.name)));
        out.push_str(&format!("\"tld\":{},", self.tld));
        match self.rank {
            Some(r) => out.push_str(&format!("\"rank\":{r},")),
            None => out.push_str("\"rank\":null,"),
        }
        out.push_str(&format!(
            "\"category\":{},",
            json_string(self.category.name())
        ));
        out.push_str(&format!(
            "\"vendor\":{},",
            json_string(&format!("{:?}", self.vendor))
        ));
        out.push_str(&format!("\"rcode\":{},", self.rcode.to_u16()));
        let codes: Vec<String> = self.codes.iter().map(u16::to_string).collect();
        out.push_str(&format!("\"codes\":[{}],", codes.join(",")));
        match &self.network_error_text {
            Some(t) => out.push_str(&format!("\"net\":{}", json_string(t))),
            None => out.push_str("\"net\":null"),
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line back into a record. Returns `None` on any
    /// schema mismatch — callers treat a bad line as corrupt input.
    pub fn from_json(line: &str) -> Option<QueryRecord> {
        let mut p = JsonParser::new(line);
        p.expect('{')?;
        let mut seq = None;
        let mut vtime = None;
        let mut pass = None;
        let mut domain = None;
        let mut name = None;
        let mut tld = None;
        let mut rank: Option<Option<u32>> = None;
        let mut category = None;
        let mut vendor = None;
        let mut rcode = None;
        let mut codes = None;
        let mut net: Option<Option<String>> = None;
        loop {
            let key = p.string()?;
            p.expect(':')?;
            match key.as_str() {
                "seq" => seq = Some(p.number()?),
                "vtime" => vtime = Some(p.number()?),
                "pass" => pass = Some(p.number()? as u8),
                "domain" => domain = Some(p.number()? as usize),
                "name" => name = Some(p.string()?),
                "tld" => tld = Some(p.number()? as usize),
                "rank" => rank = Some(p.number_or_null()?.map(|n| n as u32)),
                "category" => category = Some(Category::parse(&p.string()?)?),
                "vendor" => vendor = Some(parse_vendor_debug(&p.string()?)?),
                "rcode" => rcode = Some(Rcode::from_u16(p.number()? as u16)),
                "codes" => codes = Some(p.number_array()?),
                "net" => net = Some(p.string_or_null()?),
                _ => return None,
            }
            if !p.comma_or_close()? {
                break;
            }
        }
        Some(QueryRecord {
            seq: seq?,
            vtime_ms: vtime?,
            pass: pass?,
            domain: domain?,
            name: name?,
            tld: tld?,
            rank: rank?,
            category: category?,
            vendor: vendor?,
            rcode: rcode?,
            codes: codes?.into_iter().map(|n| n as u16).collect(),
            network_error_text: net?,
        })
    }
}

/// Equality over the **deterministic** fields only: `seq` and
/// `vtime_ms` depend on worker timing and are excluded, so the
/// bit-identity tests can compare records across worker counts and
/// in-flight windows directly.
impl PartialEq for QueryRecord {
    fn eq(&self, other: &Self) -> bool {
        self.pass == other.pass
            && self.domain == other.domain
            && self.name == other.name
            && self.tld == other.tld
            && self.rank == other.rank
            && self.category == other.category
            && self.vendor == other.vendor
            && self.rcode == other.rcode
            && self.codes == other.codes
            && self.network_error_text == other.network_error_text
    }
}

impl Eq for QueryRecord {}

/// Match a vendor by its `Debug` name (the JSONL encoding).
fn parse_vendor_debug(s: &str) -> Option<Vendor> {
    Vendor::ALL.into_iter().find(|v| format!("{v:?}") == s)
}

/// A minimal JSON scanner for the flat query-record schema: strings,
/// unsigned numbers, arrays of numbers, and `null`. Hand-rolled because
/// the workspace is dependency-free by design.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(u8::is_ascii_whitespace)
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&(c as u8)) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    /// After a value: `,` continues the object (true), `}` closes it
    /// (false).
    fn comma_or_close(&mut self) -> Option<bool> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Some(true)
            }
            Some(b'}') => {
                self.pos += 1;
                Some(false)
            }
            _ => None,
        }
    }

    fn number(&mut self) -> Option<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn literal_null(&mut self) -> Option<()> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            Some(())
        } else {
            None
        }
    }

    fn number_or_null(&mut self) -> Option<Option<u64>> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'n') {
            self.literal_null()?;
            Some(None)
        } else {
            Some(Some(self.number()?))
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(self.bytes.get(self.pos + 1..self.pos + 5)?)
                                    .ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                &b => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn string_or_null(&mut self) -> Option<Option<String>> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'n') {
            self.literal_null()?;
            Some(None)
        } else {
            Some(Some(self.string()?))
        }
    }

    fn number_array(&mut self) -> Option<Vec<u64>> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Some(out);
        }
        loop {
            out.push(self.number()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Some(out);
                }
                _ => return None,
            }
        }
    }
}

/// Occupancy and spill accounting for one scan's query log, reported in
/// [`crate::scanner::ScanResult`] and the bench log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryLogStats {
    /// The configured ring capacity.
    pub capacity: usize,
    /// Records currently retained in the ring.
    pub len: usize,
    /// Peak ring occupancy over the scan (never exceeds `capacity`).
    pub peak: usize,
    /// Records rotated out of the ring into the JSONL spill file.
    pub spilled: u64,
    /// Records rotated out with no spill file configured (lost).
    pub dropped: u64,
}

/// The bounded ring + spill store itself. Workers push records in
/// per-chunk batches (one lock acquisition per [`crate::scanner`] claim
/// chunk), so the lock never becomes a per-resolution hot spot.
pub struct QueryLog {
    capacity: usize,
    inner: Mutex<LogInner>,
    next_seq: AtomicU64,
    peak: AtomicUsize,
    spilled: AtomicU64,
    dropped: AtomicU64,
}

struct LogInner {
    ring: VecDeque<QueryRecord>,
    spill: Option<(PathBuf, BufWriter<File>)>,
}

impl QueryLog {
    /// A log retaining at most `capacity` records, spilling rotated-out
    /// records to `spill` as JSONL when a path is given.
    pub fn new(capacity: usize, spill: Option<&Path>) -> std::io::Result<QueryLog> {
        let spill = match spill {
            Some(p) => Some((p.to_path_buf(), BufWriter::new(File::create(p)?))),
            None => None,
        };
        Ok(QueryLog {
            capacity: capacity.max(1),
            inner: Mutex::new(LogInner {
                ring: VecDeque::new(),
                spill,
            }),
            next_seq: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
            spilled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Push a batch of records, assigning their `seq` in arrival order.
    /// When the ring is full the oldest record rotates out — to the
    /// spill file when one is configured, otherwise it is dropped (and
    /// counted).
    pub fn push_batch(&self, records: Vec<QueryRecord>) {
        if records.is_empty() {
            return;
        }
        let mut g = self.inner.lock().expect("query log lock");
        for mut r in records {
            r.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            if g.ring.len() == self.capacity {
                let evicted = g.ring.pop_front().expect("full ring");
                match &mut g.spill {
                    Some((_, w)) => {
                        let _ = writeln!(w, "{}", evicted.to_json());
                        self.spilled.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            g.ring.push_back(r);
        }
        self.peak.fetch_max(g.ring.len(), Ordering::Relaxed);
    }

    /// Flush the spill writer (call once, at the end of the scan).
    pub fn flush_spill(&self) {
        if let Some((_, w)) = &mut self.inner.lock().expect("query log lock").spill {
            let _ = w.flush();
        }
    }

    /// Occupancy and spill accounting.
    pub fn stats(&self) -> QueryLogStats {
        let len = self.inner.lock().expect("query log lock").ring.len();
        QueryLogStats {
            capacity: self.capacity,
            len,
            peak: self.peak.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Drain the ring in `seq` order (consumes the retained records).
    pub fn into_records(self) -> Vec<QueryRecord> {
        let mut inner = self.inner.into_inner().expect("query log lock");
        if let Some((_, w)) = &mut inner.spill {
            let _ = w.flush();
        }
        let mut records: Vec<QueryRecord> = inner.ring.into_iter().collect();
        records.sort_by_key(|r| r.seq);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(domain: usize, codes: Vec<u16>) -> QueryRecord {
        QueryRecord {
            seq: 0,
            vtime_ms: 42,
            pass: 1,
            domain,
            name: format!("d{domain}.example."),
            tld: 3,
            rank: domain.is_multiple_of(2).then_some(domain as u32 + 1),
            category: Category::LameRcode,
            vendor: Vendor::Cloudflare,
            rcode: Rcode::ServFail,
            codes,
            network_error_text: Some(format!("192.0.2.{domain}:53 rcode=REFUSED for x A")),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = record(7, vec![22, 23]);
        let back = QueryRecord::from_json(&r.to_json()).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.seq, r.seq);
        assert_eq!(back.vtime_ms, r.vtime_ms);
        assert_eq!(back.pass, r.pass);

        let mut none = record(8, vec![]);
        none.rank = None;
        none.network_error_text = None;
        let back = QueryRecord::from_json(&none.to_json()).expect("parses");
        assert_eq!(back, none);
        assert_eq!(back.rank, None);
        assert_eq!(back.network_error_text, None);
    }

    #[test]
    fn equality_ignores_timing_fields() {
        let mut a = record(1, vec![22]);
        let mut b = record(1, vec![22]);
        a.seq = 10;
        b.seq = 99;
        a.vtime_ms = 1;
        b.vtime_ms = 2;
        assert_eq!(a, b);
        b.codes = vec![23];
        assert_ne!(a, b);
    }

    #[test]
    fn ring_bounds_and_drops_without_spill() {
        let log = QueryLog::new(4, None).expect("no io");
        log.push_batch((0..10).map(|i| record(i, vec![])).collect());
        let stats = log.stats();
        assert_eq!(stats.capacity, 4);
        assert_eq!(stats.len, 4);
        assert_eq!(stats.peak, 4);
        assert_eq!(stats.dropped, 6);
        assert_eq!(stats.spilled, 0);
        let records = log.into_records();
        assert_eq!(records.len(), 4);
        // The newest records survive.
        assert_eq!(records.last().expect("nonempty").domain, 9);
    }

    #[test]
    fn ring_spills_rotated_records_as_jsonl() {
        let path = std::env::temp_dir().join(format!(
            "ede-scan-querylog-test-{}.jsonl",
            std::process::id()
        ));
        let log = QueryLog::new(3, Some(&path)).expect("spill file");
        log.push_batch((0..8).map(|i| record(i, vec![22])).collect());
        log.flush_spill();
        let stats = log.stats();
        assert_eq!(stats.spilled, 5);
        assert_eq!(stats.dropped, 0);
        let body = std::fs::read_to_string(&path).expect("read spill");
        let spilled: Vec<QueryRecord> = body
            .lines()
            .map(|l| QueryRecord::from_json(l).expect("valid line"))
            .collect();
        assert_eq!(spilled.len(), 5);
        assert_eq!(spilled[0].domain, 0);
        // Ring + spill = the complete log.
        assert_eq!(spilled.len() + log.stats().len, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tld_label_derives_from_name() {
        let r = record(1, vec![]);
        assert_eq!(r.tld_label(), "example");
    }
}
