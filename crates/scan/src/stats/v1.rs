//! Version 1 of the typed stats API: every number a report renderer
//! needs, as plain data.
//!
//! [`StatsSnapshot`] is the scan's streaming aggregation at one moment
//! — mid-scan (exported through [`ede_trace::SnapshotSink`] at the
//! configured cadence) or final (`complete == true`, carried in
//! [`crate::scanner::ScanResult::stats`]). The renderers in
//! [`crate::report`] consume these DTOs only; [`StatsSnapshot::to_json`]
//! is the machine surface, versioned by [`SCHEMA_VERSION`] and pinned
//! by a golden test.
//!
//! Every struct here is `#[non_exhaustive]`: fields can be added in a
//! later schema version without breaking consumers, and construction
//! stays inside the crate (snapshots are *measured*, not assembled by
//! hand).

use crate::aggregate::Aggregate;
use crate::querylog::QueryLogStats;
use crate::scanner::{ScanCacheReport, SweepReport};
use crate::stats;
use ede_resolver::Vendor;
use ede_testbed::domains::all_specs;
use ede_testbed::{agreement, Testbed};
use ede_wire::{EdeCode, RrType};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The JSON schema version emitted by [`StatsSnapshot::to_json`].
pub const SCHEMA_VERSION: u32 = 1;

/// The §4.2 paper inventory: (code, description, paper count) — the
/// typed counterpart of the table `scan_summary` prints.
pub const PAPER_INVENTORY: [(u16, &str, u64); 14] = [
    (22, "No Reachable Authority", 13_965_865),
    (23, "Network Error", 11_647_551),
    (10, "RRSIGs Missing", 2_746_604),
    (9, "DNSKEY Missing", 296_643),
    (6, "DNSSEC Bogus", 82_465),
    (24, "Invalid Data", 12_268),
    (1, "Unsupported DNSKEY Algorithm", 8_751),
    (7, "Signature Expired", 2_877),
    (12, "NSEC Missing", 1_980),
    (2, "Unsupported DS Digest Type", 62),
    (3, "Stale Answer", 32),
    (8, "Signature Not Yet Valid", 29),
    (13, "Cached Error", 8),
    (0, "Other", 7),
];

/// One streaming-aggregation snapshot: deterministic scan results plus
/// the live performance counters at the moment it was taken.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Export sequence number (0 for the final snapshot of a scan that
    /// exported nothing mid-flight).
    pub seq: u64,
    /// Virtual-clock stamp, ms since the simulation epoch.
    pub vtime_ms: u64,
    /// True when the scan had finished (both passes folded).
    pub complete: bool,
    /// Population scale divisor (1:`scale`).
    pub scale: u32,
    /// The commutative scan fingerprint over every folded record.
    pub fingerprint: u64,
    /// Per-EDE breakdown.
    pub ede: EdeBreakdown,
    /// Per-TLD breakdown.
    pub tlds: TldBreakdown,
    /// Tranco rank curve.
    pub ranks: RankBucketCurve,
    /// Cache-tier counters (performance facts, not results).
    pub cache: CacheTierStats,
    /// Traffic counters (performance facts, not results).
    pub traffic: TrafficStats,
    /// Query-log ring occupancy at the snapshot.
    pub query_log: QueryLogStats,
}

/// Per-EDE results: the §4.2 inventory.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct EdeBreakdown {
    /// Domains folded so far (every domain once the scan completes).
    pub total_domains: usize,
    /// Domains carrying at least one EDE code.
    pub ede_domains: usize,
    /// NOERROR answers still carrying EDE.
    pub noerror_with_ede: usize,
    /// Domains whose final RCODE was SERVFAIL.
    pub servfail_domains: usize,
    /// Domains per INFO-CODE.
    pub per_code: BTreeMap<u16, usize>,
    /// Domains per exact (sorted, deduped) code combination.
    pub per_combo: BTreeMap<Vec<u16>, usize>,
    /// Broken-nameserver evidence from Network Error EXTRA-TEXT.
    pub nameservers: NsBreakdown,
}

impl EdeBreakdown {
    /// Fraction of domains triggering EDE.
    pub fn ede_rate(&self) -> f64 {
        self.ede_domains as f64 / self.total_domains.max(1) as f64
    }

    /// Domains resolved (any final RCODE but SERVFAIL) — the chaos
    /// campaigns' survival metric.
    pub fn resolved_domains(&self) -> usize {
        self.total_domains - self.servfail_domains
    }
}

/// §4.2.2 nameserver concentration.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct NsBreakdown {
    /// Unique nameserver addresses seen in Network Error texts.
    pub unique: usize,
    /// Of those, how many answered REFUSED.
    pub refused: usize,
    /// SERVFAIL.
    pub servfail: usize,
    /// Other failures.
    pub other: usize,
    /// Domains affected per nameserver, in address order.
    pub domains_per_ns: Vec<usize>,
}

impl NsBreakdown {
    /// Nameservers to fix to repair `target` of the affected domains.
    pub fn fix_for(&self, target: f64) -> usize {
        stats::keys_to_cover(&self.domains_per_ns, target)
    }
}

/// Per-TLD misconfiguration ratios, split gTLD/ccTLD (Figure 1).
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct TldBreakdown {
    /// Ratio of EDE-triggering domains per gTLD (TLDs with traffic).
    pub gtld_ratios: Vec<f64>,
    /// Per ccTLD.
    pub cctld_ratios: Vec<f64>,
}

impl TldBreakdown {
    /// Figure 1's gTLD CDF series.
    pub fn gtld_cdf(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.gtld_ratios)
    }

    /// Figure 1's ccTLD CDF series.
    pub fn cctld_cdf(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.cctld_ratios)
    }

    /// Fraction of gTLDs with zero misconfigured domains.
    pub fn gtld_zero_fraction(&self) -> f64 {
        stats::fraction_at(&self.gtld_ratios, 0.0)
    }

    /// Fraction of ccTLDs with zero misconfigured domains.
    pub fn cctld_zero_fraction(&self) -> f64 {
        stats::fraction_at(&self.cctld_ratios, 0.0)
    }

    /// Fully misconfigured gTLD count.
    pub fn gtld_fully_broken(&self) -> usize {
        (stats::fraction_at(&self.gtld_ratios, 1.0) * self.gtld_ratios.len() as f64).round()
            as usize
    }

    /// Fully misconfigured ccTLD count.
    pub fn cctld_fully_broken(&self) -> usize {
        (stats::fraction_at(&self.cctld_ratios, 1.0) * self.cctld_ratios.len() as f64).round()
            as usize
    }
}

/// The Tranco rank curve (Figure 2).
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct RankBucketCurve {
    /// Size of the (scaled) ranked list.
    pub tranco_size: u32,
    /// Ranked domains folded so far.
    pub ranked: usize,
    /// Ranks of the EDE-triggering ranked domains, ascending.
    pub ede_ranks: Vec<u32>,
}

impl RankBucketCurve {
    /// Ranked domains that triggered EDE (the paper's 22.1 k overlap).
    pub fn overlap(&self) -> usize {
        self.ede_ranks.len()
    }

    /// Figure 2's CDF series over the EDE-triggering ranks.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let ranks: Vec<f64> = self.ede_ranks.iter().map(|&r| f64::from(r)).collect();
        stats::cdf(&ranks)
    }

    /// EDE-triggering counts per rank bucket: `n` equal-width buckets
    /// over `[1, tranco_size]`, as `(bucket_start, bucket_end, count)`.
    pub fn buckets(&self, n: usize) -> Vec<(u32, u32, usize)> {
        let n = n.max(1) as u32;
        let size = self.tranco_size.max(1);
        let width = size.div_ceil(n);
        let mut out: Vec<(u32, u32, usize)> = (0..n)
            .map(|i| (i * width + 1, ((i + 1) * width).min(size), 0))
            .collect();
        for &r in &self.ede_ranks {
            let i = ((r.saturating_sub(1)) / width).min(n - 1) as usize;
            out[i].2 += 1;
        }
        out
    }

    /// Kolmogorov-style maximum deviation of the rank CDF from the
    /// uniform diagonal (the paper: evenly distributed).
    pub fn max_uniform_deviation(&self) -> f64 {
        let n = f64::from(self.tranco_size.max(1));
        self.cdf()
            .iter()
            .map(|&(x, y)| (y - x / n).abs())
            .fold(0.0f64, f64::max)
    }
}

/// Cache-tier counters — the single source of the hit percentages the
/// human report and the bench writer both print.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct CacheTierStats {
    /// L1 hits (summed over workers).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L1 whole-map clears forced by the capacity cap.
    pub l1_capacity_flips: u64,
    /// Shared (L2) cache hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L2 stale (RFC 8767) serves.
    pub l2_stale_served: u64,
    /// L2 TTL-wheel expiries.
    pub l2_expired: u64,
    /// L2 budget evictions.
    pub l2_evicted: u64,
    /// L2 live entries.
    pub l2_occupancy: u64,
    /// Infra-cache zone-key replays.
    pub infra_key_hits: u64,
    /// Infra-cache referral replays.
    pub infra_referral_hits: u64,
    /// Infra-cache referral misses.
    pub infra_referral_misses: u64,
    /// Range-tier (RFC 8198) synthesis hits.
    pub range_hits: u64,
    /// Range-tier misses.
    pub range_misses: u64,
    /// Range-tier evictions.
    pub range_evicted: u64,
    /// Range-tier live spans.
    pub range_occupancy: u64,
}

impl CacheTierStats {
    pub(crate) fn from_report(cache: &ScanCacheReport) -> CacheTierStats {
        CacheTierStats {
            l1_hits: cache.l1.hits,
            l1_misses: cache.l1.misses,
            l1_capacity_flips: cache.l1.capacity_flips,
            l2_hits: cache.l2.hits,
            l2_misses: cache.l2.misses,
            l2_stale_served: cache.l2.stale_served,
            l2_expired: cache.l2.expired,
            l2_evicted: cache.l2.evicted,
            l2_occupancy: cache.l2.occupancy,
            infra_key_hits: cache.infra.key_hits,
            infra_referral_hits: cache.infra.referral_hits,
            infra_referral_misses: cache.infra.referral_misses,
            range_hits: cache.range.hits,
            range_misses: cache.range.misses,
            range_evicted: cache.range.evicted,
            range_occupancy: cache.range.occupancy,
        }
    }

    fn pct(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            100.0 * hits as f64 / total as f64
        }
    }

    /// L1 hit percentage.
    pub fn l1_hit_pct(&self) -> f64 {
        Self::pct(self.l1_hits, self.l1_misses)
    }

    /// L2 hit percentage.
    pub fn l2_hit_pct(&self) -> f64 {
        Self::pct(self.l2_hits, self.l2_misses)
    }

    /// Infra referral hit percentage.
    pub fn referral_hit_pct(&self) -> f64 {
        Self::pct(self.infra_referral_hits, self.infra_referral_misses)
    }

    /// Range-tier hit percentage.
    pub fn range_hit_pct(&self) -> f64 {
        Self::pct(self.range_hits, self.range_misses)
    }
}

/// Traffic counters — the single source of `queries_per_domain`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct TrafficStats {
    /// Resolutions performed (both passes).
    pub resolutions: usize,
    /// Upstream queries sent.
    pub queries: u64,
    /// Delivered.
    pub delivered: u64,
    /// Failed.
    pub failed: u64,
    /// Synthesis-sweep accounting, when the sweep ran.
    pub sweep: Option<SweepStats>,
}

impl TrafficStats {
    /// Upstream queries per resolution.
    pub fn queries_per_resolution(&self) -> f64 {
        self.queries as f64 / self.resolutions.max(1) as f64
    }
}

/// Post-scan synthesis-sweep accounting.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SweepStats {
    /// Probe resolutions issued.
    pub probes: usize,
    /// Probes answered from the range tier.
    pub synthesized: u64,
    /// Upstream queries the sweep cost.
    pub queries: u64,
}

impl SweepStats {
    /// Fraction of probes the range tier answered.
    pub fn hit_ratio(&self) -> f64 {
        self.synthesized as f64 / self.probes.max(1) as f64
    }
}

impl StatsSnapshot {
    /// Assemble a snapshot from the merged aggregate and the live
    /// counters (crate-internal: snapshots are measured, not built).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        seq: u64,
        vtime_ms: u64,
        complete: bool,
        scale: u32,
        tranco_size: u32,
        agg: &Aggregate,
        cache: &ScanCacheReport,
        resolutions: usize,
        traffic: (u64, u64, u64),
        sweep: Option<&SweepReport>,
        query_log: QueryLogStats,
    ) -> StatsSnapshot {
        StatsSnapshot {
            schema_version: SCHEMA_VERSION,
            seq,
            vtime_ms,
            complete,
            scale,
            fingerprint: agg.fingerprint,
            ede: EdeBreakdown {
                total_domains: agg.total_domains,
                ede_domains: agg.ede_domains,
                noerror_with_ede: agg.noerror_with_ede,
                servfail_domains: agg.servfail_domains,
                per_code: agg.per_code.clone(),
                per_combo: agg.per_combo.clone(),
                nameservers: NsBreakdown {
                    unique: agg.ns_analysis.unique_ns,
                    refused: agg.ns_analysis.refused_ns,
                    servfail: agg.ns_analysis.servfail_ns,
                    other: agg.ns_analysis.other_ns,
                    domains_per_ns: agg.ns_analysis.domains_per_ns.clone(),
                },
            },
            tlds: TldBreakdown {
                gtld_ratios: agg.tld_ratios_gtld.clone(),
                cctld_ratios: agg.tld_ratios_cctld.clone(),
            },
            ranks: RankBucketCurve {
                tranco_size,
                ranked: agg.tranco.len(),
                ede_ranks: agg
                    .tranco
                    .iter()
                    .filter(|(_, ede)| *ede)
                    .map(|(r, _)| *r)
                    .collect(),
            },
            cache: CacheTierStats::from_report(cache),
            traffic: TrafficStats {
                resolutions,
                queries: traffic.0,
                delivered: traffic.1,
                failed: traffic.2,
                sweep: sweep.map(|s| SweepStats {
                    probes: s.probes,
                    synthesized: s.synthesized,
                    queries: s.queries,
                }),
            },
            query_log,
        }
    }

    /// Upstream queries per registered domain — the paper's §5 cost
    /// metric, derived once here for every consumer (report, bench,
    /// binaries).
    pub fn queries_per_domain(&self) -> f64 {
        self.traffic.queries as f64 / self.ede.total_domains.max(1) as f64
    }

    /// True when the deterministic scan *results* agree: fingerprint,
    /// EDE breakdown, TLD ratios, and the rank curve. Performance facts
    /// (cache tiers, traffic, query-log occupancy) and snapshot
    /// provenance (`seq`, `vtime_ms`) are excluded — they legitimately
    /// differ across worker counts and cadences.
    pub fn same_results(&self, other: &StatsSnapshot) -> bool {
        self.fingerprint == other.fingerprint
            && self.ede == other.ede
            && self.tlds == other.tlds
            && self.ranks == other.ranks
    }

    /// The versioned machine-readable report (the `scan_json` surface).
    /// Generated field-by-field from this DTO; the golden test in
    /// `tests/streaming.rs` pins the schema.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"seq\": {},", self.seq);
        let _ = writeln!(out, "  \"vtime_ms\": {},", self.vtime_ms);
        let _ = writeln!(out, "  \"complete\": {},", self.complete);
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);

        let _ = writeln!(out, "  \"ede\": {{");
        let _ = writeln!(out, "    \"total_domains\": {},", self.ede.total_domains);
        let _ = writeln!(out, "    \"ede_domains\": {},", self.ede.ede_domains);
        let _ = writeln!(
            out,
            "    \"noerror_with_ede\": {},",
            self.ede.noerror_with_ede
        );
        let _ = writeln!(
            out,
            "    \"servfail_domains\": {},",
            self.ede.servfail_domains
        );
        let codes: Vec<String> = self
            .ede
            .per_code
            .iter()
            .map(|(c, n)| format!("      \"{c}\": {n}"))
            .collect();
        let _ = writeln!(out, "    \"per_code\": {{\n{}\n    }},", codes.join(",\n"));
        let combos: Vec<String> = self
            .ede
            .per_combo
            .iter()
            .map(|(combo, n)| {
                let key: Vec<String> = combo.iter().map(u16::to_string).collect();
                format!("      \"{}\": {n}", key.join("+"))
            })
            .collect();
        let _ = writeln!(
            out,
            "    \"per_combo\": {{\n{}\n    }},",
            combos.join(",\n")
        );
        let ns = &self.ede.nameservers;
        let _ = writeln!(
            out,
            "    \"nameservers\": {{ \"unique\": {}, \"refused\": {}, \"servfail\": {}, \"other\": {}, \"fix_for_81pct\": {} }}",
            ns.unique,
            ns.refused,
            ns.servfail,
            ns.other,
            ns.fix_for(0.81)
        );
        let _ = writeln!(out, "  }},");

        let _ = writeln!(out, "  \"tlds\": {{");
        let _ = writeln!(out, "    \"gtlds\": {},", self.tlds.gtld_ratios.len());
        let _ = writeln!(out, "    \"cctlds\": {},", self.tlds.cctld_ratios.len());
        let _ = writeln!(
            out,
            "    \"gtld_zero_fraction\": {:.4},",
            self.tlds.gtld_zero_fraction()
        );
        let _ = writeln!(
            out,
            "    \"cctld_zero_fraction\": {:.4},",
            self.tlds.cctld_zero_fraction()
        );
        let _ = writeln!(
            out,
            "    \"gtld_fully_broken\": {},",
            self.tlds.gtld_fully_broken()
        );
        let _ = writeln!(
            out,
            "    \"cctld_fully_broken\": {}",
            self.tlds.cctld_fully_broken()
        );
        let _ = writeln!(out, "  }},");

        let _ = writeln!(out, "  \"ranks\": {{");
        let _ = writeln!(out, "    \"tranco_size\": {},", self.ranks.tranco_size);
        let _ = writeln!(out, "    \"ranked\": {},", self.ranks.ranked);
        let _ = writeln!(out, "    \"overlap\": {}", self.ranks.overlap());
        let _ = writeln!(out, "  }},");

        let c = &self.cache;
        let _ = writeln!(out, "  \"cache\": {{");
        let _ = writeln!(
            out,
            "    \"l1\": {{ \"hits\": {}, \"misses\": {}, \"capacity_flips\": {} }},",
            c.l1_hits, c.l1_misses, c.l1_capacity_flips
        );
        let _ = writeln!(
            out,
            "    \"l2\": {{ \"hits\": {}, \"misses\": {}, \"stale_served\": {}, \"expired\": {}, \"evicted\": {}, \"occupancy\": {} }},",
            c.l2_hits, c.l2_misses, c.l2_stale_served, c.l2_expired, c.l2_evicted, c.l2_occupancy
        );
        let _ = writeln!(
            out,
            "    \"infra\": {{ \"key_hits\": {}, \"referral_hits\": {}, \"referral_misses\": {} }},",
            c.infra_key_hits, c.infra_referral_hits, c.infra_referral_misses
        );
        let _ = writeln!(
            out,
            "    \"ranges\": {{ \"hits\": {}, \"misses\": {}, \"evicted\": {}, \"occupancy\": {} }}",
            c.range_hits, c.range_misses, c.range_evicted, c.range_occupancy
        );
        let _ = writeln!(out, "  }},");

        let t = &self.traffic;
        let _ = writeln!(out, "  \"traffic\": {{");
        let _ = writeln!(out, "    \"resolutions\": {},", t.resolutions);
        let _ = writeln!(out, "    \"queries\": {},", t.queries);
        let _ = writeln!(out, "    \"delivered\": {},", t.delivered);
        let _ = writeln!(out, "    \"failed\": {},", t.failed);
        let _ = writeln!(
            out,
            "    \"queries_per_domain\": {:.3},",
            self.queries_per_domain()
        );
        match &t.sweep {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "    \"sweep\": {{ \"probes\": {}, \"synthesized\": {}, \"queries\": {} }}",
                    s.probes, s.synthesized, s.queries
                );
            }
            None => {
                let _ = writeln!(out, "    \"sweep\": null");
            }
        }
        let _ = writeln!(out, "  }},");

        let q = &self.query_log;
        let _ = writeln!(
            out,
            "  \"query_log\": {{ \"capacity\": {}, \"len\": {}, \"peak\": {}, \"spilled\": {}, \"dropped\": {} }}",
            q.capacity, q.len, q.peak, q.spilled, q.dropped
        );
        out.push_str("}\n");
        out
    }
}

/// One row of Table 1 (the IANA EDE registry).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct CodeRegistryRow {
    /// The INFO-CODE.
    pub code: u16,
    /// Its registered description.
    pub description: &'static str,
}

/// Table 1 as data: every registered EDE code.
pub fn code_registry() -> Vec<CodeRegistryRow> {
    EdeCode::REGISTERED
        .iter()
        .map(|c| CodeRegistryRow {
            code: c.to_u16(),
            description: c.description(),
        })
        .collect()
}

/// One group of Table 2 (subdomains by misconfiguration type).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SubdomainGroup {
    /// Group number (1-based, as in the paper).
    pub group: u8,
    /// Group name.
    pub name: &'static str,
    /// Member subdomain labels.
    pub labels: Vec<&'static str>,
}

/// Table 2 as data: the 63 subdomains in their eight groups.
pub fn subdomain_groups() -> Vec<SubdomainGroup> {
    let specs = all_specs();
    let group_names = [
        "Control subdomain",
        "DS misconfigurations",
        "RRSIG misconfigurations",
        "NSEC3 misconfigurations",
        "DNSKEY misconfigurations",
        "Invalid AAAA glue records",
        "Invalid A glue records",
        "Other",
    ];
    group_names
        .iter()
        .enumerate()
        .map(|(g, name)| SubdomainGroup {
            group: g as u8 + 1,
            name,
            labels: specs
                .iter()
                .filter(|s| s.group == g as u8 + 1)
                .map(|s| s.label)
                .collect(),
        })
        .collect()
}

/// One row of Table 3 (per-subdomain configuration detail).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SubdomainDetail {
    /// The subdomain label.
    pub label: &'static str,
    /// Its configuration, described.
    pub detail: String,
}

/// Table 3 as data.
pub fn subdomain_details() -> Vec<SubdomainDetail> {
    all_specs()
        .iter()
        .map(|s| {
            let detail = match (&s.misconfig, s.group) {
                (Some(m), _) => format!("{m:?}"),
                (None, 1) => "correctly configured control domain".to_string(),
                (None, 4) => format!("NSEC3 iterations = {}", s.nsec3_iterations),
                (None, 6) | (None, 7) => format!("glue = {:?}", s.glue),
                (None, 8) if !s.signed => "not DNSSEC-signed".to_string(),
                (None, 8) => format!("signed with {} / server {:?}", s.algorithm, s.server),
                _ => String::new(),
            };
            SubdomainDetail {
                label: s.label,
                detail,
            }
        })
        .collect()
}

/// Table 4 as data: the 63 × 7 vendor matrix plus agreement stats.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct VendorMatrix {
    /// The vendor columns, in order.
    pub vendors: Vec<Vendor>,
    /// One row per subdomain: (label, per-vendor EDE codes).
    pub rows: Vec<(String, Vec<Vec<u16>>)>,
    /// Subdomains where all vendors agreed.
    pub consistent: usize,
    /// Total subdomains.
    pub total: usize,
    /// Labels of the consistent subdomains.
    pub consistent_labels: Vec<String>,
    /// Inconsistency ratio in `[0, 1]`.
    pub inconsistency_ratio: f64,
    /// Unique INFO-CODEs triggered across the matrix.
    pub unique_codes: Vec<u16>,
}

/// Resolve the whole testbed through all seven profiles and return the
/// matrix as data (the typed counterpart of `report::table4`).
pub fn vendor_matrix() -> VendorMatrix {
    let tb = Testbed::build();
    let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
    let mut rows: Vec<(String, Vec<Vec<u16>>)> = Vec::new();
    for spec in &tb.specs {
        let qname = tb.query_name(spec);
        let mut cols = Vec::new();
        for r in &resolvers {
            r.flush();
            cols.push(r.resolve(&qname, RrType::A).ede_codes());
        }
        rows.push((spec.label.to_string(), cols));
    }
    let agg = agreement::analyze(&rows);
    let unique_codes = agreement::unique_codes(&rows);
    VendorMatrix {
        vendors: Vendor::ALL.to_vec(),
        consistent: agg.consistent,
        total: agg.total,
        consistent_labels: agg.consistent_labels.clone(),
        inconsistency_ratio: agg.inconsistency_ratio(),
        unique_codes,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_and_groups_cover_the_paper() {
        let reg = code_registry();
        assert_eq!(reg.len(), EdeCode::REGISTERED.len());
        assert!(reg.iter().any(|r| r.description == "DNSSEC Bogus"));
        let groups = subdomain_groups();
        assert_eq!(groups.len(), 8);
        assert_eq!(
            groups.iter().map(|g| g.labels.len()).sum::<usize>(),
            all_specs().len()
        );
        assert_eq!(subdomain_details().len(), all_specs().len());
    }

    #[test]
    fn rank_buckets_partition_the_overlap() {
        let curve = RankBucketCurve {
            tranco_size: 100,
            ranked: 50,
            ede_ranks: vec![1, 2, 49, 50, 51, 99, 100],
        };
        let buckets = curve.buckets(4);
        assert_eq!(buckets.len(), 4);
        assert_eq!(
            buckets.iter().map(|b| b.2).sum::<usize>(),
            curve.overlap(),
            "buckets must partition the overlap"
        );
        assert_eq!(buckets[0], (1, 25, 2));
        assert_eq!(buckets[3], (76, 100, 2));
    }
}
