//! Query the scan's query log: a fluent, `#[non_exhaustive]` filter
//! over [`QueryRecord`]s that works identically on live
//! [`crate::scanner::ScanResult::records`] and on historical JSONL
//! traces spilled by the query-log ring (see [`load_jsonl`]).
//!
//! This is the public face of what the troubleshoot CLI used to do with
//! ad-hoc argument matching: build a [`QueryFilter`], apply it, and
//! summarize what matched.
//!
//! ```
//! use ede_scan::query::QueryFilter;
//!
//! let filter = QueryFilter::new()
//!     .code(23)
//!     .tld("com")
//!     .rank_range(1, 500);
//! assert!(filter.describe().contains("code=23"));
//! ```

use crate::population::Category;
use crate::querylog::QueryRecord;
use ede_resolver::Vendor;
use ede_wire::Rcode;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead};
use std::path::Path;

/// Parse a vendor name with the aliases the CLIs accept (`bind`,
/// `bind9`, `unbound`, `powerdns`, `pdns`, `knot`, `cloudflare`, `cf`,
/// `quad9`, `opendns`).
pub fn parse_vendor(s: &str) -> Option<Vendor> {
    match s.to_ascii_lowercase().as_str() {
        "bind" | "bind9" => Some(Vendor::Bind9),
        "unbound" => Some(Vendor::Unbound),
        "powerdns" | "pdns" => Some(Vendor::PowerDns),
        "knot" => Some(Vendor::Knot),
        "cloudflare" | "cf" => Some(Vendor::Cloudflare),
        "quad9" => Some(Vendor::Quad9),
        "opendns" => Some(Vendor::OpenDns),
        _ => None,
    }
}

/// Parse an RCODE by mnemonic (`noerror`, `servfail`, `nxdomain`,
/// `refused`, `formerr`, `notimp`, `notauth`) or numeric value.
pub fn parse_rcode(s: &str) -> Option<Rcode> {
    match s.to_ascii_lowercase().as_str() {
        "noerror" => Some(Rcode::NoError),
        "formerr" => Some(Rcode::FormErr),
        "servfail" => Some(Rcode::ServFail),
        "nxdomain" => Some(Rcode::NxDomain),
        "notimp" => Some(Rcode::NotImp),
        "refused" => Some(Rcode::Refused),
        "notauth" => Some(Rcode::NotAuth),
        other => other.parse::<u16>().ok().map(Rcode::from_u16),
    }
}

/// A conjunctive filter over query records: every set predicate must
/// hold for a record to match.
///
/// `#[non_exhaustive]`: build with [`QueryFilter::new`] (or
/// [`QueryFilter::parse`]) and the fluent setters — new predicates can
/// be added without breaking callers.
#[derive(Debug, Clone, Default, PartialEq)]
#[non_exhaustive]
pub struct QueryFilter {
    /// Record must carry this EDE code.
    pub code: Option<u16>,
    /// Record must come from this vendor profile.
    pub vendor: Option<Vendor>,
    /// Record's name must live directly under this TLD label
    /// (case-insensitive, no dots).
    pub tld: Option<String>,
    /// Record's Tranco rank must exist and fall in this inclusive
    /// range.
    pub rank: Option<(u32, u32)>,
    /// Record's virtual timestamp must fall in this inclusive window
    /// (milliseconds).
    pub vtime: Option<(u64, u64)>,
    /// Record's final RCODE must equal this.
    pub rcode: Option<Rcode>,
    /// Record's planted category must equal this.
    pub category: Option<Category>,
    /// Record must come from this scan pass (1 or 2).
    pub pass: Option<u8>,
    /// Record's domain name must contain this substring
    /// (case-insensitive).
    pub name_contains: Option<String>,
}

impl QueryFilter {
    /// The match-everything filter.
    pub fn new() -> QueryFilter {
        QueryFilter::default()
    }

    /// Require an EDE code.
    pub fn code(mut self, code: u16) -> Self {
        self.code = Some(code);
        self
    }

    /// Require a vendor profile.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = Some(vendor);
        self
    }

    /// Require a TLD (by label, e.g. `"com"`).
    pub fn tld(mut self, tld: &str) -> Self {
        self.tld = Some(tld.trim_matches('.').to_ascii_lowercase());
        self
    }

    /// Require a Tranco rank in `[lo, hi]`.
    pub fn rank_range(mut self, lo: u32, hi: u32) -> Self {
        self.rank = Some((lo.min(hi), lo.max(hi)));
        self
    }

    /// Require a virtual timestamp in `[lo, hi]` milliseconds.
    pub fn vtime_window(mut self, lo_ms: u64, hi_ms: u64) -> Self {
        self.vtime = Some((lo_ms.min(hi_ms), lo_ms.max(hi_ms)));
        self
    }

    /// Require a final RCODE.
    pub fn rcode(mut self, rcode: Rcode) -> Self {
        self.rcode = Some(rcode);
        self
    }

    /// Require a planted category.
    pub fn category(mut self, category: Category) -> Self {
        self.category = Some(category);
        self
    }

    /// Require a scan pass.
    pub fn pass(mut self, pass: u8) -> Self {
        self.pass = Some(pass);
        self
    }

    /// Require a substring of the domain name.
    pub fn name_contains(mut self, needle: &str) -> Self {
        self.name_contains = Some(needle.to_ascii_lowercase());
        self
    }

    /// Parse a compact filter expression: comma-separated `key=value`
    /// pairs. Keys: `code`, `vendor`, `tld`, `rank` (`lo-hi` or a
    /// single rank), `vtime` (`lo-hi` ms), `rcode`, `category`, `pass`,
    /// `name`. Example: `code=23,tld=com,rank=1-500`.
    pub fn parse(expr: &str) -> Result<QueryFilter, String> {
        let mut filter = QueryFilter::new();
        for pair in expr.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
            let value = value.trim();
            match key.trim() {
                "code" => {
                    filter.code = Some(
                        value
                            .parse()
                            .map_err(|_| format!("bad EDE code {value:?}"))?,
                    );
                }
                "vendor" => {
                    filter.vendor = Some(
                        parse_vendor(value).ok_or_else(|| format!("unknown vendor {value:?}"))?,
                    );
                }
                "tld" => filter = filter.tld(value),
                "rank" => {
                    let (lo, hi) = match value.split_once('-') {
                        Some((lo, hi)) => (
                            lo.parse().map_err(|_| format!("bad rank {lo:?}"))?,
                            hi.parse().map_err(|_| format!("bad rank {hi:?}"))?,
                        ),
                        None => {
                            let r = value.parse().map_err(|_| format!("bad rank {value:?}"))?;
                            (r, r)
                        }
                    };
                    filter = filter.rank_range(lo, hi);
                }
                "vtime" => {
                    let (lo, hi) = value
                        .split_once('-')
                        .ok_or_else(|| format!("expected lo-hi window, got {value:?}"))?;
                    filter = filter.vtime_window(
                        lo.parse().map_err(|_| format!("bad vtime {lo:?}"))?,
                        hi.parse().map_err(|_| format!("bad vtime {hi:?}"))?,
                    );
                }
                "rcode" => {
                    filter.rcode =
                        Some(parse_rcode(value).ok_or_else(|| format!("unknown rcode {value:?}"))?);
                }
                "category" => {
                    filter.category = Some(
                        Category::parse(value)
                            .ok_or_else(|| format!("unknown category {value:?}"))?,
                    );
                }
                "pass" => {
                    filter.pass = Some(value.parse().map_err(|_| format!("bad pass {value:?}"))?);
                }
                "name" => filter = filter.name_contains(value),
                other => return Err(format!("unknown filter key {other:?}")),
            }
        }
        Ok(filter)
    }

    /// Render the filter back as the compact expression [`parse`]
    /// accepts (`*` when no predicate is set).
    ///
    /// [`parse`]: QueryFilter::parse
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(code) = self.code {
            parts.push(format!("code={code}"));
        }
        if let Some(vendor) = self.vendor {
            parts.push(format!("vendor={vendor:?}").to_ascii_lowercase());
        }
        if let Some(tld) = &self.tld {
            parts.push(format!("tld={tld}"));
        }
        if let Some((lo, hi)) = self.rank {
            parts.push(format!("rank={lo}-{hi}"));
        }
        if let Some((lo, hi)) = self.vtime {
            parts.push(format!("vtime={lo}-{hi}"));
        }
        if let Some(rcode) = self.rcode {
            parts.push(format!("rcode={}", rcode.to_u16()));
        }
        if let Some(category) = self.category {
            parts.push(format!("category={}", category.name()));
        }
        if let Some(pass) = self.pass {
            parts.push(format!("pass={pass}"));
        }
        if let Some(name) = &self.name_contains {
            parts.push(format!("name={name}"));
        }
        if parts.is_empty() {
            "*".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Does `record` satisfy every set predicate?
    pub fn matches(&self, record: &QueryRecord) -> bool {
        if let Some(code) = self.code {
            if !record.codes.contains(&code) {
                return false;
            }
        }
        if let Some(vendor) = self.vendor {
            if record.vendor != vendor {
                return false;
            }
        }
        if let Some(tld) = &self.tld {
            if !record.tld_label().eq_ignore_ascii_case(tld) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.rank {
            match record.rank {
                Some(r) if (lo..=hi).contains(&r) => {}
                _ => return false,
            }
        }
        if let Some((lo, hi)) = self.vtime {
            if !(lo..=hi).contains(&record.vtime_ms) {
                return false;
            }
        }
        if let Some(rcode) = self.rcode {
            if record.rcode != rcode {
                return false;
            }
        }
        if let Some(category) = self.category {
            if record.category != category {
                return false;
            }
        }
        if let Some(pass) = self.pass {
            if record.pass != pass {
                return false;
            }
        }
        if let Some(needle) = &self.name_contains {
            if !record.name.to_ascii_lowercase().contains(needle) {
                return false;
            }
        }
        true
    }

    /// The matching subset of `records`, in input order.
    pub fn filter<'a>(&self, records: &'a [QueryRecord]) -> Vec<&'a QueryRecord> {
        records.iter().filter(|r| self.matches(r)).collect()
    }

    /// Filter and summarize in one step.
    pub fn summarize(&self, records: &[QueryRecord]) -> FilterSummary {
        FilterSummary::build(self, &self.filter(records))
    }
}

/// What a filter matched: counts by code, TLD, and category, plus the
/// virtual-time span — the troubleshoot CLI's query-mode output, as
/// data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct FilterSummary {
    /// The filter, in [`QueryFilter::describe`] form.
    pub filter: String,
    /// Records matched.
    pub matched: usize,
    /// Distinct domains among the matches.
    pub domains: usize,
    /// Matches carrying at least one EDE code.
    pub with_ede: usize,
    /// Matches per EDE code.
    pub per_code: BTreeMap<u16, usize>,
    /// Matches per TLD label.
    pub per_tld: BTreeMap<String, usize>,
    /// Matches per planted category (by name).
    pub per_category: BTreeMap<&'static str, usize>,
    /// Virtual-time span of the matches, `(first, last)` ms.
    pub vtime_span: Option<(u64, u64)>,
}

impl FilterSummary {
    fn build(filter: &QueryFilter, matches: &[&QueryRecord]) -> FilterSummary {
        let mut summary = FilterSummary {
            filter: filter.describe(),
            matched: matches.len(),
            ..Default::default()
        };
        let mut domains = std::collections::BTreeSet::new();
        for r in matches {
            domains.insert(r.domain);
            if !r.codes.is_empty() {
                summary.with_ede += 1;
            }
            for &c in &r.codes {
                *summary.per_code.entry(c).or_insert(0) += 1;
            }
            *summary
                .per_tld
                .entry(r.tld_label().to_string())
                .or_insert(0) += 1;
            *summary.per_category.entry(r.category.name()).or_insert(0) += 1;
            summary.vtime_span = Some(match summary.vtime_span {
                None => (r.vtime_ms, r.vtime_ms),
                Some((lo, hi)) => (lo.min(r.vtime_ms), hi.max(r.vtime_ms)),
            });
        }
        summary.domains = domains.len();
        summary
    }

    /// Human rendering (the troubleshoot CLI prints this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "query [{}]: {} records, {} domains, {} with EDE",
            self.filter, self.matched, self.domains, self.with_ede
        );
        if let Some((lo, hi)) = self.vtime_span {
            let _ = writeln!(out, "  vtime span: {lo}..{hi} ms");
        }
        if !self.per_code.is_empty() {
            let codes: Vec<String> = self
                .per_code
                .iter()
                .map(|(c, n)| format!("{c}:{n}"))
                .collect();
            let _ = writeln!(out, "  per code: {}", codes.join(" "));
        }
        let mut tlds: Vec<(&String, &usize)> = self.per_tld.iter().collect();
        tlds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        if !tlds.is_empty() {
            let top: Vec<String> = tlds
                .into_iter()
                .take(8)
                .map(|(t, n)| format!("{t}:{n}"))
                .collect();
            let _ = writeln!(out, "  top TLDs: {}", top.join(" "));
        }
        let mut cats: Vec<(&&str, &usize)> = self.per_category.iter().collect();
        cats.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        if !cats.is_empty() {
            let top: Vec<String> = cats
                .into_iter()
                .take(8)
                .map(|(c, n)| format!("{c}:{n}"))
                .collect();
            let _ = writeln!(out, "  top categories: {}", top.join(" "));
        }
        out
    }
}

/// Load a query-log JSONL trace (a ring spill file, or one you saved
/// yourself) back into records. Lines that fail to parse are reported
/// as errors, not skipped: a trace is evidence.
pub fn load_jsonl(path: &Path) -> io::Result<Vec<QueryRecord>> {
    let file = std::fs::File::open(path)?;
    let mut records = Vec::new();
    for (i, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record = QueryRecord::from_json(&line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: malformed query record", path.display(), i + 1),
            )
        })?;
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, rank: Option<u32>, codes: Vec<u16>, pass: u8) -> QueryRecord {
        QueryRecord {
            seq: 0,
            vtime_ms: 1000 * u64::from(pass),
            pass,
            domain: rank.unwrap_or(0) as usize,
            name: name.to_string(),
            tld: 0,
            rank,
            category: Category::HealthyUnsigned,
            vendor: Vendor::Cloudflare,
            rcode: Rcode::NoError,
            codes,
            network_error_text: None,
        }
    }

    #[test]
    fn filters_compose_conjunctively() {
        let records = vec![
            record("a.com.", Some(1), vec![23], 1),
            record("b.com.", Some(900), vec![23], 1),
            record("c.org.", Some(2), vec![23], 1),
            record("d.com.", Some(3), vec![], 2),
        ];
        let filter = QueryFilter::new().code(23).tld("com").rank_range(1, 500);
        let hits = filter.filter(&records);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "a.com.");
    }

    #[test]
    fn parse_round_trips_describe() {
        let filter = QueryFilter::parse("code=23, tld=com, rank=1-500, pass=2").expect("parses");
        assert_eq!(filter.code, Some(23));
        assert_eq!(filter.tld.as_deref(), Some("com"));
        assert_eq!(filter.rank, Some((1, 500)));
        assert_eq!(filter.pass, Some(2));
        let reparsed = QueryFilter::parse(&filter.describe()).expect("round trip");
        assert_eq!(filter, reparsed);
        assert_eq!(QueryFilter::new().describe(), "*");
        assert!(QueryFilter::parse("frobnicate=1").is_err());
        assert!(QueryFilter::parse("rank=x").is_err());
    }

    #[test]
    fn vendor_and_rcode_aliases() {
        assert_eq!(parse_vendor("CF"), Some(Vendor::Cloudflare));
        assert_eq!(parse_vendor("pdns"), Some(Vendor::PowerDns));
        assert_eq!(parse_vendor("nope"), None);
        assert_eq!(parse_rcode("servfail"), Some(Rcode::ServFail));
        assert_eq!(parse_rcode("5"), Some(Rcode::Refused));
        assert_eq!(parse_rcode("nope"), None);
    }

    #[test]
    fn summary_counts_matches() {
        let records = vec![
            record("a.com.", Some(1), vec![23], 1),
            record("b.com.", Some(2), vec![22, 23], 1),
            record("c.org.", None, vec![], 2),
        ];
        let summary = QueryFilter::new().summarize(&records);
        assert_eq!(summary.matched, 3);
        assert_eq!(summary.with_ede, 2);
        assert_eq!(summary.per_code.get(&23), Some(&2));
        assert_eq!(summary.per_tld.get("com"), Some(&2));
        assert_eq!(summary.vtime_span, Some((1000, 2000)));
        let rendered = summary.render();
        assert!(rendered.contains("3 records"));
        assert!(rendered.contains("23:2"));
    }

    #[test]
    fn jsonl_round_trips_through_load() {
        let dir = std::env::temp_dir().join(format!("ede-query-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let records = vec![
            record("a.com.", Some(1), vec![23], 1),
            record("b.org.", None, vec![], 2),
        ];
        let jsonl: String = records.iter().map(|r| r.to_json() + "\n").collect();
        std::fs::write(&path, jsonl).expect("write trace");
        let loaded = load_jsonl(&path).expect("load trace");
        assert_eq!(loaded, records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
