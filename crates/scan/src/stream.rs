//! The streaming side of the scan: a shared `SnapshotStore` (crate
//! internal) that workers merge their per-chunk [`PartialAggregate`]s
//! into, and that exports [`StatsSnapshot`]s to registered
//! [`SnapshotSink`]s at a configurable cadence on the **virtual**
//! clock.
//!
//! # Merge model
//!
//! Workers never share an output buffer: each claim chunk is folded
//! into a worker-private partial and merged under one short mutex hold
//! (`SnapshotStore::merge`). Because [`PartialAggregate::merge`] is
//! commutative and associative, the merged aggregate at end of scan is
//! independent of worker timing — the merge-cadence determinism rule in
//! `docs/CONCURRENCY.md`.
//!
//! # Export cadence
//!
//! After each merge the store checks the virtual clock: when a cadence
//! boundary has passed since the last export (and at least one sink is
//! registered), the merging worker serializes the current snapshot and
//! fans it out. *Which* merges land in a mid-scan snapshot depends on
//! worker timing — mid-scan snapshots are progress reports, each
//! internally consistent but not bit-stable across runs. Only the final
//! snapshot (`complete == true`, exported from `SnapshotStore::finish`
//! after both passes) is deterministic, and that is the one every
//! bit-identity test compares.

use crate::aggregate::{Aggregate, PartialAggregate};
use crate::population::Population;
use crate::querylog::QueryLog;
use crate::scanner::ScanCacheReport;
use crate::stats::v1::StatsSnapshot;
use ede_resolver::Resolver;
use ede_trace::SnapshotSink;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counters for the streaming pipeline itself, reported in
/// [`crate::scanner::ScanResult`] and the bench log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Partial-aggregate merges performed.
    pub merges: u64,
    /// Wall-clock nanoseconds spent inside the merge critical section
    /// (the `aggregate_merge_ns` bench field).
    pub merge_ns: u64,
    /// Snapshots exported to sinks (mid-scan + final).
    pub exports: u64,
}

/// Everything the store needs to assemble a live snapshot at export
/// time, borrowed from the scan's stack frame (the scoped worker
/// threads outlive none of it).
pub(crate) struct LiveCtx<'a> {
    pub pop: &'a Population,
    pub net: &'a ede_netsim::Network,
    pub resolver: &'a Resolver,
    pub log: &'a QueryLog,
    pub resolutions: &'a AtomicUsize,
    pub vendor: ede_resolver::Vendor,
    pub scale: u32,
    pub tranco_size: u32,
}

/// The shared snapshot store.
pub(crate) struct SnapshotStore {
    merged: Mutex<PartialAggregate>,
    sinks: Vec<Arc<dyn SnapshotSink>>,
    cadence_ms: u64,
    next_seq: AtomicU64,
    last_export_ms: AtomicU64,
    merges: AtomicU64,
    merge_ns: AtomicU64,
    exports: AtomicU64,
}

impl SnapshotStore {
    /// A store exporting to `sinks` every `cadence_secs` of virtual
    /// time (`0` disables mid-scan exports; the final snapshot is
    /// always exported when sinks are registered).
    pub fn new(sinks: Vec<Arc<dyn SnapshotSink>>, cadence_secs: u64, start_ms: u64) -> Self {
        SnapshotStore {
            merged: Mutex::new(PartialAggregate::default()),
            sinks,
            cadence_ms: cadence_secs.saturating_mul(1000),
            next_seq: AtomicU64::new(0),
            last_export_ms: AtomicU64::new(start_ms),
            merges: AtomicU64::new(0),
            merge_ns: AtomicU64::new(0),
            exports: AtomicU64::new(0),
        }
    }

    /// Merge one chunk partial, then export a snapshot if a cadence
    /// boundary has passed. Called by workers after every claim chunk.
    pub fn merge(&self, chunk: PartialAggregate, live: &LiveCtx<'_>) {
        if chunk.domains() == 0 {
            return;
        }
        let t = Instant::now();
        {
            let mut merged = self.merged.lock().expect("snapshot store lock");
            merged.merge(chunk);
        }
        self.merge_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.maybe_export(live);
    }

    /// Export a mid-scan snapshot when the virtual clock has crossed a
    /// cadence boundary. The compare-exchange dedupes racing workers:
    /// exactly one wins each boundary.
    fn maybe_export(&self, live: &LiveCtx<'_>) {
        if self.sinks.is_empty() || self.cadence_ms == 0 {
            return;
        }
        let now = live.net.clock().now_millis();
        let last = self.last_export_ms.load(Ordering::Relaxed);
        if now.saturating_sub(last) < self.cadence_ms {
            return;
        }
        if self
            .last_export_ms
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.export(live, false, now);
    }

    /// Build and fan out one snapshot.
    fn export(&self, live: &LiveCtx<'_>, complete: bool, vtime_ms: u64) {
        let snapshot = self.snapshot(live, complete, vtime_ms);
        self.fan_out(&snapshot);
    }

    /// Serialize one snapshot to a single JSON line and hand it to
    /// every sink.
    fn fan_out(&self, snapshot: &StatsSnapshot) {
        // JSONL sinks want single-line documents.
        let line: String = snapshot
            .to_json()
            .lines()
            .map(str::trim_start)
            .collect::<Vec<_>>()
            .join(" ");
        for sink in &self.sinks {
            sink.export_snapshot(snapshot.seq, snapshot.vtime_ms, &line);
        }
        self.exports.fetch_add(1, Ordering::Relaxed);
    }

    /// Claim the next export sequence number (the scanner uses this to
    /// stamp the final snapshot it assembles itself — the mid-scan path
    /// claims through [`SnapshotStore::snapshot`]).
    pub fn claim_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Assemble the current snapshot without exporting it. Mid-scan,
    /// the L1 counters are zero: the per-worker L1 tiers live on worker
    /// stacks and only sum at end of scan.
    pub fn snapshot(&self, live: &LiveCtx<'_>, complete: bool, vtime_ms: u64) -> StatsSnapshot {
        let agg = self.finalize(live.pop);
        let cache = ScanCacheReport {
            l1: Default::default(),
            l2: live.resolver.cache_stats(),
            infra: live.resolver.infra_stats(),
            range: live.resolver.range_stats(),
        };
        StatsSnapshot::from_parts(
            self.next_seq.fetch_add(1, Ordering::Relaxed),
            vtime_ms,
            complete,
            live.scale,
            live.tranco_size,
            &agg,
            &cache,
            live.resolutions.load(Ordering::Relaxed),
            live.net.stats().snapshot(),
            None,
            live.log.stats(),
        )
    }

    /// Finalize the merged aggregate as it stands.
    pub fn finalize(&self, pop: &Population) -> Aggregate {
        self.merged
            .lock()
            .expect("snapshot store lock")
            .finalize(pop)
    }

    /// End of scan: export the final, complete snapshot (assembled by
    /// the scanner, with the summed L1 counters and sweep report the
    /// store cannot see) to every sink — regardless of cadence — and
    /// return the streaming counters.
    pub fn finish(&self, snapshot: &StatsSnapshot) -> StreamReport {
        if !self.sinks.is_empty() {
            self.fan_out(snapshot);
        }
        StreamReport {
            merges: self.merges.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
            exports: self.exports.load(Ordering::Relaxed),
        }
    }
}
