//! Render every table and figure of the paper from live data.

use crate::aggregate::Aggregate;
use crate::population::{Population, PopulationConfig};
use crate::stats;
use ede_resolver::Vendor;
use ede_testbed::domains::all_specs;
use ede_testbed::{agreement, Testbed};
use ede_wire::{EdeCode, RrType};
use std::fmt::Write as _;

/// Table 1: the registered Extended DNS Error codes.
pub fn table1() -> String {
    let mut out = String::from("Table 1: Registered Extended DNS Error codes\n\n");
    let half = EdeCode::REGISTERED.len() / 2;
    out.push_str(&format!(
        "{:<42} {:<42}\n{} {}\n",
        "Code  Description",
        "Code  Description",
        "-".repeat(42),
        "-".repeat(42),
    ));
    for i in 0..half {
        let left = EdeCode::REGISTERED[i];
        let right = EdeCode::REGISTERED[i + half];
        out.push_str(&format!(
            "{:<4}  {:<36} {:<4}  {:<36}\n",
            left.to_u16(),
            left.description(),
            right.to_u16(),
            right.description(),
        ));
    }
    out
}

/// Table 2: the 63 subdomains grouped by misconfiguration type.
pub fn table2() -> String {
    let specs = all_specs();
    let group_names = [
        "Control subdomain",
        "DS misconfigurations",
        "RRSIG misconfigurations",
        "NSEC3 misconfigurations",
        "DNSKEY misconfigurations",
        "Invalid AAAA glue records",
        "Invalid A glue records",
        "Other",
    ];
    let mut out = String::from("Table 2: Custom subdomains grouped by (mis)configuration type\n\n");
    for (g, name) in group_names.iter().enumerate() {
        let labels: Vec<&str> = specs
            .iter()
            .filter(|s| s.group == g as u8 + 1)
            .map(|s| s.label)
            .collect();
        out.push_str(&format!("{}. {name}\n   {}\n", g + 1, labels.join(", ")));
    }
    out
}

/// Table 3: per-subdomain configuration detail.
pub fn table3() -> String {
    let specs = all_specs();
    let mut out = String::from("Table 3: Configuration details of each subdomain\n\n");
    for s in &specs {
        let detail = match (&s.misconfig, s.group) {
            (Some(m), _) => format!("{m:?}"),
            (None, 1) => "correctly configured control domain".to_string(),
            (None, 4) => format!("NSEC3 iterations = {}", s.nsec3_iterations),
            (None, 6) | (None, 7) => format!("glue = {:?}", s.glue),
            (None, 8) if !s.signed => "not DNSSEC-signed".to_string(),
            (None, 8) => format!("signed with {} / server {:?}", s.algorithm, s.server),
            _ => String::new(),
        };
        out.push_str(&format!("{:<26} {detail}\n", s.label));
    }
    out
}

/// Table 4: resolve the whole testbed through all seven profiles and
/// print the matrix plus the agreement statistics.
pub fn table4() -> String {
    let tb = Testbed::build();
    let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
    let mut rows: Vec<(String, Vec<Vec<u16>>)> = Vec::new();

    let mut out = String::from(
        "Table 4: Extended error codes returned by DNS software and public resolvers\n\n",
    );
    out.push_str(&format!("{:<26}", "Subdomain"));
    for v in Vendor::ALL {
        out.push_str(&format!(
            "{:<12}",
            v.name().split(' ').next().unwrap_or("?")
        ));
    }
    out.push('\n');
    out.push_str(&"-".repeat(26 + 12 * 7));
    out.push('\n');

    for spec in &tb.specs {
        let qname = tb.query_name(spec);
        let mut cols = Vec::new();
        out.push_str(&format!("{:<26}", spec.label));
        for r in &resolvers {
            r.flush();
            let codes = r.resolve(&qname, RrType::A).ede_codes();
            let cell = if codes.is_empty() {
                "None".to_string()
            } else {
                codes
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("{cell:<12}"));
            cols.push(codes);
        }
        out.push('\n');
        rows.push((spec.label.to_string(), cols));
    }

    let agg = agreement::analyze(&rows);
    let codes = agreement::unique_codes(&rows);
    let _ = writeln!(
        out,
        "\nConsistent cases: {}/{} ({}), inconsistency {:.1}% (paper: 94%)",
        agg.consistent,
        agg.total,
        agg.consistent_labels.join(", "),
        agg.inconsistency_ratio() * 100.0
    );
    let _ = writeln!(
        out,
        "Unique INFO-CODEs triggered: {} {:?} (paper: 12)",
        codes.len(),
        codes
    );
    out
}

/// §5-style traffic accounting for one scan.
pub fn traffic_line(result: &crate::scanner::ScanResult) -> String {
    let (queries, delivered, failed) = result.traffic;
    let mut out = format!(
        "Traffic: {} resolutions issued {} upstream queries ({} delivered, {} failed) — \
         {:.1} queries/resolution, {:.3} queries/domain \
         (paper: 11.5k pps peak over 12 h for 303M domains)",
        result.resolutions,
        queries,
        delivered,
        failed,
        queries as f64 / result.resolutions.max(1) as f64,
        result.queries_per_domain(),
    );
    if let Some(sweep) = &result.sweep {
        let _ = write!(
            out,
            "\nSweep: {} nonexistent-name probes, {} synthesized from cached ranges ({:.1}%), \
             {} upstream queries spent (RFC 8198)",
            sweep.probes,
            sweep.synthesized,
            100.0 * sweep.hit_ratio(),
            sweep.queries,
        );
    }
    out
}

/// The §4.2 inventory: per-code domain counts vs the paper's values.
pub fn scan_summary(pop: &Population, agg: &Aggregate) -> String {
    let cfg = &pop.config;
    let paper: &[(u16, &str, u64)] = &[
        (22, "No Reachable Authority", 13_965_865),
        (23, "Network Error", 11_647_551),
        (10, "RRSIGs Missing", 2_746_604),
        (9, "DNSKEY Missing", 296_643),
        (6, "DNSSEC Bogus", 82_465),
        (24, "Invalid Data", 12_268),
        (1, "Unsupported DNSKEY Algorithm", 8_751),
        (7, "Signature Expired", 2_877),
        (12, "NSEC Missing", 1_980),
        (2, "Unsupported DS Digest Type", 62),
        (3, "Stale Answer", 32),
        (8, "Signature Not Yet Valid", 29),
        (13, "Cached Error", 8),
        (0, "Other", 7),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Internet-wide scan (scale 1:{}) — {} domains, {} trigger EDE ({:.2}%)",
        cfg.scale,
        agg.total_domains,
        agg.ede_domains,
        100.0 * agg.ede_domains as f64 / agg.total_domains.max(1) as f64
    );
    let _ = writeln!(out, "Paper: 303M domains, 17.7M trigger EDE (5.8%)\n");
    let _ = writeln!(
        out,
        "{:<6}{:<32}{:>12}{:>14}{:>14}",
        "Code", "Description", "Measured", "Paper/scale", "Paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for &(code, desc, paper_count) in paper {
        let measured = agg.per_code.get(&code).copied().unwrap_or(0);
        let expected = cfg.scaled(paper_count);
        let _ = writeln!(
            out,
            "{:<6}{:<32}{:>12}{:>14}{:>14}",
            code, desc, measured, expected, paper_count
        );
    }

    let ns = &agg.ns_analysis;
    let _ = writeln!(
        out,
        "\nBroken nameservers observed via EXTRA-TEXT: {} (REFUSED {}, SERVFAIL {}, other {})",
        ns.unique_ns, ns.refused_ns, ns.servfail_ns, ns.other_ns
    );
    let cover = ns.ns_to_cover(0.81);
    let _ = writeln!(
        out,
        "Fixing the top {cover} nameservers ({:.1}% of {}) repairs 81% of rcode-lame domains \
         (paper: 20k of 293k ≈ 6.8% repairs 81%)",
        100.0 * cover as f64 / ns.unique_ns.max(1) as f64,
        ns.unique_ns
    );
    let _ = writeln!(
        out,
        "NOERROR answers still carrying EDE: {} (paper: 12.2k of the Tranco overlap)",
        agg.noerror_with_ede
    );

    let _ = writeln!(out, "\nTop code combinations:");
    let mut combos: Vec<(&Vec<u16>, &usize)> = agg.per_combo.iter().collect();
    combos.sort_by(|a, b| b.1.cmp(a.1));
    for (combo, count) in combos.into_iter().take(10) {
        let _ = writeln!(out, "  {combo:?}: {count}");
    }
    out
}

/// Machine-readable scan summary (JSON). Hand-rolled rather than pulled
/// through a serialization framework: the shape is fixed and tiny, and
/// every value is a number or a known-safe string.
pub fn scan_json(pop: &Population, agg: &Aggregate) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"scale\": {},", pop.config.scale);
    let _ = writeln!(out, "  \"total_domains\": {},", agg.total_domains);
    let _ = writeln!(out, "  \"ede_domains\": {},", agg.ede_domains);
    let _ = writeln!(out, "  \"noerror_with_ede\": {},", agg.noerror_with_ede);

    let codes: Vec<String> = agg
        .per_code
        .iter()
        .map(|(c, n)| format!("    \"{c}\": {n}"))
        .collect();
    let _ = writeln!(out, "  \"per_code\": {{\n{}\n  }},", codes.join(",\n"));

    let combos: Vec<String> = agg
        .per_combo
        .iter()
        .map(|(combo, n)| {
            let key: Vec<String> = combo.iter().map(u16::to_string).collect();
            format!("    \"{}\": {n}", key.join("+"))
        })
        .collect();
    let _ = writeln!(out, "  \"per_combo\": {{\n{}\n  }},", combos.join(",\n"));

    let ns = &agg.ns_analysis;
    let _ = writeln!(
        out,
        "  \"nameservers\": {{ \"unique\": {}, \"refused\": {}, \"servfail\": {}, \"other\": {}, \"fix_for_81pct\": {} }},",
        ns.unique_ns,
        ns.refused_ns,
        ns.servfail_ns,
        ns.other_ns,
        ns.ns_to_cover(0.81)
    );
    let _ = writeln!(out, "  \"tranco_overlap\": {}", agg.tranco_overlap());
    out.push_str("}\n");
    out
}

/// Figure 1: per-TLD misconfiguration-ratio CDFs.
pub fn figure1(agg: &Aggregate) -> String {
    let mut out = String::from(
        "Figure 1: Ratio of domains that trigger EDE codes across gTLDs and ccTLDs (CDF)\n\n",
    );
    let g0 = stats::fraction_at(&agg.tld_ratios_gtld, 0.0);
    let c0 = stats::fraction_at(&agg.tld_ratios_cctld, 0.0);
    let g1 = stats::fraction_at(&agg.tld_ratios_gtld, 1.0);
    let c1 = stats::fraction_at(&agg.tld_ratios_cctld, 1.0);
    let _ = writeln!(
        out,
        "gTLDs with zero misconfigured domains: {:.1}% (paper: ~38%)",
        g0 * 100.0
    );
    let _ = writeln!(
        out,
        "ccTLDs with zero misconfigured domains: {:.1}% (paper: ~4%)",
        c0 * 100.0
    );
    let _ = writeln!(
        out,
        "Fully misconfigured TLDs: {} gTLDs (paper: 11), {} ccTLDs (paper: 2)\n",
        (g1 * agg.tld_ratios_gtld.len() as f64).round(),
        (c1 * agg.tld_ratios_cctld.len() as f64).round()
    );
    out.push_str("gTLD CDF:\n");
    out.push_str(&stats::ascii_cdf(
        &agg.figure1_gtld(),
        60,
        12,
        "ratio of domains",
    ));
    out.push_str("\nccTLD CDF:\n");
    out.push_str(&stats::ascii_cdf(
        &agg.figure1_cctld(),
        60,
        12,
        "ratio of domains",
    ));
    out
}

/// Figure 2: distribution of EDE-triggering domains across the Tranco
/// ranking.
pub fn figure2(agg: &Aggregate, cfg: &PopulationConfig) -> String {
    let mut out = String::from(
        "Figure 2: Distribution of EDE-triggering domains across the Tranco list (CDF)\n\n",
    );
    let overlap = agg.tranco_overlap();
    let _ = writeln!(
        out,
        "Tranco members scanned: {} (scaled top-{}); overlap with EDE-triggering: {} \
         (paper: 22.1k of 1M)",
        agg.tranco.len(),
        cfg.tranco_size,
        overlap
    );
    let series = agg.figure2();
    // Uniformity check: the CDF of ranks should be close to the diagonal.
    let max_dev = series
        .iter()
        .map(|&(x, y)| (y - x / f64::from(cfg.tranco_size)).abs())
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "Max deviation from uniform: {max_dev:.3} (paper: evenly distributed)\n"
    );
    out.push_str(&stats::ascii_cdf(&series, 60, 12, "Tranco rank"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_codes() {
        let t = table1();
        assert!(t.contains("DNSSEC Bogus"));
        assert!(t.contains("No Reachable Authority"));
        assert!(t.contains("Synthesized"));
        // Both columns: 0..14 and 15..29.
        assert!(t.contains("15"));
    }

    #[test]
    fn table2_has_eight_groups() {
        let t = table2();
        for g in 1..=8 {
            assert!(t.contains(&format!("{g}. ")), "missing group {g}");
        }
        assert!(t.contains("valid"));
        assert!(t.contains("allow-query-localhost"));
    }

    #[test]
    fn table3_covers_all_subdomains() {
        let t = table3();
        for s in all_specs() {
            assert!(t.contains(s.label), "missing {}", s.label);
        }
    }
}
