//! Render every table and figure of the paper from live data.
//!
//! Every renderer here is a *thin view* over the typed DTOs in
//! [`crate::stats::v1`]: the tables render [`v1::code_registry`],
//! [`v1::subdomain_groups`], [`v1::subdomain_details`], and
//! [`v1::vendor_matrix`]; the scan summary, figures, and traffic line
//! render a [`StatsSnapshot`]. No number is computed in this module —
//! if a renderer and a machine consumer disagree, the DTO is wrong,
//! not the view.

use crate::population::PopulationConfig;
use crate::stats;
use crate::stats::v1::{self, StatsSnapshot, PAPER_INVENTORY};
use std::fmt::Write as _;

/// Table 1: the registered Extended DNS Error codes.
pub fn table1() -> String {
    let registry = v1::code_registry();
    let mut out = String::from("Table 1: Registered Extended DNS Error codes\n\n");
    let half = registry.len() / 2;
    out.push_str(&format!(
        "{:<42} {:<42}\n{} {}\n",
        "Code  Description",
        "Code  Description",
        "-".repeat(42),
        "-".repeat(42),
    ));
    for i in 0..half {
        let left = &registry[i];
        let right = &registry[i + half];
        out.push_str(&format!(
            "{:<4}  {:<36} {:<4}  {:<36}\n",
            left.code, left.description, right.code, right.description,
        ));
    }
    out
}

/// Table 2: the 63 subdomains grouped by misconfiguration type.
pub fn table2() -> String {
    let mut out = String::from("Table 2: Custom subdomains grouped by (mis)configuration type\n\n");
    for group in v1::subdomain_groups() {
        out.push_str(&format!(
            "{}. {}\n   {}\n",
            group.group,
            group.name,
            group.labels.join(", ")
        ));
    }
    out
}

/// Table 3: per-subdomain configuration detail.
pub fn table3() -> String {
    let mut out = String::from("Table 3: Configuration details of each subdomain\n\n");
    for row in v1::subdomain_details() {
        out.push_str(&format!("{:<26} {}\n", row.label, row.detail));
    }
    out
}

/// Table 4: resolve the whole testbed through all seven profiles and
/// print the matrix plus the agreement statistics.
pub fn table4() -> String {
    let matrix = v1::vendor_matrix();
    let mut out = String::from(
        "Table 4: Extended error codes returned by DNS software and public resolvers\n\n",
    );
    out.push_str(&format!("{:<26}", "Subdomain"));
    for v in &matrix.vendors {
        out.push_str(&format!(
            "{:<12}",
            v.name().split(' ').next().unwrap_or("?")
        ));
    }
    out.push('\n');
    out.push_str(&"-".repeat(26 + 12 * matrix.vendors.len()));
    out.push('\n');

    for (label, cols) in &matrix.rows {
        out.push_str(&format!("{label:<26}"));
        for codes in cols {
            let cell = if codes.is_empty() {
                "None".to_string()
            } else {
                codes
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("{cell:<12}"));
        }
        out.push('\n');
    }

    let _ = writeln!(
        out,
        "\nConsistent cases: {}/{} ({}), inconsistency {:.1}% (paper: 94%)",
        matrix.consistent,
        matrix.total,
        matrix.consistent_labels.join(", "),
        matrix.inconsistency_ratio * 100.0
    );
    let _ = writeln!(
        out,
        "Unique INFO-CODEs triggered: {} {:?} (paper: 12)",
        matrix.unique_codes.len(),
        matrix.unique_codes
    );
    out
}

/// §5-style traffic accounting for one scan.
pub fn traffic_line(snapshot: &StatsSnapshot) -> String {
    let t = &snapshot.traffic;
    let mut out = format!(
        "Traffic: {} resolutions issued {} upstream queries ({} delivered, {} failed) — \
         {:.1} queries/resolution, {:.3} queries/domain \
         (paper: 11.5k pps peak over 12 h for 303M domains)",
        t.resolutions,
        t.queries,
        t.delivered,
        t.failed,
        t.queries_per_resolution(),
        snapshot.queries_per_domain(),
    );
    if let Some(sweep) = &t.sweep {
        let _ = write!(
            out,
            "\nSweep: {} nonexistent-name probes, {} synthesized from cached ranges ({:.1}%), \
             {} upstream queries spent (RFC 8198)",
            sweep.probes,
            sweep.synthesized,
            100.0 * sweep.hit_ratio(),
            sweep.queries,
        );
    }
    out
}

/// The §4.2 inventory: per-code domain counts vs the paper's values.
pub fn scan_summary(snapshot: &StatsSnapshot) -> String {
    // The snapshot carries the scale divisor; the paper-count scaling
    // rule itself lives on `PopulationConfig::scaled`.
    let cfg = PopulationConfig {
        scale: snapshot.scale,
        ..Default::default()
    };
    let ede = &snapshot.ede;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Internet-wide scan (scale 1:{}) — {} domains, {} trigger EDE ({:.2}%)",
        snapshot.scale,
        ede.total_domains,
        ede.ede_domains,
        100.0 * ede.ede_rate()
    );
    let _ = writeln!(out, "Paper: 303M domains, 17.7M trigger EDE (5.8%)\n");
    let _ = writeln!(
        out,
        "{:<6}{:<32}{:>12}{:>14}{:>14}",
        "Code", "Description", "Measured", "Paper/scale", "Paper"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for &(code, desc, paper_count) in &PAPER_INVENTORY {
        let measured = ede.per_code.get(&code).copied().unwrap_or(0);
        let expected = cfg.scaled(paper_count);
        let _ = writeln!(
            out,
            "{:<6}{:<32}{:>12}{:>14}{:>14}",
            code, desc, measured, expected, paper_count
        );
    }

    let ns = &ede.nameservers;
    let _ = writeln!(
        out,
        "\nBroken nameservers observed via EXTRA-TEXT: {} (REFUSED {}, SERVFAIL {}, other {})",
        ns.unique, ns.refused, ns.servfail, ns.other
    );
    let cover = ns.fix_for(0.81);
    let _ = writeln!(
        out,
        "Fixing the top {cover} nameservers ({:.1}% of {}) repairs 81% of rcode-lame domains \
         (paper: 20k of 293k ≈ 6.8% repairs 81%)",
        100.0 * cover as f64 / ns.unique.max(1) as f64,
        ns.unique
    );
    let _ = writeln!(
        out,
        "NOERROR answers still carrying EDE: {} (paper: 12.2k of the Tranco overlap)",
        ede.noerror_with_ede
    );

    let _ = writeln!(out, "\nTop code combinations:");
    let mut combos: Vec<(&Vec<u16>, &usize)> = ede.per_combo.iter().collect();
    combos.sort_by(|a, b| b.1.cmp(a.1));
    for (combo, count) in combos.into_iter().take(10) {
        let _ = writeln!(out, "  {combo:?}: {count}");
    }
    out
}

/// Machine-readable scan summary: the versioned JSON document generated
/// by [`StatsSnapshot::to_json`] (`schema_version` pinned by the golden
/// test in `tests/streaming.rs`).
pub fn scan_json(snapshot: &StatsSnapshot) -> String {
    snapshot.to_json()
}

/// Figure 1: per-TLD misconfiguration-ratio CDFs.
pub fn figure1(snapshot: &StatsSnapshot) -> String {
    let tlds = &snapshot.tlds;
    let mut out = String::from(
        "Figure 1: Ratio of domains that trigger EDE codes across gTLDs and ccTLDs (CDF)\n\n",
    );
    let _ = writeln!(
        out,
        "gTLDs with zero misconfigured domains: {:.1}% (paper: ~38%)",
        tlds.gtld_zero_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "ccTLDs with zero misconfigured domains: {:.1}% (paper: ~4%)",
        tlds.cctld_zero_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "Fully misconfigured TLDs: {} gTLDs (paper: 11), {} ccTLDs (paper: 2)\n",
        tlds.gtld_fully_broken(),
        tlds.cctld_fully_broken()
    );
    out.push_str("gTLD CDF:\n");
    out.push_str(&stats::ascii_cdf(
        &tlds.gtld_cdf(),
        60,
        12,
        "ratio of domains",
    ));
    out.push_str("\nccTLD CDF:\n");
    out.push_str(&stats::ascii_cdf(
        &tlds.cctld_cdf(),
        60,
        12,
        "ratio of domains",
    ));
    out
}

/// Figure 2: distribution of EDE-triggering domains across the Tranco
/// ranking.
pub fn figure2(snapshot: &StatsSnapshot) -> String {
    let ranks = &snapshot.ranks;
    let mut out = String::from(
        "Figure 2: Distribution of EDE-triggering domains across the Tranco list (CDF)\n\n",
    );
    let _ = writeln!(
        out,
        "Tranco members scanned: {} (scaled top-{}); overlap with EDE-triggering: {} \
         (paper: 22.1k of 1M)",
        ranks.ranked,
        ranks.tranco_size,
        ranks.overlap()
    );
    let _ = writeln!(
        out,
        "Max deviation from uniform: {:.3} (paper: evenly distributed)\n",
        ranks.max_uniform_deviation()
    );
    out.push_str(&stats::ascii_cdf(&ranks.cdf(), 60, 12, "Tranco rank"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ede_testbed::domains::all_specs;

    #[test]
    fn table1_lists_all_codes() {
        let t = table1();
        assert!(t.contains("DNSSEC Bogus"));
        assert!(t.contains("No Reachable Authority"));
        assert!(t.contains("Synthesized"));
        // Both columns: 0..14 and 15..29.
        assert!(t.contains("15"));
    }

    #[test]
    fn table2_has_eight_groups() {
        let t = table2();
        for g in 1..=8 {
            assert!(t.contains(&format!("{g}. ")), "missing group {g}");
        }
        assert!(t.contains("valid"));
        assert!(t.contains("allow-query-localhost"));
    }

    #[test]
    fn table3_covers_all_subdomains() {
        let t = table3();
        for s in all_specs() {
            assert!(t.contains(s.label), "missing {}", s.label);
        }
    }
}
