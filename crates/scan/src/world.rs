//! Materialize a [`Population`] as a simulated internet.
//!
//! Building 303 k literal zones up front would waste memory for no
//! modeling gain, so the scan world synthesizes DNS data *on demand*,
//! deterministically, from the population registry:
//!
//! * the **root zone** is a real, signed [`ede_zone::Zone`] with one
//!   delegation (and DS) per TLD;
//! * each **TLD server** keeps a pre-signed apex skeleton (SOA + NS +
//!   DNSKEY, built once per TLD) and grows, per query, a micro-zone
//!   containing just the queried delegation (NS + glue + DS or NSEC3
//!   opt-out proof), signing only the RRsets a referral-shaped response
//!   can actually carry, then answers through the ordinary
//!   [`ede_authority::ZoneServer`] logic — wire behavior is identical
//!   to a full zone because referral content only ever depends on the
//!   one delegation;
//! * each **hosting server** builds the queried domain's child zone
//!   from its planted [`Category`] (signing it, breaking it, or
//!   flapping it as the category demands) and serves that; a tiny
//!   per-worker burst cache keeps the zone alive across one domain's
//!   A → DNSKEY query burst so it is not rebuilt back-to-back
//!   (deliberately tiny: a large shared memo measurably wrecks
//!   allocator locality at scan scale);
//! * **broken-pool servers** implement the per-address fault modes
//!   (REFUSED / SERVFAIL / silence) of §4.2.2's 293 k lame nameservers.
//!
//! All key material is derived deterministically from names, so a DS
//! served by a TLD today matches the DNSKEY a hosting server synthesizes
//! tomorrow.

use crate::population::{broken_mode, tld_addr, BrokenMode, Category, DomainRecord, Population};
use ede_authority::{Behavior, ZoneServer, ZoneStore};
use ede_crypto::{base32, nsec3hash};
use ede_netsim::{Network, NetworkBuilder, NetworkConfig, Server, ServerResponse, SimClock};
use ede_resolver::config::RootHint;
use ede_resolver::ResolverConfig;
use ede_wire::rdata::{Soa, TypeBitmap};
use ede_wire::{DigestAlg, Message, Name, Rdata, Record, RrType, SecAlg};
use ede_zone::signer::{self, SignerConfig, DAY, SIM_NOW};
use ede_zone::{Denial, Misconfig, Nsec3Config, Rrset, Zone, ZoneKey, ZoneKeys};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;
use std::sync::{Mutex, OnceLock};

/// Address of the scan world's root server.
pub const ROOT_SERVER: Ipv4Addr = Ipv4Addr::new(198, 41, 0, 4);

/// Shared lookup tables.
struct Registry {
    /// Domain apex → record.
    domains: HashMap<Name, DomainRecord>,
    /// TLD name → (index, standby, broken_proof).
    tlds: HashMap<Name, TldEntry>,
    /// TLD name → its registered children (with signedness): the input
    /// to each TLD's honest NSEC3 chain.
    children: HashMap<Name, Vec<(Name, bool)>>,
}

#[derive(Clone)]
struct TldEntry {
    standby_key: bool,
    broken_insecure_proof: bool,
}

/// The built scan world.
pub struct ScanWorld {
    /// The network to scan.
    pub net: Arc<Network>,
    /// Resolver configuration (root hints + trust anchor).
    pub resolver_config: ResolverConfig,
}

fn soa_for(apex: &Name) -> Rdata {
    Rdata::Soa(Soa {
        mname: apex.child("ns1").expect("valid"),
        rname: apex.child("hostmaster").expect("valid"),
        serial: 20230515,
        refresh: 7200,
        retry: 3600,
        expire: 1209600,
        minimum: 60,
    })
}

/// Deterministic keys for a TLD.
fn tld_keys(tld: &Name) -> ZoneKeys {
    ZoneKeys::generate(tld, 8, 2048)
}

/// Deterministic keys for a child domain, with category-dependent
/// algorithm/size.
fn child_keys(apex: &Name, category: Category) -> ZoneKeys {
    match category {
        Category::UnsupportedAlgGost => ZoneKeys::generate(apex, SecAlg::ECC_GOST.0, 2048),
        Category::UnsupportedAlgDsa => ZoneKeys::generate(apex, SecAlg::DSA.0, 1024),
        Category::SmallKey => ZoneKeys::generate(apex, SecAlg::RSASHA1.0, 512),
        _ => ZoneKeys::generate(apex, SecAlg::RSASHA256.0, 2048),
    }
}

/// The DS RDATA(s) a TLD publishes for a domain, per category.
fn child_ds(rec: &DomainRecord) -> Vec<Rdata> {
    let apex = &rec.name;
    let cat = rec.category;
    if !cat.signed() {
        return Vec::new();
    }
    let keys = child_keys(apex, cat);
    match cat {
        Category::DsMismatch => Misconfig::DsBadTag.parent_ds(&keys, apex),
        Category::GostDigest => vec![keys.ksk.ds_rdata(apex, DigestAlg::GOST)],
        Category::UnassignedDigest => vec![keys.ksk.ds_rdata(apex, DigestAlg(8))],
        _ => vec![keys.ksk.ds_rdata(apex, DigestAlg::SHA256)],
    }
}

/// Signer config per category (validity windows, NSEC3 iterations).
fn child_signer_config(cat: Category) -> SignerConfig {
    let mut cfg = SignerConfig::default();
    match cat {
        Category::SigExpired => {
            cfg.inception = SIM_NOW - 400 * DAY;
            cfg.expiration = SIM_NOW - 300 * DAY;
        }
        Category::SigNotYetValid => {
            // §4.2.12: signatures valid starting 2045.
            cfg.inception = SIM_NOW + 8000 * DAY;
            cfg.expiration = SIM_NOW + 8400 * DAY;
        }
        Category::IterationLimit => {
            cfg.denial = Denial::Nsec3(Nsec3Config {
                iterations: 2000,
                salt: vec![0xab],
            });
        }
        Category::UnsupportedAlgGost => cfg.algorithm = SecAlg::ECC_GOST,
        Category::UnsupportedAlgDsa => {
            cfg.algorithm = SecAlg::DSA;
            cfg.key_bits = 1024;
        }
        Category::SmallKey => {
            cfg.algorithm = SecAlg::RSASHA1;
            cfg.key_bits = 512;
        }
        _ => {}
    }
    cfg
}

/// Build the child zone for a domain per its category. Returns the zone
/// (already signed/mutated where applicable).
fn materialize_child(rec: &DomainRecord) -> Zone {
    let apex = &rec.name;
    let cat = rec.category;
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(apex.clone(), 60, soa_for(apex)));
    for (i, addr) in rec.ns_addrs.iter().enumerate() {
        let ns = apex.child(&format!("ns{}", i + 1)).expect("valid");
        zone.add(Record::new(apex.clone(), 60, Rdata::Ns(ns.clone())));
        zone.add(Record::new(ns, 60, Rdata::A(*addr)));
    }
    // Most categories publish an apex A; denial-driven ones must not.
    let wants_a = !matches!(cat, Category::BrokenDenial | Category::IterationLimit);
    if wants_a {
        zone.add(Record::new(
            apex.clone(),
            60,
            Rdata::A(Ipv4Addr::new(203, 0, 113, 10)),
        ));
    }

    if cat.signed() {
        let keys = child_keys(apex, cat);
        if cat == Category::HealthySigned {
            // Lean signing: a healthy signed child only ever serves two
            // RRsets positively — its apex A and its DNSKEY — and a
            // positive answer carries nothing else (no SOA, no denial
            // proof). Signing just those two sets and skipping the
            // NSEC3 chain entirely produces byte-identical responses
            // for every query the scan can send, at a fraction of the
            // build cost. Every misconfigured category still takes the
            // full sign_zone path below.
            let mut dnskey_set = Rrset::empty(apex.clone(), RrType::Dnskey, 3600);
            dnskey_set.push(keys.zsk.dnskey_rdata());
            dnskey_set.push(keys.ksk.dnskey_rdata());
            zone.add_rrset(dnskey_set);
            let window = child_signer_config(cat).window();
            signer::resign_rrset(&mut zone, apex, RrType::A, &keys, window);
            signer::resign_rrset(&mut zone, apex, RrType::Dnskey, &keys, window);
        } else {
            signer::sign_zone(&mut zone, &keys, &child_signer_config(cat));
            match cat {
                Category::BrokenDenial => Misconfig::BadNsec3Next.apply(&mut zone, &keys),
                Category::SigExpired => {
                    // Window already expired via config; nothing else.
                }
                _ => {}
            }
        }
    }
    zone
}

/// Number of flap-table shards; a power of two, matching the resolver
/// cache's shard count.
const FLAP_SHARDS: usize = 16;

/// Per-domain flap counters, sharded by [`Name::shard_hash`] like the
/// resolver cache: the single hosting server object is shared by every
/// healthy address, so one `Mutex<HashMap>` here would serialize all
/// workers that happen to be visiting flapping domains.
struct FlapTable {
    shards: [Mutex<HashMap<Name, u32>>; FLAP_SHARDS],
}

impl FlapTable {
    fn new() -> Self {
        FlapTable {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    /// Lock the shard owning `name`.
    fn shard(&self, name: &Name) -> std::sync::MutexGuard<'_, HashMap<Name, u32>> {
        self.shards[(name.shard_hash() as usize) & (FLAP_SHARDS - 1)]
            .lock()
            .expect("no poisoning")
    }
}

/// Worker-local cache of the few child zones a resolution touches
/// back-to-back. Deliberately tiny: it only needs to survive one
/// domain's query burst, and keeping it small keeps the heap flat (a
/// large shared memo measurably wrecks allocator locality at scan
/// scale).
const CHILD_BURST_SLOTS: usize = 4;

thread_local! {
    static CHILD_BURST: std::cell::RefCell<Vec<(u64, Name, Arc<ZoneServer>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Monotonic id handed to each built world (see `HostingNs::world_id`).
static NEXT_WORLD_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The hosting fabric: serves every healthy-pool domain per its planted
/// category, with per-domain flap state.
struct HostingNs {
    registry: Arc<Registry>,
    /// Query counters for flapping domains.
    flap: FlapTable,
    /// Distinguishes this world's zones in the thread-local memo, so
    /// tests that build several worlds in one thread cannot cross-serve
    /// a same-named domain from an older world.
    world_id: u64,
}

impl HostingNs {
    /// Extract the registered domain (label.tld) an arbitrary qname
    /// belongs to.
    fn domain_of(&self, qname: &Name) -> Option<&DomainRecord> {
        let mut candidate = qname.clone();
        while candidate.label_count() > 2 {
            candidate = candidate.parent()?;
        }
        self.registry.domains.get(&candidate)
    }
}

impl Server for HostingNs {
    fn handle(&self, query: &Message, src: IpAddr, _now: u32) -> ServerResponse {
        let Some(q) = query.first_question() else {
            return ServerResponse::Drop;
        };
        let Some(rec) = self.domain_of(&q.name) else {
            // Not a domain we host.
            let mut resp = Message::response_to(query);
            resp.rcode = ede_wire::Rcode::Refused;
            return ServerResponse::Reply(resp);
        };

        // Flap state: stale/cached-error categories change behavior
        // after their first A answer.
        let mut behavior = Behavior::Normal;
        match rec.category {
            Category::NoEdns => behavior = Behavior::NoEdns,
            Category::NotAuthCached => behavior = Behavior::NotAuthAll,
            Category::StaleFlapRefuse | Category::StaleFlapDrop => {
                let mut flap = self.flap.shard(&rec.name);
                let count = flap.entry(rec.name.clone()).or_insert(0);
                if *count > 0 {
                    behavior = if rec.category == Category::StaleFlapRefuse {
                        Behavior::RefuseAll
                    } else {
                        Behavior::Timeout
                    };
                }
                if q.qtype == RrType::A && q.name == rec.name {
                    *count += 1;
                }
            }
            _ => {}
        }

        if behavior == Behavior::Normal {
            // The common case. A resolution hits the same child zone in
            // an immediate burst (A, then DNSKEY for signed domains), so
            // a handful of thread-local slots absorbs the repeat builds
            // without any shared state or long-lived heap.
            let server = CHILD_BURST.with(|m| {
                let mut m = m.borrow_mut();
                if let Some((_, _, s)) = m
                    .iter()
                    .find(|(id, n, _)| *id == self.world_id && n == &rec.name)
                {
                    return Arc::clone(s);
                }
                let mut store = ZoneStore::new();
                store.insert(materialize_child(rec));
                let s = Arc::new(ZoneServer::new(store));
                if m.len() >= CHILD_BURST_SLOTS {
                    m.remove(0);
                }
                m.push((self.world_id, rec.name.clone(), Arc::clone(&s)));
                s
            });
            return server.answer(query, src);
        }

        // Misbehaving servers (flap, no-EDNS, NOTAUTH) are a sliver of
        // the population; build fresh so behavior stays per-query.
        let zone = materialize_child(rec);
        let mut store = ZoneStore::new();
        store.insert(zone);
        ZoneServer::with_behavior(store, behavior).answer(query, src)
    }
}

/// A broken-pool nameserver with a fixed fault mode.
struct BrokenNs {
    mode: BrokenMode,
}

impl Server for BrokenNs {
    fn handle(&self, query: &Message, src: IpAddr, now: u32) -> ServerResponse {
        let behavior = match self.mode {
            BrokenMode::Refused => Behavior::RefuseAll,
            BrokenMode::ServFail => Behavior::ServfailAll,
            BrokenMode::Drop => Behavior::Timeout,
        };
        ZoneServer::with_behavior(ZoneStore::new(), behavior).handle(query, src, now)
    }
}

/// Which kind of owner a [`TldChain`] entry is — the only thing that
/// differs between their NSEC3 type bitmaps.
#[derive(Clone, Copy)]
enum ChainOwner {
    /// The TLD apex.
    Apex,
    /// The in-zone nameserver host (`ns1.<tld>`).
    Host,
    /// An insecure (unsigned-child) delegation.
    Insecure,
    /// A secure delegation (DS published).
    Secure,
}

/// The honest NSEC3 chain over one TLD's registry: every owner the
/// full zone would contain, hashed and sorted once per TLD. Individual
/// NSEC3 RRsets are synthesized (and signed) on demand from this index,
/// so per-query cost stays at one binary search plus one signature —
/// yet the intervals served to resolvers are globally consistent. That
/// honesty is a prerequisite for RFC 8198 range caching: an interval
/// that dishonestly covered a registered name would let a resolver
/// synthesize NXDOMAIN for a domain that exists.
struct TldChain {
    params: Nsec3Config,
    /// (owner hash, kind), sorted by hash.
    owners: Vec<(Vec<u8>, ChainOwner)>,
}

impl TldChain {
    fn build(tld: &Name, children: &[(Name, bool)]) -> TldChain {
        let params = Nsec3Config::default();
        let mut owners = Vec::with_capacity(children.len() + 2);
        owners.push((params.hash_raw(tld), ChainOwner::Apex));
        owners.push((
            params.hash_raw(&tld.child("ns1").expect("valid")),
            ChainOwner::Host,
        ));
        for (child, signed) in children {
            let kind = if *signed {
                ChainOwner::Secure
            } else {
                ChainOwner::Insecure
            };
            owners.push((params.hash_raw(child), kind));
        }
        owners.sort_by(|a, b| a.0.cmp(&b.0));
        TldChain { params, owners }
    }

    /// Index of the owner whose hash equals `hash`, if any.
    fn matching(&self, hash: &[u8]) -> Option<usize> {
        self.owners
            .binary_search_by(|(h, _)| h.as_slice().cmp(hash))
            .ok()
    }

    /// Index of the owner whose (owner, next-owner) arc covers `hash`.
    /// Callers check [`Self::matching`] first — an owner's own hash
    /// belongs to no arc.
    fn covering(&self, hash: &[u8]) -> usize {
        match self
            .owners
            .binary_search_by(|(h, _)| h.as_slice().cmp(hash))
        {
            Ok(i) => i,
            // Before the first owner: covered by the wraparound arc.
            Err(0) => self.owners.len() - 1,
            Err(i) => i - 1,
        }
    }

    /// Synthesize the signed NSEC3 RRset for owner `idx`.
    fn rrset(&self, idx: usize, apex: &Name, keys: &ZoneKeys, window: (u32, u32)) -> Rrset {
        let (hash, kind) = &self.owners[idx];
        let (next, _) = &self.owners[(idx + 1) % self.owners.len()];
        let listed: &[RrType] = match kind {
            ChainOwner::Apex => &[
                RrType::Soa,
                RrType::Ns,
                RrType::Dnskey,
                RrType::Nsec3param,
                RrType::Rrsig,
            ],
            ChainOwner::Host => &[RrType::A, RrType::Rrsig],
            ChainOwner::Insecure => &[RrType::Ns],
            ChainOwner::Secure => &[RrType::Ns, RrType::Ds, RrType::Rrsig],
        };
        let types = TypeBitmap::from_types(listed.iter().copied());
        let owner = apex.child(&base32::encode(hash)).expect("hash label fits");
        let mut set = Rrset::new(
            owner,
            // Registry operators publish denial records with multi-hour
            // TTLs (com/net use 86400 s); 3600 keeps the chain alive
            // across the scan's 120 s revisit window. Scan observations
            // never read this TTL — only the RFC 8198 range tier does.
            3600,
            Rdata::Nsec3 {
                hash_alg: nsec3hash::NSEC3_HASH_ALG_SHA1,
                flags: 0,
                iterations: self.params.iterations,
                salt: self.params.salt.clone(),
                next_hashed: next.clone(),
                types,
            },
        );
        set.sigs = vec![signer::sign_rrset(&set, &keys.zsk, apex, window)];
        set
    }
}

/// A TLD server: synthesizes the relevant micro-slice of its zone per
/// query.
struct TldServer {
    tld: Name,
    entry: TldEntry,
    registry: Arc<Registry>,
    /// The TLD's keys, derived once instead of per query.
    keys: ZoneKeys,
    /// Signed apex skeleton (SOA + NS + DNSKEY, no denial chain),
    /// built lazily on the first query and cloned per referral.
    template: OnceLock<Zone>,
    /// Honest registry-wide NSEC3 chain, hashed once on first use.
    chain: OnceLock<TldChain>,
}

impl TldServer {
    fn new(tld: Name, entry: TldEntry, registry: Arc<Registry>) -> Self {
        let keys = tld_keys(&tld);
        TldServer {
            tld,
            entry,
            registry,
            keys,
            template: OnceLock::new(),
            chain: OnceLock::new(),
        }
    }

    /// The TLD's honest registry chain.
    fn chain(&self) -> &TldChain {
        self.chain.get_or_init(|| {
            let children = self
                .registry
                .children
                .get(&self.tld)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            TldChain::build(&self.tld, children)
        })
    }

    /// The signed apex skeleton every referral zone starts from.
    ///
    /// Signing with `Denial::None` and grafting denial records per
    /// referral is safe because RRSIG presence in NSEC3 bitmaps is
    /// driven by a flag, not by the signing order, so the bitmaps (and
    /// the deterministic RSA signatures) come out byte-identical to the
    /// legacy sign-everything-per-query build.
    fn template(&self) -> &Zone {
        self.template.get_or_init(|| {
            let mut zone = Zone::new(self.tld.clone());
            zone.add(Record::new(self.tld.clone(), 3600, soa_for(&self.tld)));
            let tld_ns = self.tld.child("ns1").expect("valid");
            zone.add(Record::new(self.tld.clone(), 3600, Rdata::Ns(tld_ns)));
            signer::sign_zone(
                &mut zone,
                &self.keys,
                &SignerConfig {
                    denial: Denial::None,
                    ..SignerConfig::default()
                },
            );
            // The template only ever answers below-apex query shapes
            // (referrals, parent-side DS, their denials) and those never
            // carry the apex DNSKEY RRset — apex DNSKEY queries take the
            // `micro_zone` path, which also applies the standby-SEP
            // mutation. Dropping the set (and its RRSIG) here makes the
            // per-referral template clone meaningfully cheaper.
            zone.remove(&self.tld, RrType::Dnskey);
            if self.entry.broken_insecure_proof {
                // Replicate sign-then-strip: `Misconfig::Nsec3Missing`
                // removes the chain but leaves the apex NSEC3PARAM (and
                // its RRSIG) behind, which is what keeps the server
                // *claiming* it can prove denials (§4.2.9).
                let params = Nsec3Config::default();
                zone.add_rrset(Rrset::new(
                    self.tld.clone(),
                    0,
                    Rdata::Nsec3param {
                        hash_alg: nsec3hash::NSEC3_HASH_ALG_SHA1,
                        flags: 0,
                        iterations: params.iterations,
                        salt: params.salt,
                    },
                ));
                signer::resign_rrset(
                    &mut zone,
                    &self.tld.clone(),
                    RrType::Nsec3param,
                    &self.keys,
                    SignerConfig::default().window(),
                );
            }
            zone
        })
    }

    /// Referral zone for a registered child: the apex template plus the
    /// delegation, signing only RRsets a referral-shaped response (or a
    /// parent-side DS answer) can actually carry.
    fn referral_zone(&self, rec: &DomainRecord) -> Zone {
        let mut zone = self.template().clone();
        for (i, addr) in rec.ns_addrs.iter().enumerate() {
            let ns = rec.name.child(&format!("ns{}", i + 1)).expect("valid");
            zone.add(Record::new(rec.name.clone(), 3600, Rdata::Ns(ns.clone())));
            zone.add(Record::new(ns, 3600, Rdata::A(*addr)));
        }
        let ds = child_ds(rec);
        let window = SignerConfig::default().window();
        if ds.is_empty() {
            // Insecure delegation: referrals and DS NODATA answers need
            // the child's matching NSEC3 — unless this TLD deliberately
            // lost it (§4.2.9). The record is pulled from the honest
            // registry-wide chain, so its interval never covers another
            // registered name: resolvers that retain validated ranges
            // (RFC 8198) must be able to trust it. Only the matching
            // NSEC3 is ever emitted for the query shapes this zone
            // serves, so that is the one RRset worth an RSA signature.
            if !self.entry.broken_insecure_proof {
                let chain = self.chain();
                let idx = chain
                    .matching(&chain.params.hash_raw(&rec.name))
                    .expect("registered child is a chain owner");
                zone.add_rrset(chain.rrset(idx, &self.tld, &self.keys, window));
            }
        } else {
            for d in ds {
                zone.add(Record::new(rec.name.clone(), 3600, d));
            }
            signer::resign_rrset(&mut zone, &rec.name, RrType::Ds, &self.keys, window);
        }
        zone
    }

    fn micro_zone(&self, qname: &Name) -> Zone {
        let mut zone = Zone::new(self.tld.clone());
        zone.add(Record::new(self.tld.clone(), 3600, soa_for(&self.tld)));
        let tld_ns = self.tld.child("ns1").expect("valid");
        zone.add(Record::new(self.tld.clone(), 3600, Rdata::Ns(tld_ns)));

        // Insert the queried delegation if the domain exists.
        let mut candidate = qname.clone();
        while candidate.label_count() > 2 {
            match candidate.parent() {
                Some(p) => candidate = p,
                None => break,
            }
        }
        if let Some(rec) = self.registry.domains.get(&candidate) {
            for (i, addr) in rec.ns_addrs.iter().enumerate() {
                let ns = rec.name.child(&format!("ns{}", i + 1)).expect("valid");
                zone.add(Record::new(rec.name.clone(), 3600, Rdata::Ns(ns.clone())));
                zone.add(Record::new(ns, 3600, Rdata::A(*addr)));
            }
            for ds in child_ds(rec) {
                zone.add(Record::new(rec.name.clone(), 3600, ds));
            }
        }

        signer::sign_zone(
            &mut zone,
            &self.keys,
            &SignerConfig {
                denial: Denial::None,
                ..SignerConfig::default()
            },
        );

        if self.entry.standby_key {
            // Publish an extra SEP key that signs nothing, then re-sign
            // the DNSKEY RRset so the chain still validates (§4.2.3).
            let standby = ZoneKey::generate(&self.tld, "standby", 8, 2048, 257);
            if let Some(set) = zone.get_mut(&self.tld, RrType::Dnskey) {
                set.rdatas.push(standby.dnskey_rdata());
            }
            signer::resign_rrset(
                &mut zone,
                &self.tld.clone(),
                RrType::Dnskey,
                &self.keys,
                SignerConfig::default().window(),
            );
        }

        // Hashed-denial surface: the apex always publishes NSEC3PARAM.
        // Honest TLDs then graft exactly the chain records the queried
        // shape needs, pulled from the registry-wide honest chain;
        // broken TLDs (§4.2.9) publish the PARAM but no chain — the
        // sign-then-strip shape `Misconfig::Nsec3Missing` used to
        // produce by building a full chain and deleting it.
        let window = SignerConfig::default().window();
        let params = Nsec3Config::default();
        zone.add_rrset(Rrset::new(
            self.tld.clone(),
            0,
            Rdata::Nsec3param {
                hash_alg: nsec3hash::NSEC3_HASH_ALG_SHA1,
                flags: 0,
                iterations: params.iterations,
                salt: params.salt,
            },
        ));
        signer::resign_rrset(
            &mut zone,
            &self.tld.clone(),
            RrType::Nsec3param,
            &self.keys,
            window,
        );
        if !self.entry.broken_insecure_proof {
            let chain = self.chain();
            let mut grafted = std::collections::BTreeSet::new();
            grafted.insert(
                chain
                    .matching(&chain.params.hash_raw(&self.tld))
                    .expect("apex is a chain owner"),
            );
            if qname != &self.tld && qname.is_subdomain_of(&self.tld) {
                // Any below-apex name this path serves is unregistered
                // (registered SLDs take the referral path), so the
                // closest encloser is the apex and an NXDOMAIN proof
                // needs the next-closer and wildcard covers.
                let mut next_closer = qname.clone();
                while next_closer.label_count() > self.tld.label_count() + 1 {
                    match next_closer.parent() {
                        Some(p) => next_closer = p,
                        None => break,
                    }
                }
                let nc_hash = chain.params.hash_raw(&next_closer);
                if chain.matching(&nc_hash).is_none() {
                    grafted.insert(chain.covering(&nc_hash));
                    if let Ok(wildcard) = self.tld.child("*") {
                        grafted.insert(chain.covering(&chain.params.hash_raw(&wildcard)));
                    }
                }
            }
            for idx in grafted {
                zone.add_rrset(chain.rrset(idx, &self.tld, &self.keys, window));
            }
        }
        zone
    }
}

impl Server for TldServer {
    fn handle(&self, query: &Message, src: IpAddr, now: u32) -> ServerResponse {
        let Some(q) = query.first_question() else {
            return ServerResponse::Drop;
        };
        // Fast path: queries below the apex for a registered domain are
        // referral-shaped (or parent-side DS lookups) — serve them from
        // a memoized zone grown off the pre-signed apex template rather
        // than signing a full micro-zone from scratch per query.
        if q.name != self.tld {
            let mut candidate = q.name.clone();
            while candidate.label_count() > 2 {
                match candidate.parent() {
                    Some(p) => candidate = p,
                    None => break,
                }
            }
            if let Some(rec) = self.registry.domains.get(&candidate) {
                let mut store = ZoneStore::new();
                store.insert(self.referral_zone(rec));
                return ZoneServer::new(store).handle(query, src, now);
            }
        }
        // Apex queries (DNSKEY/SOA) and unregistered names keep the
        // legacy full build.
        let zone = self.micro_zone(&q.name);
        let mut store = ZoneStore::new();
        store.insert(zone);
        ZoneServer::new(store).handle(query, src, now)
    }
}

impl ScanWorld {
    /// Build the world for a population.
    pub fn build(pop: &Population) -> ScanWorld {
        let mut children: HashMap<Name, Vec<(Name, bool)>> = HashMap::new();
        for d in &pop.domains {
            if let Some(tld) = d.name.parent() {
                children
                    .entry(tld)
                    .or_default()
                    .push((d.name.clone(), d.category.signed()));
            }
        }
        let registry = Arc::new(Registry {
            domains: pop
                .domains
                .iter()
                .map(|d| (d.name.clone(), d.clone()))
                .collect(),
            tlds: pop
                .tlds
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        TldEntry {
                            standby_key: t.standby_key,
                            broken_insecure_proof: t.broken_insecure_proof,
                        },
                    )
                })
                .collect(),
            children,
        });

        // Zero-latency network: the virtual clock must stand still
        // during a pass so flap/stale timing stays under test control.
        let clock = SimClock::new();
        let mut net = NetworkBuilder::new().config(NetworkConfig {
            rtt_ms: 0,
            timeout_ms: 0,
            ..Default::default()
        });

        // Root zone: real, signed, one delegation per TLD.
        let root = Name::root();
        let mut root_zone = Zone::new(root.clone());
        root_zone.add(Record::new(root.clone(), 3600, soa_for(&root)));
        let root_ns = Name::parse("ns1").expect("valid");
        root_zone.add(Record::new(root.clone(), 3600, Rdata::Ns(root_ns.clone())));
        root_zone.add_a(root_ns, ROOT_SERVER);
        for tld in &pop.tlds {
            let ns = tld.name.child("ns1").expect("valid");
            root_zone.add(Record::new(tld.name.clone(), 3600, Rdata::Ns(ns.clone())));
            root_zone.add_a(ns, tld_addr(tld.server_index));
            let keys = tld_keys(&tld.name);
            root_zone.add(Record::new(
                tld.name.clone(),
                3600,
                keys.ksk.ds_rdata(&tld.name, DigestAlg::SHA256),
            ));
        }
        let root_keys = ZoneKeys::generate(&root, 8, 2048);
        signer::sign_zone(&mut root_zone, &root_keys, &SignerConfig::default());
        let trust_anchor = root_keys.ksk.ds_rdata(&root, DigestAlg::SHA256);

        let mut store = ZoneStore::new();
        store.insert(root_zone);
        net.register(IpAddr::V4(ROOT_SERVER), Arc::new(ZoneServer::new(store)));

        // TLD servers.
        for tld in &pop.tlds {
            net.register(
                IpAddr::V4(tld_addr(tld.server_index)),
                Arc::new(TldServer::new(
                    tld.name.clone(),
                    registry.tlds[&tld.name].clone(),
                    Arc::clone(&registry),
                )),
            );
        }

        // Hosting fabric: one shared server object on every healthy
        // address.
        let hosting = Arc::new(HostingNs {
            registry: Arc::clone(&registry),
            flap: FlapTable::new(),
            world_id: NEXT_WORLD_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        });
        for addr in &pop.healthy_ns {
            net.register(IpAddr::V4(*addr), hosting.clone() as Arc<dyn Server>);
        }

        // Broken pool.
        let total_broken = pop.broken_ns.len();
        for (i, addr) in pop.broken_ns.iter().enumerate() {
            net.register(
                IpAddr::V4(*addr),
                Arc::new(BrokenNs {
                    mode: broken_mode(i, total_broken),
                }),
            );
        }

        let mut resolver_config = ResolverConfig::with_roots(
            vec![RootHint {
                name: Name::parse("ns1").expect("valid"),
                addr: IpAddr::V4(ROOT_SERVER),
            }],
            vec![trust_anchor],
        );
        resolver_config.failure_ttl_secs = 900;

        ScanWorld {
            net: Arc::new(net.build(clock)),
            resolver_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use ede_resolver::{Resolver, Vendor, VendorProfile};
    use ede_wire::Rcode;

    fn world_and_resolver() -> (Population, ScanWorld, Resolver) {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let resolver = Resolver::new(
            Arc::clone(&world.net),
            VendorProfile::new(Vendor::Cloudflare),
            world.resolver_config.clone(),
        );
        (pop, world, resolver)
    }

    use crate::population::Population;

    fn first_of(pop: &Population, cat: Category) -> &DomainRecord {
        pop.domains
            .iter()
            .find(|d| d.category == cat)
            .unwrap_or_else(|| panic!("population lacks {cat:?}"))
    }

    #[test]
    fn healthy_unsigned_resolves() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::HealthyUnsigned);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "{}: {:?}", d.name, res.diagnosis);
        assert!(res.ede.is_empty());
    }

    #[test]
    fn healthy_signed_is_secure() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::HealthySigned);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "{}: {:?}", d.name, res.diagnosis);
        assert!(res.authentic_data, "{:?}", res.diagnosis);
        assert!(res.ede.is_empty());
    }

    #[test]
    fn lame_rcode_gives_22_23() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::LameRcode);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::ServFail);
        assert_eq!(res.ede_codes(), vec![22, 23], "{:?}", res.diagnosis);
    }

    #[test]
    fn lame_silent_gives_22_only() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::LameSilent);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.ede_codes(), vec![22], "{:?}", res.diagnosis);
    }

    #[test]
    fn partial_broken_is_noerror_with_23() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::PartialBroken);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "{:?}", res.diagnosis);
        assert_eq!(res.ede_codes(), vec![23]);
    }

    #[test]
    fn standby_member_is_noerror_with_10() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::StandbyTldMember);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::NoError, "{:?}", res.diagnosis);
        assert_eq!(res.ede_codes(), vec![10]);
    }

    #[test]
    fn ds_mismatch_gives_9() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::DsMismatch);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.rcode, Rcode::ServFail);
        assert_eq!(res.ede_codes(), vec![9], "{:?}", res.diagnosis);
    }

    #[test]
    fn unreachable_signed_gives_9_22_23() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::UnreachableSigned);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.ede_codes(), vec![9, 22, 23], "{:?}", res.diagnosis);
    }

    #[test]
    fn broken_denial_gives_6() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::BrokenDenial);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.ede_codes(), vec![6], "{:?}", res.diagnosis);
    }

    #[test]
    fn no_edns_gives_24() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::NoEdns);
        let res = resolver.resolve(&d.name, RrType::A);
        let codes = res.ede_codes();
        assert!(codes.contains(&24), "{codes:?} {:?}", res.diagnosis);
    }

    #[test]
    fn unsupported_algorithms_give_1() {
        let (pop, _world, resolver) = world_and_resolver();
        for cat in [
            Category::UnsupportedAlgGost,
            Category::UnsupportedAlgDsa,
            Category::SmallKey,
        ] {
            let d = first_of(&pop, cat);
            let res = resolver.resolve(&d.name, RrType::A);
            assert_eq!(res.ede_codes(), vec![1], "{cat:?}: {:?}", res.diagnosis);
        }
    }

    #[test]
    fn sig_windows_give_7_and_8() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::SigExpired);
        assert_eq!(resolver.resolve(&d.name, RrType::A).ede_codes(), vec![7]);
        let d = first_of(&pop, Category::SigNotYetValid);
        assert_eq!(resolver.resolve(&d.name, RrType::A).ede_codes(), vec![8]);
    }

    #[test]
    fn insecure_proof_broken_gives_12() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::InsecureProofBroken);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.ede_codes(), vec![12], "{:?}", res.diagnosis);
    }

    #[test]
    fn digest_categories_give_2() {
        let (pop, _world, resolver) = world_and_resolver();
        for cat in [Category::GostDigest, Category::UnassignedDigest] {
            let d = first_of(&pop, cat);
            let res = resolver.resolve(&d.name, RrType::A);
            assert_eq!(res.ede_codes(), vec![2], "{cat:?}: {:?}", res.diagnosis);
        }
    }

    #[test]
    fn iteration_limit_gives_0() {
        let (pop, _world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::IterationLimit);
        let res = resolver.resolve(&d.name, RrType::A);
        assert_eq!(res.ede_codes(), vec![0], "{:?}", res.diagnosis);
        assert_eq!(res.ede[0].extra_text, "iteration limit exceeded");
    }

    #[test]
    fn stale_flap_serves_stale_on_revisit() {
        let (pop, world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::StaleFlapRefuse);
        let first = resolver.resolve(&d.name, RrType::A);
        assert_eq!(first.rcode, Rcode::NoError, "{:?}", first.diagnosis);
        // Let the 60 s TTL lapse, then revisit: the flap makes the live
        // path fail and the stale entry is served.
        world.net.clock().advance_secs(120);
        let second = resolver.resolve(&d.name, RrType::A);
        assert_eq!(second.rcode, Rcode::NoError);
        let codes = second.ede_codes();
        assert!(codes.contains(&3), "{codes:?} {:?}", second.diagnosis);
        assert!(codes.contains(&22), "{codes:?}");
    }

    #[test]
    fn notauth_revisit_hits_failure_cache() {
        let (pop, world, resolver) = world_and_resolver();
        let d = first_of(&pop, Category::NotAuthCached);
        let first = resolver.resolve(&d.name, RrType::A);
        assert_eq!(first.rcode, Rcode::ServFail);
        world.net.clock().advance_secs(120);
        let second = resolver.resolve(&d.name, RrType::A);
        assert_eq!(second.rcode, Rcode::ServFail);
        assert!(
            second.ede_codes().contains(&13),
            "{:?} {:?}",
            second.ede_codes(),
            second.diagnosis
        );
    }
}
