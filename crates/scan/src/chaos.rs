//! Chaos campaigns: sweep the fault-plan intensity over the scan world
//! and report how the EDE-code inventory shifts.
//!
//! A campaign runs one scan *leg* per requested intensity, each on a
//! fresh [`ScanWorld`] built from the same population (flap state and
//! the virtual clock are part of a scan, so worlds are never reused):
//!
//! * The **intensity-0 leg** runs with the default [`ScanConfig`] and
//!   no fault plan attached — byte for byte the plain `repro-scan`
//!   configuration. [`baseline_matches_plain_scan`] asserts the
//!   equivalence by actually running both.
//! * **Degraded legs** attach [`FaultPlan::intensity`] to the world and
//!   scan with a single worker and a hardened [`RetryPolicy`]. One
//!   worker keeps the interleaving of fault decisions with the shared
//!   virtual clock deterministic, so each leg is bit-stable for a given
//!   seed (see `docs/ROBUSTNESS.md` for why this caveat exists).
//!
//! The per-leg report carries the code inventory, the resolved
//! fraction, and the retry/hedge/TC-fallback/fault counters from both
//! the metrics registry and the transport accounting — the two are
//! reconciled in [`ChaosLeg::reconcile`].

use crate::population::Population;
use crate::scanner::{scan, ScanConfig};
use crate::world::ScanWorld;
use ede_netsim::{FaultPlan, TrafficSnapshot};
use ede_resolver::{RetryPolicy, Vendor};
use ede_trace::MetricsSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Campaign parameters.
///
/// `#[non_exhaustive]`: construct with [`ChaosConfig::default()`] and
/// the fluent `with_*` methods.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ChaosConfig {
    /// Seed for the fault plans (and the hardened policy's jitter).
    pub seed: u64,
    /// Fault intensities to sweep, one leg each. `0.0` is the baseline.
    pub intensities: Vec<f64>,
    /// Vendor profile to scan with.
    pub vendor: Vendor,
    /// Retry policy for the degraded (intensity > 0) legs.
    pub retry: RetryPolicy,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x0EDE_FA17,
            intensities: vec![0.0, 0.02, 0.05, 0.10],
            vendor: Vendor::Cloudflare,
            retry: RetryPolicy::default(),
        }
    }
}

impl ChaosConfig {
    /// Set the fault seed (also used for retry jitter).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.retry = self.retry.with_jitter_seed(seed);
        self
    }

    /// Set the intensity sweep.
    pub fn with_intensities(mut self, intensities: Vec<f64>) -> Self {
        self.intensities = intensities;
        self
    }

    /// Set the vendor profile.
    pub fn with_vendor(mut self, vendor: Vendor) -> Self {
        self.vendor = vendor;
        self
    }

    /// Set the retry policy used by degraded legs.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// One leg of the sweep: a full scan at one fault intensity.
#[derive(Debug, Clone)]
pub struct ChaosLeg {
    /// The injected intensity.
    pub intensity: f64,
    /// Domains whose final RCODE was not SERVFAIL.
    pub resolved: usize,
    /// Total domains scanned.
    pub total: usize,
    /// EDE-code inventory: code → number of carrying domains.
    pub per_code: BTreeMap<u16, usize>,
    /// Metrics collected through the trace pipeline.
    pub metrics: MetricsSnapshot,
    /// Transport-level accounting.
    pub traffic: TrafficSnapshot,
}

impl ChaosLeg {
    /// Fraction of domains resolved (any RCODE but SERVFAIL).
    pub fn resolved_fraction(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.resolved as f64 / self.total as f64
    }

    /// Cross-check the trace-pipeline counters against the transport
    /// accounting; returns the mismatches (empty when they reconcile).
    ///
    /// * every transport query is a `QuerySent` event;
    /// * every stream query was caused by exactly one TC fallback;
    /// * every fault decision produced exactly one `FaultInjected`.
    pub fn reconcile(&self) -> Vec<String> {
        let mut bad = Vec::new();
        if self.metrics.queries_sent != self.traffic.queries {
            bad.push(format!(
                "queries: metrics {} != traffic {}",
                self.metrics.queries_sent, self.traffic.queries
            ));
        }
        if self.metrics.tc_fallbacks != self.traffic.stream_queries {
            bad.push(format!(
                "tc-fallbacks: metrics {} != stream queries {}",
                self.metrics.tc_fallbacks, self.traffic.stream_queries
            ));
        }
        if self.metrics.faults_injected != self.traffic.faults {
            bad.push(format!(
                "faults: metrics {} != traffic {}",
                self.metrics.faults_injected, self.traffic.faults
            ));
        }
        bad
    }
}

/// The whole sweep.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One leg per intensity, in sweep order.
    pub legs: Vec<ChaosLeg>,
}

impl ChaosReport {
    /// Render an operator-facing table: per leg, the resolved fraction,
    /// hardening counters, and how the code inventory shifted relative
    /// to the first (baseline) leg.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>9}  {:>9}  {:>8}  {:>7}  {:>7}  {:>9}  {:>7}  inventory shift vs baseline",
            "intensity", "resolved", "fraction", "retries", "hedges", "tc-fallbk", "faults"
        );
        let baseline = self.legs.first().map(|l| l.per_code.clone());
        for leg in &self.legs {
            let mut shift = String::new();
            if let Some(base) = &baseline {
                let codes: std::collections::BTreeSet<u16> =
                    base.keys().chain(leg.per_code.keys()).copied().collect();
                for code in codes {
                    let before = base.get(&code).copied().unwrap_or(0) as i64;
                    let after = leg.per_code.get(&code).copied().unwrap_or(0) as i64;
                    if after != before {
                        let _ = write!(shift, " {code}:{:+}", after - before);
                    }
                }
            }
            if shift.is_empty() {
                shift = " (none)".to_string();
            }
            let _ = writeln!(
                out,
                "{:>9.3}  {:>9}  {:>7.2}%  {:>7}  {:>7}  {:>9}  {:>7} {}",
                leg.intensity,
                leg.resolved,
                100.0 * leg.resolved_fraction(),
                leg.metrics.retries,
                leg.metrics.hedges,
                leg.metrics.tc_fallbacks,
                leg.metrics.faults_injected,
                shift
            );
        }
        out
    }
}

/// Run one leg: build a fresh world, attach the fault plan (noop plans
/// are dropped by the network), scan, and summarize.
fn run_leg(pop: &Population, config: &ChaosConfig, intensity: f64) -> ChaosLeg {
    let world = ScanWorld::build(pop);
    let scan_cfg = if intensity == 0.0 {
        // The baseline leg IS the plain repro-scan configuration.
        ScanConfig::builder().vendor(config.vendor).build()
    } else {
        world
            .net
            .set_fault_plan(FaultPlan::intensity(config.seed, intensity));
        // One worker: fault decisions are interleaved with the shared
        // virtual clock, so per-seed bit-stability needs a serial scan.
        ScanConfig::builder()
            .workers(1)
            .vendor(config.vendor)
            .retry(config.retry.clone())
            .build()
    };
    let result = scan(pop, &world, &scan_cfg);
    ChaosLeg {
        intensity,
        resolved: result.stats.ede.resolved_domains(),
        total: result.stats.ede.total_domains,
        per_code: result.stats.ede.per_code.clone(),
        metrics: result.metrics,
        traffic: result.traffic_full,
    }
}

/// Run the whole sweep.
pub fn campaign(pop: &Population, config: &ChaosConfig) -> ChaosReport {
    ChaosReport {
        legs: config
            .intensities
            .iter()
            .map(|&i| run_leg(pop, config, i))
            .collect(),
    }
}

/// Assert (by running both) that the intensity-0 leg is bit-identical
/// to a plain scan: same observations, same inventory, same traffic.
/// Returns the differences; empty means identical.
pub fn baseline_matches_plain_scan(pop: &Population, config: &ChaosConfig) -> Vec<String> {
    let plain_world = ScanWorld::build(pop);
    let plain = scan(
        pop,
        &plain_world,
        &ScanConfig::builder().vendor(config.vendor).build(),
    );
    let leg_world = ScanWorld::build(pop);
    leg_world
        .net
        .set_fault_plan(FaultPlan::intensity(config.seed, 0.0));
    let leg = scan(
        pop,
        &leg_world,
        &ScanConfig::builder().vendor(config.vendor).build(),
    );
    let mut bad = Vec::new();
    if !plain.stats.same_results(&leg.stats) || plain.final_records() != leg.final_records() {
        bad.push("scan results differ at intensity 0".to_string());
    }
    if plain.traffic != leg.traffic {
        bad.push(format!(
            "traffic differs at intensity 0: {:?} != {:?}",
            plain.traffic, leg.traffic
        ));
    }
    if plain.metrics != leg.metrics {
        bad.push("metrics differ at intensity 0".to_string());
    }
    bad
}

/// Compute the 63 × 7 testbed matrix and compare it with the paper's
/// Table 4 — the chaos binary runs this at intensity zero to prove the
/// hardening left the headline result untouched. Returns the differing
/// cells; empty means bit-identical.
pub fn table4_deviation() -> Vec<String> {
    use ede_testbed::{expectations::table4, Testbed};
    use ede_wire::RrType;

    let tb = Testbed::build();
    let resolvers: Vec<_> = Vendor::ALL.iter().map(|&v| tb.resolver(v)).collect();
    let mut bad = Vec::new();
    for (spec, exp) in tb.specs.iter().zip(table4()) {
        let qname = tb.query_name(spec);
        for (i, r) in resolvers.iter().enumerate() {
            r.flush();
            let got = r.resolve(&qname, RrType::A).ede_codes();
            if got != exp.codes[i].to_vec() {
                bad.push(format!(
                    "{} col {i}: got {:?}, expected {:?}",
                    spec.label, got, exp.codes[i]
                ));
            }
        }
    }
    bad
}

/// The Table 4 matrix again, but with the seven vendor columns of each
/// row resolved *concurrently* on one event-driven task pool: per spec,
/// flush all seven resolvers, spawn the seven resolutions into a single
/// pool, then compare every cell. Proves the paper's headline matrix
/// survives high in-flight concurrency, not just the serial walk.
/// Returns the differing cells; empty means bit-identical.
///
/// The per-spec flush order is preserved from [`table4_deviation`]: all
/// columns of a row see the same freshly-flushed caches, so cache state
/// cannot leak between specs (the reason the serial walk flushes too).
pub fn table4_concurrent_deviation() -> Vec<String> {
    use ede_resolver::ResolutionPool;
    use ede_testbed::{expectations::table4, Testbed};
    use ede_wire::RrType;
    use std::sync::Arc;

    let tb = Testbed::build();
    let resolvers: Vec<_> = Vendor::ALL
        .iter()
        .map(|&v| Arc::new(tb.resolver(v)))
        .collect();
    let mut bad = Vec::new();
    for (spec, exp) in tb.specs.iter().zip(table4()) {
        let qname = tb.query_name(spec);
        for r in &resolvers {
            r.flush();
        }
        let mut pool: ResolutionPool<(usize, Vec<u16>)> =
            ResolutionPool::new(resolvers[0].network_shared());
        for (i, r) in resolvers.iter().enumerate() {
            let resolver = Arc::clone(r);
            let qname = qname.clone();
            pool.spawn(move |handle| {
                let fut = resolver.resolve_on(handle, qname, RrType::A);
                async move { (i, fut.await.ede_codes()) }
            });
        }
        let mut row: Vec<Option<Vec<u16>>> = vec![None; resolvers.len()];
        for (i, codes) in &mut pool {
            row[i] = Some(codes);
        }
        for (i, got) in row.into_iter().enumerate() {
            let got = got.expect("column completed");
            if got != exp.codes[i].to_vec() {
                bad.push(format!(
                    "{} col {i} (concurrent): got {:?}, expected {:?}",
                    spec.label, got, exp.codes[i]
                ));
            }
        }
    }
    bad
}

/// Assert (by running both) that an event-driven scan with `inflight`
/// resolutions per worker is bit-identical to the blocking single-
/// resolution scan: same observations, same traffic, same metrics
/// counters (scheduler statistics excluded — they measure the window
/// itself). Returns the differences; empty means identical.
pub fn inflight_matches_blocking_scan(
    pop: &Population,
    config: &ChaosConfig,
    inflight: usize,
) -> Vec<String> {
    let blocking_world = ScanWorld::build(pop);
    let blocking = scan(
        pop,
        &blocking_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .inflight(1)
            .build(),
    );
    let pooled_world = ScanWorld::build(pop);
    let pooled = scan(
        pop,
        &pooled_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .inflight(inflight)
            .build(),
    );
    let mut bad = Vec::new();
    if !blocking.stats.same_results(&pooled.stats)
        || blocking.final_records() != pooled.final_records()
    {
        bad.push(format!("scan results differ at inflight {inflight}"));
    }
    if blocking.traffic_full != pooled.traffic_full {
        bad.push(format!(
            "traffic differs at inflight {inflight}: {:?} != {:?}",
            blocking.traffic_full, pooled.traffic_full
        ));
    }
    if blocking.metrics.without_scheduler_stats() != pooled.metrics.without_scheduler_stats() {
        bad.push(format!("metrics differ at inflight {inflight}"));
    }
    if pooled.metrics.tasks_spawned != pooled.resolutions as u64 {
        bad.push(format!(
            "pooled scan did not run pooled: {} tasks for {} resolutions",
            pooled.metrics.tasks_spawned, pooled.resolutions
        ));
    }
    bad
}

/// Assert (by running all three) that the cache-tier configurations
/// hold their contracts on this population:
///
/// * with the per-worker **L1 tier disabled**, the scan is bit-identical
///   to the plain scan — the L1 is a pure performance tier;
/// * with a shared-cache **budget far below the working set**, the scan
///   still completes every domain with bounded occupancy and nonzero
///   evictions (eviction legally changes observations, so that leg is
///   *not* fingerprint-compared).
///
/// Returns the violations; empty means both contracts hold.
pub fn tier_configs_hold(pop: &Population, config: &ChaosConfig) -> Vec<String> {
    let plain_world = ScanWorld::build(pop);
    let plain = scan(
        pop,
        &plain_world,
        &ScanConfig::builder().vendor(config.vendor).build(),
    );
    let no_l1_world = ScanWorld::build(pop);
    let no_l1 = scan(
        pop,
        &no_l1_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .l1(false)
            .build(),
    );
    let mut bad = Vec::new();
    if !plain.stats.same_results(&no_l1.stats) || plain.final_records() != no_l1.final_records() {
        bad.push("scan results differ with the L1 tier disabled".to_string());
    }
    if plain.traffic_full != no_l1.traffic_full {
        bad.push(format!(
            "traffic differs with the L1 tier disabled: {:?} != {:?}",
            plain.traffic_full, no_l1.traffic_full
        ));
    }
    if plain.metrics.without_scheduler_stats() != no_l1.metrics.without_scheduler_stats() {
        bad.push("metrics differ with the L1 tier disabled".to_string());
    }
    if no_l1.cache.l1.hits + no_l1.cache.l1.misses != 0 {
        bad.push("L1 tier probed despite being disabled".to_string());
    }

    const BUDGET: usize = 8;
    let budget_world = ScanWorld::build(pop);
    let budgeted = scan(
        pop,
        &budget_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .max_cache_entries(Some(BUDGET))
            .build(),
    );
    if budgeted.stats.ede.total_domains != plain.stats.ede.total_domains {
        bad.push(format!(
            "budgeted scan lost domains: {} of {}",
            budgeted.stats.ede.total_domains, plain.stats.ede.total_domains
        ));
    }
    if budgeted.cache.l2.evicted == 0 {
        bad.push(format!("a {BUDGET}-entry budget evicted nothing"));
    }
    if budgeted.cache.l2.occupancy > BUDGET as u64 {
        bad.push(format!(
            "budget {BUDGET} exceeded: {} live entries",
            budgeted.cache.l2.occupancy
        ));
    }
    bad
}

/// Assert (by running both synthesis legs) that the RFC 8198 range
/// tier holds its contracts on this population:
///
/// * with **denial synthesis enabled** (and the post-scan sweep
///   driving nonexistent probes at it), observations are bit-identical
///   to the plain scan — retained intervals never cover a registered
///   name, so synthesis is observation-neutral *by construction* — and
///   the sweep answers a nonzero share of probes from cached ranges
///   for less upstream traffic than one query per probe;
/// * with a **range budget far below the retained working set**, the
///   tier stays bounded and evicts — and, unlike an L2 budget,
///   observations are *still* bit-identical, because evicting a range
///   only forfeits synthesis capacity, never changes an answer.
///
/// Returns the violations; empty means both contracts hold.
pub fn synthesis_configs_hold(pop: &Population, config: &ChaosConfig) -> Vec<String> {
    let plain_world = ScanWorld::build(pop);
    let plain = scan(
        pop,
        &plain_world,
        &ScanConfig::builder().vendor(config.vendor).build(),
    );

    let synth_world = ScanWorld::build(pop);
    let synth = scan(
        pop,
        &synth_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .synthesize(true)
            .sweep_ratio(1.5)
            .build(),
    );
    let mut bad = Vec::new();
    if !plain.stats.same_results(&synth.stats) || plain.final_records() != synth.final_records() {
        bad.push("scan results differ with denial synthesis enabled".to_string());
    }
    match &synth.sweep {
        None => bad.push("sweep_ratio 1.5 produced no sweep report".to_string()),
        Some(sweep) => {
            if sweep.synthesized == 0 {
                bad.push("the sweep answered nothing from cached ranges".to_string());
            }
            if sweep.queries as usize >= sweep.probes {
                bad.push(format!(
                    "the sweep spent {} queries on {} probes — no cheaper than live",
                    sweep.queries, sweep.probes
                ));
            }
        }
    }
    if synth.cache.range.hits == 0 {
        bad.push("range tier recorded no hits despite the sweep".to_string());
    }

    const RANGE_BUDGET: usize = 8;
    let budget_world = ScanWorld::build(pop);
    let budgeted = scan(
        pop,
        &budget_world,
        &ScanConfig::builder()
            .vendor(config.vendor)
            .synthesize(true)
            .sweep_ratio(1.5)
            .max_range_entries(Some(RANGE_BUDGET))
            .build(),
    );
    if !plain.stats.same_results(&budgeted.stats)
        || plain.final_records() != budgeted.final_records()
    {
        bad.push("scan results differ under a tiny range budget".to_string());
    }
    if budgeted.cache.range.evicted == 0 {
        bad.push(format!(
            "a {RANGE_BUDGET}-span range budget evicted nothing"
        ));
    }
    if budgeted.cache.range.occupancy > RANGE_BUDGET as u64 {
        bad.push(format!(
            "range budget {RANGE_BUDGET} exceeded: {} live spans",
            budgeted.cache.range.occupancy
        ));
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn smoke_campaign_is_deterministic_and_reconciles() {
        let run = || {
            let pop = Population::generate(PopulationConfig::tiny());
            let report = campaign(
                &pop,
                &ChaosConfig::default()
                    .with_seed(7)
                    .with_intensities(vec![0.0, 0.05]),
            );
            report
                .legs
                .iter()
                .map(|l| (l.resolved, l.per_code.clone(), l.traffic.queries))
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run(), "legs must be bit-stable per seed");

        let pop = Population::generate(PopulationConfig::tiny());
        let report = campaign(
            &pop,
            &ChaosConfig::default()
                .with_seed(7)
                .with_intensities(vec![0.0, 0.05]),
        );
        for leg in &report.legs {
            assert_eq!(
                leg.reconcile(),
                Vec::<String>::new(),
                "leg {}",
                leg.intensity
            );
        }
        // Degradation can only lose domains, and mild chaos with the
        // hardened policy must not lose many.
        let base = &report.legs[0];
        let worst = &report.legs[1];
        assert!(worst.resolved <= base.resolved);
        assert!(
            worst.resolved as f64 >= 0.95 * base.resolved as f64,
            "5% chaos with retries resolved {}/{}",
            worst.resolved,
            base.resolved
        );
        assert!(!report.render().is_empty());
    }

    #[test]
    fn baseline_leg_is_bit_identical_to_plain_scan() {
        let pop = Population::generate(PopulationConfig::tiny());
        let diffs = baseline_matches_plain_scan(&pop, &ChaosConfig::default());
        assert_eq!(diffs, Vec::<String>::new());
    }

    #[test]
    fn tier_configs_hold_on_the_tiny_population() {
        let pop = Population::generate(PopulationConfig::tiny());
        let diffs = tier_configs_hold(&pop, &ChaosConfig::default());
        assert_eq!(diffs, Vec::<String>::new());
    }

    #[test]
    fn synthesis_configs_hold_on_the_tiny_population() {
        let pop = Population::generate(PopulationConfig::tiny());
        let diffs = synthesis_configs_hold(&pop, &ChaosConfig::default());
        assert_eq!(diffs, Vec::<String>::new());
    }
}
