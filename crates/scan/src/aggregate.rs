//! Aggregate scan observations into the paper's §4.2 / §4.3 numbers.

use crate::population::Population;
use crate::scanner::ScanResult;
use crate::stats;
use ede_wire::Rcode;
use std::collections::{BTreeMap, HashMap};

/// Aggregated results of one scan.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Total domains scanned.
    pub total_domains: usize,
    /// Domains that triggered at least one EDE code.
    pub ede_domains: usize,
    /// Domains per INFO-CODE (a domain counts once per code it carried).
    pub per_code: BTreeMap<u16, usize>,
    /// Domains per exact code combination.
    pub per_combo: BTreeMap<Vec<u16>, usize>,
    /// Domains that answered NOERROR while still carrying EDE codes
    /// (§4.3's 12.2 k observation).
    pub noerror_with_ede: usize,
    /// Nameserver analysis from Network Error EXTRA-TEXT.
    pub ns_analysis: NsAnalysis,
    /// Per-TLD ratio of EDE-triggering domains, split gTLD/ccTLD.
    pub tld_ratios_gtld: Vec<f64>,
    /// ccTLD ratios.
    pub tld_ratios_cctld: Vec<f64>,
    /// (rank, had_ede) for every ranked domain.
    pub tranco: Vec<(u32, bool)>,
}

/// §4.2.2-style breakdown of broken nameservers.
#[derive(Debug, Clone, Default)]
pub struct NsAnalysis {
    /// Unique nameserver addresses seen in Network Error texts.
    pub unique_ns: usize,
    /// Of those, how many answered REFUSED.
    pub refused_ns: usize,
    /// SERVFAIL.
    pub servfail_ns: usize,
    /// Other failures.
    pub other_ns: usize,
    /// Domains affected per nameserver (weights for concentration).
    pub domains_per_ns: Vec<usize>,
}

impl NsAnalysis {
    /// How many nameservers must be fixed to repair `target` of the
    /// affected domains (the paper: fixing 20 k of 293 k repairs 81 %).
    pub fn ns_to_cover(&self, target: f64) -> usize {
        stats::keys_to_cover(&self.domains_per_ns, target)
    }
}

/// Aggregate a scan result against its population.
pub fn aggregate(pop: &Population, result: &ScanResult) -> Aggregate {
    let mut per_code: BTreeMap<u16, usize> = BTreeMap::new();
    let mut per_combo: BTreeMap<Vec<u16>, usize> = BTreeMap::new();
    let mut ede_domains = 0usize;
    let mut noerror_with_ede = 0usize;
    let mut ns_domains: HashMap<String, (usize, String)> = HashMap::new();
    let mut tld_total = vec![0usize; pop.tlds.len()];
    let mut tld_ede = vec![0usize; pop.tlds.len()];
    let mut tranco = Vec::new();

    for obs in &result.observations {
        tld_total[obs.tld] += 1;
        if let Some(rank) = obs.rank {
            tranco.push((rank, !obs.codes.is_empty()));
        }
        if obs.codes.is_empty() {
            continue;
        }
        ede_domains += 1;
        tld_ede[obs.tld] += 1;
        if obs.rcode == Rcode::NoError {
            noerror_with_ede += 1;
        }
        let mut combo = obs.codes.clone();
        combo.sort_unstable();
        combo.dedup();
        for &c in &combo {
            *per_code.entry(c).or_insert(0) += 1;
        }
        *per_combo.entry(combo).or_insert(0) += 1;

        if let Some(text) = &obs.network_error_text {
            // Texts look like "192.0.2.1:53 rcode=REFUSED for x.tld A".
            if let Some((addr, rest)) = text.split_once(":53 ") {
                let entry = ns_domains
                    .entry(addr.to_string())
                    .or_insert((0, String::new()));
                entry.0 += 1;
                if entry.1.is_empty() {
                    entry.1 = rest
                        .split_whitespace()
                        .next()
                        .unwrap_or_default()
                        .to_string();
                }
            }
        }
    }

    let mut ns_analysis = NsAnalysis {
        unique_ns: ns_domains.len(),
        ..Default::default()
    };
    for (count, kind) in ns_domains.values() {
        ns_analysis.domains_per_ns.push(*count);
        match kind.as_str() {
            "rcode=REFUSED" => ns_analysis.refused_ns += 1,
            "rcode=SERVFAIL" => ns_analysis.servfail_ns += 1,
            _ => ns_analysis.other_ns += 1,
        }
    }

    let mut tld_ratios_gtld = Vec::new();
    let mut tld_ratios_cctld = Vec::new();
    for (i, tld) in pop.tlds.iter().enumerate() {
        if tld_total[i] == 0 {
            continue;
        }
        let ratio = tld_ede[i] as f64 / tld_total[i] as f64;
        if tld.cc {
            tld_ratios_cctld.push(ratio);
        } else {
            tld_ratios_gtld.push(ratio);
        }
    }

    tranco.sort_unstable();

    Aggregate {
        total_domains: result.observations.len(),
        ede_domains,
        per_code,
        per_combo,
        noerror_with_ede,
        ns_analysis,
        tld_ratios_gtld,
        tld_ratios_cctld,
        tranco,
    }
}

impl Aggregate {
    /// The CDF series of Figure 1 for gTLDs (ratio → cumulative
    /// fraction).
    pub fn figure1_gtld(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.tld_ratios_gtld)
    }

    /// Figure 1 for ccTLDs.
    pub fn figure1_cctld(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.tld_ratios_cctld)
    }

    /// The CDF of Figure 2: EDE-triggering ranked domains by rank.
    pub fn figure2(&self) -> Vec<(f64, f64)> {
        let ranks: Vec<f64> = self
            .tranco
            .iter()
            .filter(|(_, ede)| *ede)
            .map(|(r, _)| f64::from(*r))
            .collect();
        stats::cdf(&ranks)
    }

    /// Tranco members that triggered EDE (the paper's 22.1 k overlap).
    pub fn tranco_overlap(&self) -> usize {
        self.tranco.iter().filter(|(_, ede)| *ede).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use crate::scanner::{scan, ScanConfig};
    use crate::world::ScanWorld;

    #[test]
    fn aggregate_tiny_scan() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(&pop, &world, &ScanConfig::default());
        let agg = aggregate(&pop, &result);

        assert_eq!(agg.total_domains, pop.domains.len());
        assert!(agg.ede_domains > 0);
        // The dominant codes must be 22 and 23, like the paper.
        let c22 = agg.per_code.get(&22).copied().unwrap_or(0);
        let c23 = agg.per_code.get(&23).copied().unwrap_or(0);
        assert!(c22 > 0 && c23 > 0);
        assert!(c22 >= c23, "22 ({c22}) should dominate 23 ({c23})");
        let max_other = agg
            .per_code
            .iter()
            .filter(|(c, _)| **c != 22 && **c != 23)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        assert!(c22 > max_other);
        // Some NOERROR answers still carry EDE.
        assert!(agg.noerror_with_ede > 0);
        // The NS analysis sees the broken pool.
        assert!(agg.ns_analysis.unique_ns > 0);
        assert!(agg.ns_analysis.refused_ns >= agg.ns_analysis.servfail_ns);
    }
}
