//! Aggregate scan records into the paper's §4.2 / §4.3 numbers.
//!
//! Two paths produce the same [`Aggregate`]:
//!
//! * **Streaming** — each scan worker folds its claim chunks into a
//!   private [`PartialAggregate`] and merges it into the shared
//!   snapshot store as it goes (see [`crate::stream`]); nothing is
//!   buffered until the end of the scan.
//! * **Batch** — [`aggregate`] folds a [`crate::scanner::ScanResult`]'s
//!   retained records into one fresh partial.
//!
//! Both paths run the *same* fold, and [`PartialAggregate::merge`] is
//! commutative and associative (counters add, maps union-add, the
//! nameserver-kind witness keeps the minimum domain index, rank pairs
//! concatenate and are sorted at [`PartialAggregate::finalize`]), so
//! merge order — and therefore worker count, in-flight window, and
//! snapshot cadence — cannot change the result. The property tests in
//! `tests/streaming.rs` pin the two paths bit-identical.

use crate::population::Population;
use crate::querylog::QueryRecord;
use crate::scanner::ScanResult;
use crate::stats;
use ede_wire::Rcode;
use std::collections::BTreeMap;

/// FNV-1a offset basis / prime, for the per-record line hashes.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(line: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in line.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Per-nameserver evidence from Network Error EXTRA-TEXT. The `kind`
/// witness is the text of the *lowest-indexed* affected domain — the
/// same "first in input order" the old batch aggregator saw, but made
/// explicit so merging partials in any order converges on it.
#[derive(Debug, Clone)]
struct NsEntry {
    domains: usize,
    first_domain: usize,
    kind: String,
}

/// One worker's (or one chunk's) partial aggregation: every counter the
/// report needs, foldable one record at a time and mergeable with any
/// other partial. `Default` is the empty aggregation.
#[derive(Debug, Clone, Default)]
pub struct PartialAggregate {
    domains: usize,
    ede_domains: usize,
    noerror_with_ede: usize,
    servfail_domains: usize,
    per_code: BTreeMap<u16, usize>,
    per_combo: BTreeMap<Vec<u16>, usize>,
    ns: BTreeMap<String, NsEntry>,
    tld_total: Vec<usize>,
    tld_ede: Vec<usize>,
    tranco: Vec<(u32, bool)>,
    fp_sum: u64,
    fp_xor: u64,
}

impl PartialAggregate {
    /// Fold one final record. Callers must fold each domain's **final**
    /// record exactly once (the scanner folds non-revisit domains in
    /// pass 1 and revisit domains in pass 2).
    pub fn fold(&mut self, rec: &QueryRecord) {
        self.domains += 1;
        if self.tld_total.len() <= rec.tld {
            self.tld_total.resize(rec.tld + 1, 0);
            self.tld_ede.resize(rec.tld + 1, 0);
        }
        self.tld_total[rec.tld] += 1;
        if let Some(rank) = rec.rank {
            self.tranco.push((rank, !rec.codes.is_empty()));
        }
        if rec.rcode == Rcode::ServFail {
            self.servfail_domains += 1;
        }
        let h = fnv1a(&rec.outcome_line());
        self.fp_sum = self.fp_sum.wrapping_add(h);
        self.fp_xor ^= h;

        if rec.codes.is_empty() {
            return;
        }
        self.ede_domains += 1;
        self.tld_ede[rec.tld] += 1;
        if rec.rcode == Rcode::NoError {
            self.noerror_with_ede += 1;
        }
        let mut combo = rec.codes.clone();
        combo.sort_unstable();
        combo.dedup();
        for &c in &combo {
            *self.per_code.entry(c).or_insert(0) += 1;
        }
        *self.per_combo.entry(combo).or_insert(0) += 1;

        if let Some(text) = &rec.network_error_text {
            // Texts look like "192.0.2.1:53 rcode=REFUSED for x.tld A".
            if let Some((addr, rest)) = text.split_once(":53 ") {
                let kind = rest.split_whitespace().next().unwrap_or_default();
                match self.ns.get_mut(addr) {
                    Some(entry) => {
                        entry.domains += 1;
                        if rec.domain < entry.first_domain {
                            entry.first_domain = rec.domain;
                            entry.kind = kind.to_string();
                        }
                    }
                    None => {
                        self.ns.insert(
                            addr.to_string(),
                            NsEntry {
                                domains: 1,
                                first_domain: rec.domain,
                                kind: kind.to_string(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Merge another partial into this one. Commutative and
    /// associative: `a.merge(b)` then `merge(c)` equals any other
    /// order, which is what makes the streaming pipeline's final
    /// numbers independent of worker timing.
    pub fn merge(&mut self, other: PartialAggregate) {
        self.domains += other.domains;
        self.ede_domains += other.ede_domains;
        self.noerror_with_ede += other.noerror_with_ede;
        self.servfail_domains += other.servfail_domains;
        for (c, n) in other.per_code {
            *self.per_code.entry(c).or_insert(0) += n;
        }
        for (combo, n) in other.per_combo {
            *self.per_combo.entry(combo).or_insert(0) += n;
        }
        for (addr, e) in other.ns {
            match self.ns.get_mut(&addr) {
                Some(entry) => {
                    entry.domains += e.domains;
                    if e.first_domain < entry.first_domain {
                        entry.first_domain = e.first_domain;
                        entry.kind = e.kind;
                    }
                }
                None => {
                    self.ns.insert(addr, e);
                }
            }
        }
        if self.tld_total.len() < other.tld_total.len() {
            self.tld_total.resize(other.tld_total.len(), 0);
            self.tld_ede.resize(other.tld_ede.len(), 0);
        }
        for (i, n) in other.tld_total.into_iter().enumerate() {
            self.tld_total[i] += n;
        }
        for (i, n) in other.tld_ede.into_iter().enumerate() {
            self.tld_ede[i] += n;
        }
        self.tranco.extend(other.tranco);
        self.fp_sum = self.fp_sum.wrapping_add(other.fp_sum);
        self.fp_xor ^= other.fp_xor;
    }

    /// Domains folded so far.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The commutative scan fingerprint over every folded record's
    /// [`QueryRecord::outcome_line`]: per-line FNV-1a hashes combined
    /// with a wrapping sum, an XOR, and the record count, then mixed.
    /// Order-independent by construction, so the streaming and batch
    /// paths — and every worker configuration — agree bit for bit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for v in [self.fp_sum, self.fp_xor, self.domains as u64] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Finish: compute the derived series against the population.
    pub fn finalize(&self, pop: &Population) -> Aggregate {
        let mut ns_analysis = NsAnalysis {
            unique_ns: self.ns.len(),
            ..Default::default()
        };
        // BTreeMap order makes `domains_per_ns` deterministic (the old
        // HashMap batch path emitted it in hash order).
        for entry in self.ns.values() {
            ns_analysis.domains_per_ns.push(entry.domains);
            match entry.kind.as_str() {
                "rcode=REFUSED" => ns_analysis.refused_ns += 1,
                "rcode=SERVFAIL" => ns_analysis.servfail_ns += 1,
                _ => ns_analysis.other_ns += 1,
            }
        }

        let mut tld_ratios_gtld = Vec::new();
        let mut tld_ratios_cctld = Vec::new();
        for (i, tld) in pop.tlds.iter().enumerate() {
            let total = self.tld_total.get(i).copied().unwrap_or(0);
            if total == 0 {
                continue;
            }
            let ratio = self.tld_ede.get(i).copied().unwrap_or(0) as f64 / total as f64;
            if tld.cc {
                tld_ratios_cctld.push(ratio);
            } else {
                tld_ratios_gtld.push(ratio);
            }
        }

        let mut tranco = self.tranco.clone();
        tranco.sort_unstable();

        Aggregate {
            total_domains: self.domains,
            ede_domains: self.ede_domains,
            per_code: self.per_code.clone(),
            per_combo: self.per_combo.clone(),
            noerror_with_ede: self.noerror_with_ede,
            servfail_domains: self.servfail_domains,
            ns_analysis,
            tld_ratios_gtld,
            tld_ratios_cctld,
            tranco,
            fingerprint: self.fingerprint(),
        }
    }
}

/// Aggregated results of one scan.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Total domains scanned.
    pub total_domains: usize,
    /// Domains that triggered at least one EDE code.
    pub ede_domains: usize,
    /// Domains per INFO-CODE (a domain counts once per code it carried).
    pub per_code: BTreeMap<u16, usize>,
    /// Domains per exact code combination.
    pub per_combo: BTreeMap<Vec<u16>, usize>,
    /// Domains that answered NOERROR while still carrying EDE codes
    /// (§4.3's 12.2 k observation).
    pub noerror_with_ede: usize,
    /// Domains whose final RCODE was SERVFAIL (the complement of the
    /// chaos campaigns' resolved count).
    pub servfail_domains: usize,
    /// Nameserver analysis from Network Error EXTRA-TEXT.
    pub ns_analysis: NsAnalysis,
    /// Per-TLD ratio of EDE-triggering domains, split gTLD/ccTLD.
    pub tld_ratios_gtld: Vec<f64>,
    /// ccTLD ratios.
    pub tld_ratios_cctld: Vec<f64>,
    /// (rank, had_ede) for every ranked domain.
    pub tranco: Vec<(u32, bool)>,
    /// The commutative scan fingerprint (see
    /// [`PartialAggregate::fingerprint`]).
    pub fingerprint: u64,
}

/// §4.2.2-style breakdown of broken nameservers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NsAnalysis {
    /// Unique nameserver addresses seen in Network Error texts.
    pub unique_ns: usize,
    /// Of those, how many answered REFUSED.
    pub refused_ns: usize,
    /// SERVFAIL.
    pub servfail_ns: usize,
    /// Other failures.
    pub other_ns: usize,
    /// Domains affected per nameserver (weights for concentration),
    /// in nameserver-address order.
    pub domains_per_ns: Vec<usize>,
}

impl NsAnalysis {
    /// How many nameservers must be fixed to repair `target` of the
    /// affected domains (the paper: fixing 20 k of 293 k repairs 81 %).
    pub fn ns_to_cover(&self, target: f64) -> usize {
        stats::keys_to_cover(&self.domains_per_ns, target)
    }
}

/// Aggregate a scan result against its population — the **batch** path,
/// folding the retained final records into one fresh partial. Requires
/// a complete query log (`result.log.dropped == 0`); with a ring
/// smaller than the population, use the streaming aggregate the scan
/// already computed (`result.stats`) instead.
pub fn aggregate(pop: &Population, result: &ScanResult) -> Aggregate {
    let mut partial = PartialAggregate::default();
    for rec in result.final_records() {
        partial.fold(rec);
    }
    partial.finalize(pop)
}

impl Aggregate {
    /// The CDF series of Figure 1 for gTLDs (ratio → cumulative
    /// fraction).
    pub fn figure1_gtld(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.tld_ratios_gtld)
    }

    /// Figure 1 for ccTLDs.
    pub fn figure1_cctld(&self) -> Vec<(f64, f64)> {
        stats::cdf(&self.tld_ratios_cctld)
    }

    /// The CDF of Figure 2: EDE-triggering ranked domains by rank.
    pub fn figure2(&self) -> Vec<(f64, f64)> {
        let ranks: Vec<f64> = self
            .tranco
            .iter()
            .filter(|(_, ede)| *ede)
            .map(|(r, _)| f64::from(*r))
            .collect();
        stats::cdf(&ranks)
    }

    /// Tranco members that triggered EDE (the paper's 22.1 k overlap).
    pub fn tranco_overlap(&self) -> usize {
        self.tranco.iter().filter(|(_, ede)| *ede).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use crate::scanner::{scan, ScanConfig};
    use crate::world::ScanWorld;

    #[test]
    fn aggregate_tiny_scan() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(&pop, &world, &ScanConfig::default());
        let agg = aggregate(&pop, &result);

        assert_eq!(agg.total_domains, pop.domains.len());
        assert!(agg.ede_domains > 0);
        // The dominant codes must be 22 and 23, like the paper.
        let c22 = agg.per_code.get(&22).copied().unwrap_or(0);
        let c23 = agg.per_code.get(&23).copied().unwrap_or(0);
        assert!(c22 > 0 && c23 > 0);
        assert!(c22 >= c23, "22 ({c22}) should dominate 23 ({c23})");
        let max_other = agg
            .per_code
            .iter()
            .filter(|(c, _)| **c != 22 && **c != 23)
            .map(|(_, n)| *n)
            .max()
            .unwrap_or(0);
        assert!(c22 > max_other);
        // Some NOERROR answers still carry EDE.
        assert!(agg.noerror_with_ede > 0);
        // The NS analysis sees the broken pool.
        assert!(agg.ns_analysis.unique_ns > 0);
        assert!(agg.ns_analysis.refused_ns >= agg.ns_analysis.servfail_ns);
        // Batch refold equals the scan's own streaming aggregation.
        assert_eq!(agg.fingerprint, result.stats.fingerprint);
        assert_eq!(agg.per_code, result.stats.ede.per_code);
    }

    #[test]
    fn merge_is_order_independent() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(&pop, &world, &ScanConfig::default());
        let records: Vec<_> = result.final_records().into_iter().cloned().collect();

        // Fold in one partial.
        let mut whole = PartialAggregate::default();
        for r in &records {
            whole.fold(r);
        }

        // Fold the same records into interleaved shards, merge the
        // shards in reverse.
        let mut shards = vec![PartialAggregate::default(); 7];
        for (i, r) in records.iter().enumerate() {
            shards[i % 7].fold(r);
        }
        let mut merged = PartialAggregate::default();
        for shard in shards.into_iter().rev() {
            merged.merge(shard);
        }

        assert_eq!(whole.fingerprint(), merged.fingerprint());
        let a = whole.finalize(&pop);
        let b = merged.finalize(&pop);
        assert_eq!(a.per_code, b.per_code);
        assert_eq!(a.per_combo, b.per_combo);
        assert_eq!(a.ns_analysis, b.ns_analysis);
        assert_eq!(a.tld_ratios_gtld, b.tld_ratios_gtld);
        assert_eq!(a.tld_ratios_cctld, b.tld_ratios_cctld);
        assert_eq!(a.tranco, b.tranco);
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}
