//! The scanner: drive a resolver over the whole input list from a
//! worker pool, plus the revisit pass for flap/cache phenomena.

use crate::population::{Category, Population};
use crate::world::ScanWorld;
use ede_resolver::{
    CacheStatsSnapshot, InfraStatsSnapshot, L1Cache, L1StatsSnapshot, Resolution, ResolutionPool,
    Resolver, RetryPolicy, Vendor, VendorProfile,
};
use ede_trace::{Metrics, MetricsSnapshot};
use ede_wire::{Name, Rcode, RrType};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One observed resolution. `PartialEq` lets tests assert bit-identical
/// results across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The queried domain.
    pub name: Name,
    /// Planted ground truth (for calibration cross-checks only; the
    /// aggregation works from the observed codes).
    pub category: Category,
    /// TLD index.
    pub tld: usize,
    /// Tranco rank, if ranked.
    pub rank: Option<u32>,
    /// Final RCODE.
    pub rcode: Rcode,
    /// Observed EDE codes, wire order.
    pub codes: Vec<u16>,
    /// EXTRA-TEXT of the Network Error entry, when present (feeds the
    /// §4.2.2 nameserver analysis).
    pub network_error_text: Option<String>,
}

/// Per-tier cache accounting for one scan: the workers' private L1
/// tiers (summed), the shared L2 store, and the infrastructure cache.
/// Reported alongside the metrics in the end-of-run summary; never part
/// of the determinism comparisons (tier *placement* of a hit is a
/// performance fact, not a result).
#[derive(Debug, Clone, Default)]
pub struct ScanCacheReport {
    /// Summed counters of every worker's L1 tier.
    pub l1: L1StatsSnapshot,
    /// The shared (L2) resolution cache's counters.
    pub l2: CacheStatsSnapshot,
    /// The infrastructure cache's counters (zone keys + referrals).
    pub infra: InfraStatsSnapshot,
    /// The range tier's counters (RFC 8198 denial synthesis). All zero
    /// when [`ScanConfig::synthesize`] is off: the engine never probes
    /// the tier then.
    pub range: CacheStatsSnapshot,
}

impl ScanCacheReport {
    /// Multi-line human rendering with per-tier hit ratios, matching
    /// the metrics `render()` style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("cache tiers:\n");
        out.push_str(&format!(
            "  L1        : {} hits / {} probes ({:.1}%), {} flips\n",
            self.l1.hits,
            self.l1.hits + self.l1.misses,
            100.0 * self.l1.hit_ratio(),
            self.l1.capacity_flips,
        ));
        out.push_str(&format!(
            "  L2        : {} hits / {} probes ({:.1}%), {} stale, {} expired, {} evicted, {} live\n",
            self.l2.hits,
            self.l2.hits + self.l2.misses,
            100.0 * self.l2.hit_ratio(),
            self.l2.stale_served,
            self.l2.expired,
            self.l2.evicted,
            self.l2.occupancy,
        ));
        out.push_str(&format!(
            "  infra     : {} key replays, {} referral replays / {} probes ({:.1}%)\n",
            self.infra.key_hits,
            self.infra.referral_hits,
            self.infra.referral_hits + self.infra.referral_misses,
            100.0 * self.infra.referral_hit_ratio(),
        ));
        if self.range.hits + self.range.misses > 0 {
            out.push_str(&format!(
                "  ranges    : {} synthesized / {} probes ({:.1}%), {} evicted, {} live spans\n",
                self.range.hits,
                self.range.hits + self.range.misses,
                100.0 * self.range.hit_ratio(),
                self.range.evicted,
                self.range.occupancy,
            ));
        }
        out
    }
}

/// Accounting for the post-scan synthesis sweep: deterministic
/// nonexistent-name probes that measure how much of each TLD's denial
/// space the range tier already covers. Sweep probes never contribute
/// observations — they exist purely to exercise RFC 8198 synthesis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Probe resolutions issued.
    pub probes: usize,
    /// Probes answered from the range tier (no authority asked).
    pub synthesized: u64,
    /// Upstream queries the sweep cost (misses walking to the TLDs).
    pub queries: u64,
}

impl SweepReport {
    /// Fraction of probes the range tier answered.
    pub fn hit_ratio(&self) -> f64 {
        self.synthesized as f64 / self.probes.max(1) as f64
    }
}

/// The complete scan output.
pub struct ScanResult {
    /// One observation per input domain (the revisit pass overwrites the
    /// first observation for flap/cache domains, as "the last response
    /// wins" in a longitudinal probe).
    pub observations: Vec<Observation>,
    /// Number of resolutions performed (both passes).
    pub resolutions: usize,
    /// Transport-level traffic counters: (queries, delivered, failed) —
    /// the simulated analogue of the paper's §5 traffic accounting.
    pub traffic: (u64, u64, u64),
    /// The full transport accounting, including the stream-channel,
    /// truncation, and fault counters the 3-tuple predates.
    pub traffic_full: ede_netsim::TrafficSnapshot,
    /// Metrics collected through the trace pipeline during the scan
    /// (query/outcome counters, cache ratios, per-vendor EDE counts,
    /// latency histograms). `metrics.queries_sent` equals `traffic.0`:
    /// both count the same transport events.
    pub metrics: MetricsSnapshot,
    /// Per-tier cache accounting (L1 summed over workers, L2, infra,
    /// ranges).
    pub cache: ScanCacheReport,
    /// Synthesis-sweep accounting, when [`ScanConfig::sweep_ratio`] was
    /// nonzero. The sweep runs after both passes with the range tier
    /// frozen, so it never perturbs the observations above.
    pub sweep: Option<SweepReport>,
}

impl ScanResult {
    /// Upstream queries per *registered domain* — the paper's §5 cost
    /// metric. The denominator is the domain count (one observation per
    /// domain), not the resolution count: revisit passes and sweep
    /// probes spend queries without adding domains.
    pub fn queries_per_domain(&self) -> f64 {
        self.traffic.0 as f64 / self.observations.len().max(1) as f64
    }
}

/// Scan config.
///
/// `#[non_exhaustive]`: construct with [`ScanConfig::default()`] or the
/// fluent [`ScanConfig::builder()`], then adjust fields.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ScanConfig {
    /// Worker threads.
    pub workers: usize,
    /// Resolutions each worker keeps in flight on its event-driven task
    /// pool. `1` (the default) runs the historical blocking path —
    /// byte-identical output, no task events; `> 1` multiplexes that
    /// many resumable resolutions per worker thread (results stay
    /// bit-identical, see `docs/CONCURRENCY.md`).
    pub inflight: usize,
    /// Vendor to scan with (the paper uses Cloudflare).
    pub vendor: Vendor,
    /// Print live progress lines to stderr while scanning.
    pub progress: bool,
    /// Override the world's retry policy for the scanning resolver.
    /// `None` keeps the world's configuration (the compat baseline),
    /// which is what the pinned repro-scan inventory is built on.
    pub retry: Option<RetryPolicy>,
    /// Give each worker a private L1 cache tier (on by default). Purely
    /// a performance knob: scan results are bit-identical with it on or
    /// off.
    pub l1: bool,
    /// Bound the scanning resolver's shared cache to this many entries
    /// (`None` keeps the world's configuration, normally unbounded).
    /// Unlike `l1` this is *not* results-neutral: evicting a live entry
    /// turns a later replay into a live walk — see `docs/PERFORMANCE.md`.
    pub max_cache_entries: Option<usize>,
    /// Enable RFC 8198 denial synthesis in the scanning resolver (the
    /// vendor gate must also agree — OpenDNS keeps it off). Off by
    /// default: the pinned scan inventory is the synthesis-free walk.
    /// Observation reports are EDE-equivalent either way (pinned by
    /// test); only the traffic spent on nonexistent names changes.
    pub synthesize: bool,
    /// Nonexistent-name probes per registered domain for the post-scan
    /// synthesis sweep (`0.0`, the default, disables the sweep). The
    /// sweep runs after both passes with the range tier frozen and its
    /// probes excluded from the observations, so any setting leaves the
    /// scan report untouched.
    pub sweep_ratio: f64,
    /// Bound the resolver's range tier to this many spans (`None` keeps
    /// the resolver default, normally unbounded).
    pub max_range_entries: Option<usize>,
    /// Bound the resolver's range tier to this many bytes.
    pub max_range_bytes: Option<usize>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        // `EDE_SCAN_WORKERS` overrides the auto-detected pool size — the
        // throughput bench sweeps it, and operators can pin it. Results
        // are bit-identical at any worker count, so this is purely a
        // performance knob.
        let workers = std::env::var("EDE_SCAN_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(16)
            });
        // `EDE_SCAN_INFLIGHT` sets the per-worker in-flight window the
        // same way; like the worker count it is purely a performance
        // knob — results are bit-identical at any setting.
        let inflight = std::env::var("EDE_SCAN_INFLIGHT")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&w| w > 0)
            .unwrap_or(1);
        ScanConfig {
            workers,
            inflight,
            vendor: Vendor::Cloudflare,
            progress: false,
            retry: None,
            l1: true,
            max_cache_entries: None,
            synthesize: false,
            sweep_ratio: 0.0,
            max_range_entries: None,
            max_range_bytes: None,
        }
    }
}

impl ScanConfig {
    /// Start a fluent builder from the defaults.
    pub fn builder() -> ScanConfigBuilder {
        ScanConfigBuilder {
            config: ScanConfig::default(),
        }
    }
}

/// Fluent builder for [`ScanConfig`]; finish with
/// [`build`](ScanConfigBuilder::build).
///
/// ```
/// use ede_scan::ScanConfig;
/// use ede_resolver::{RetryPolicy, Vendor};
///
/// let config = ScanConfig::builder()
///     .workers(1)
///     .vendor(Vendor::Cloudflare)
///     .retry(RetryPolicy::default())
///     .build();
/// assert_eq!(config.workers, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ScanConfigBuilder {
    config: ScanConfig,
}

impl ScanConfigBuilder {
    /// Set the worker-pool size.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Set the per-worker in-flight resolution window (`1` = the
    /// blocking path, `> 1` = event-driven task pools).
    pub fn inflight(mut self, n: usize) -> Self {
        self.config.inflight = n.max(1);
        self
    }

    /// Set the scanning vendor profile.
    pub fn vendor(mut self, vendor: Vendor) -> Self {
        self.config.vendor = vendor;
        self
    }

    /// Enable or disable live progress lines.
    pub fn progress(mut self, on: bool) -> Self {
        self.config.progress = on;
        self
    }

    /// Override the retry policy of the scanning resolver.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.config.retry = Some(policy);
        self
    }

    /// Enable or disable the per-worker L1 cache tier.
    pub fn l1(mut self, on: bool) -> Self {
        self.config.l1 = on;
        self
    }

    /// Bound the scanning resolver's shared cache (entries).
    pub fn max_cache_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_cache_entries = n;
        self
    }

    /// Enable RFC 8198 denial synthesis in the scanning resolver.
    pub fn synthesize(mut self, on: bool) -> Self {
        self.config.synthesize = on;
        self
    }

    /// Set the synthesis-sweep probe ratio (`0.0` disables the sweep).
    pub fn sweep_ratio(mut self, ratio: f64) -> Self {
        self.config.sweep_ratio = ratio.max(0.0);
        self
    }

    /// Bound the resolver's range tier (spans).
    pub fn max_range_entries(mut self, n: Option<usize>) -> Self {
        self.config.max_range_entries = n;
        self
    }

    /// Bound the resolver's range tier (bytes).
    pub fn max_range_bytes(mut self, n: Option<usize>) -> Self {
        self.config.max_range_bytes = n;
        self
    }

    /// Finish, yielding the configuration.
    pub fn build(self) -> ScanConfig {
        self.config
    }
}

/// Fold one finished resolution into the scan's observation shape.
fn observation_from(pop: &Population, idx: usize, res: &Resolution) -> Observation {
    let d = &pop.domains[idx];
    let network_error_text = res
        .ede
        .iter()
        .find(|e| e.code.to_u16() == 23)
        .map(|e| e.extra_text.clone());
    Observation {
        name: d.name.clone(),
        category: d.category,
        tld: d.tld,
        rank: d.rank,
        rcode: res.rcode,
        codes: res.ede_codes(),
        network_error_text,
    }
}

fn observe(resolver: &Resolver, pop: &Population, idx: usize, l1: Option<&L1Cache>) -> Observation {
    let res = match l1 {
        Some(l1) => resolver.resolve_l1(&pop.domains[idx].name, RrType::A, l1),
        None => resolver.resolve(&pop.domains[idx].name, RrType::A),
    };
    observation_from(pop, idx, &res)
}

/// Detaches the world's trace sink on drop — including during unwind,
/// so a panicking worker cannot leak this scan's metrics sink into the
/// next scan (or troubleshoot run) on the same world.
struct SinkGuard<'a> {
    net: &'a ede_netsim::Network,
}

impl Drop for SinkGuard<'_> {
    fn drop(&mut self) {
        self.net.clear_trace_sink();
    }
}

/// How many domains a worker claims per cursor bump. Chunking amortizes
/// the shared-cursor traffic without hurting load balance: chunks are
/// tiny relative to any real population.
const CLAIM_CHUNK: usize = 16;

/// Shared progress state for [`parallel_pass`].
struct PassProgress<'a> {
    metrics: &'a Metrics,
    done: &'a AtomicUsize,
    step: usize,
    total: usize,
    enabled: bool,
}

impl PassProgress<'_> {
    /// Count one finished resolution and maybe print a progress line.
    fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled && done.is_multiple_of(self.step) {
            let snap = self.metrics.snapshot();
            eprintln!(
                "scan: {done}/{} resolutions, {} queries, cache hit ratio {:.1}%",
                self.total,
                snap.queries_sent,
                100.0 * snap.cache_hit_ratio()
            );
        }
    }
}

/// The blocking worker body (`inflight == 1`): resolve each claimed
/// domain to completion before touching the next. This is the historical
/// scan path, kept verbatim as the byte-identity baseline.
fn blocking_worker(
    resolver: &Resolver,
    pop: &Population,
    indices: &[usize],
    cursor: &AtomicUsize,
    use_l1: bool,
    progress: &PassProgress<'_>,
) -> (Vec<(usize, Observation)>, L1StatsSnapshot) {
    // The worker's private tier: lives on this thread, dies with this
    // pass, never shared — which is what lets it skip synchronization
    // entirely.
    let l1 = use_l1.then(L1Cache::new);
    let mut buf: Vec<(usize, Observation)> = Vec::new();
    loop {
        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
        if start >= indices.len() {
            break;
        }
        let end = (start + CLAIM_CHUNK).min(indices.len());
        for &i in &indices[start..end] {
            let obs = observe(resolver, pop, i, l1.as_ref());
            progress.tick();
            buf.push((i, obs));
        }
    }
    let stats = l1.map(|l1| l1.stats()).unwrap_or_default();
    (buf, stats)
}

/// The event-driven worker body (`inflight > 1`): keep up to `inflight`
/// resumable resolutions in flight on one [`ResolutionPool`], refilling
/// from the shared cursor (same `CLAIM_CHUNK` claiming as the blocking
/// path) as tasks complete. Results surface in completion order; the
/// carried index puts them back in their slots.
fn pooled_worker(
    resolver: &Arc<Resolver>,
    pop: &Population,
    indices: &[usize],
    cursor: &AtomicUsize,
    inflight: usize,
    use_l1: bool,
    progress: &PassProgress<'_>,
) -> (Vec<(usize, Observation)>, L1StatsSnapshot) {
    // Every task spawned on this pool runs on this thread, so they all
    // share one `Rc<L1Cache>` — legal precisely because `spawn` has no
    // `Send` bound (see `docs/CONCURRENCY.md`).
    let l1 = use_l1.then(|| Rc::new(L1Cache::new()));
    let mut buf: Vec<(usize, Observation)> = Vec::new();
    let mut pool: ResolutionPool<(usize, Resolution)> =
        ResolutionPool::new(resolver.network_shared());
    let mut backlog: VecDeque<usize> = VecDeque::new();
    let mut exhausted = false;
    loop {
        while pool.in_flight() < inflight && !(exhausted && backlog.is_empty()) {
            if backlog.is_empty() {
                let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                if start >= indices.len() {
                    exhausted = true;
                    continue;
                }
                let end = (start + CLAIM_CHUNK).min(indices.len());
                backlog.extend(indices[start..end].iter().copied());
            }
            if let Some(i) = backlog.pop_front() {
                let qname = pop.domains[i].name.clone();
                let resolver = Arc::clone(resolver);
                let l1 = l1.clone();
                pool.spawn(move |handle| async move {
                    let res = match l1 {
                        Some(l1) => resolver.resolve_on_l1(handle, qname, RrType::A, l1).await,
                        None => resolver.resolve_on(handle, qname, RrType::A).await,
                    };
                    (i, res)
                });
            }
        }
        match pool.next() {
            Some((i, res)) => {
                let obs = observation_from(pop, i, &res);
                progress.tick();
                buf.push((i, obs));
            }
            None => {
                debug_assert!(exhausted && backlog.is_empty());
                break;
            }
        }
    }
    let stats = l1.map(|l1| l1.stats()).unwrap_or_default();
    (buf, stats)
}

/// One parallel pass over `indices`: workers claim chunks off a shared
/// cursor and push `(slot, observation)` pairs into **private** buffers,
/// returned to the caller for merging after the scope joins. There is no
/// shared output structure, so result delivery is lock-free; slot order
/// in the merged vector is irrelevant because each index appears exactly
/// once.
///
/// Each worker multiplexes `inflight` resolutions on an event-driven
/// task pool (`inflight == 1` short-circuits to the blocking path).
fn parallel_pass(
    resolver: &Arc<Resolver>,
    pop: &Population,
    indices: &[usize],
    workers: usize,
    inflight: usize,
    use_l1: bool,
    progress: &PassProgress<'_>,
) -> (Vec<(usize, Observation)>, L1StatsSnapshot) {
    let cursor = AtomicUsize::new(0);
    let buffers: Vec<(Vec<(usize, Observation)>, L1StatsSnapshot)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                s.spawn(|| {
                    if inflight > 1 {
                        pooled_worker(resolver, pop, indices, &cursor, inflight, use_l1, progress)
                    } else {
                        blocking_worker(resolver, pop, indices, &cursor, use_l1, progress)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker panicked"))
            .collect()
    });
    let mut l1 = L1StatsSnapshot::default();
    let mut merged = Vec::new();
    for (buf, stats) in buffers {
        l1.merge(&stats);
        merged.extend(buf);
    }
    (merged, l1)
}

/// Deterministic nonexistent probe names for the synthesis sweep: per
/// TLD, `ceil(children × ratio)` names one label below the TLD apex.
/// The `-sweep` suffix keeps them disjoint from every generated
/// population name, so a probe can never collide with a registered
/// domain.
fn sweep_probes(pop: &Population, ratio: f64) -> Vec<Name> {
    let mut per_tld = vec![0usize; pop.tlds.len()];
    for d in &pop.domains {
        per_tld[d.tld] += 1;
    }
    let mut probes = Vec::new();
    for (t, tld) in pop.tlds.iter().enumerate() {
        let n = (per_tld[t] as f64 * ratio).ceil() as usize;
        for j in 0..n {
            let label = format!("zzq{j}-sweep");
            probes.push(tld.name.child(&label).expect("probe label fits"));
        }
    }
    probes
}

/// Drive the sweep probes through the worker pool, discarding results:
/// sweep probes measure the range tier, they never contribute
/// observations. Runs with the range tier frozen (the caller freezes
/// it), so every probe's outcome is a pure function of what the two
/// passes retained — bit-identical at any worker count or in-flight
/// window, exactly like the passes themselves.
fn sweep_pass(resolver: &Arc<Resolver>, probes: &[Name], workers: usize, inflight: usize) {
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| {
                if inflight > 1 {
                    let mut pool: ResolutionPool<()> =
                        ResolutionPool::new(resolver.network_shared());
                    let mut backlog: VecDeque<usize> = VecDeque::new();
                    let mut exhausted = false;
                    loop {
                        while pool.in_flight() < inflight && !(exhausted && backlog.is_empty()) {
                            if backlog.is_empty() {
                                let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                                if start >= probes.len() {
                                    exhausted = true;
                                    continue;
                                }
                                let end = (start + CLAIM_CHUNK).min(probes.len());
                                backlog.extend(start..end);
                            }
                            if let Some(i) = backlog.pop_front() {
                                let qname = probes[i].clone();
                                let resolver = Arc::clone(resolver);
                                pool.spawn(move |handle| async move {
                                    let _ = resolver.resolve_on(handle, qname, RrType::A).await;
                                });
                            }
                        }
                        if pool.next().is_none() {
                            break;
                        }
                    }
                } else {
                    loop {
                        let start = cursor.fetch_add(CLAIM_CHUNK, Ordering::Relaxed);
                        if start >= probes.len() {
                            break;
                        }
                        let end = (start + CLAIM_CHUNK).min(probes.len());
                        for name in &probes[start..end] {
                            let _ = resolver.resolve(name, RrType::A);
                        }
                    }
                }
            });
        }
    });
}

/// Run the scan: one pass over every domain, then a clock advance and a
/// revisit pass over the flap/cache categories (the paper's probes hit
/// such domains repeatedly through Cloudflare's shared cache). Both
/// passes run on the worker pool; results are bit-identical at any
/// worker count.
pub fn scan(pop: &Population, world: &ScanWorld, config: &ScanConfig) -> ScanResult {
    // Every transport/resolver/EDE event of the scan feeds the metrics
    // registry through the trace pipeline. The guard detaches the sink
    // when `scan` returns *or unwinds*.
    let metrics = Arc::new(Metrics::new());
    world
        .net
        .set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);
    let _sink_guard = SinkGuard { net: &world.net };

    let mut resolver_config = world.resolver_config.clone();
    if let Some(policy) = &config.retry {
        resolver_config.retry = policy.clone();
    }
    if config.max_cache_entries.is_some() {
        resolver_config.max_cache_entries = config.max_cache_entries;
    }
    if config.synthesize {
        resolver_config.synthesize_denial = true;
    }
    if config.max_range_entries.is_some() {
        resolver_config.max_range_entries = config.max_range_entries;
    }
    if config.max_range_bytes.is_some() {
        resolver_config.max_range_bytes = config.max_range_bytes;
    }
    let enable_cache = resolver_config.enable_cache;
    let resolver = Arc::new(Resolver::new(
        Arc::clone(&world.net),
        VendorProfile::new(config.vendor),
        resolver_config,
    ));

    // Prime the infrastructure cache: one serial (TLD, NS) resolution
    // per TLD walks every root→TLD delegation once, *before* the
    // workers start. Without this, which resolution populates a given
    // referral entry first — and therefore how many root queries the
    // scan issues — would depend on thread timing; with it, every
    // worker-count and in-flight configuration sees the same
    // pre-populated walk and the traffic and metrics counters stay
    // bit-identical across all of them.
    if enable_cache {
        for tld in &pop.tlds {
            let _ = resolver.resolve(&tld.name, RrType::Ns);
        }
    }

    let n = pop.domains.len();
    let first_pass: Vec<usize> = (0..n).collect();
    let revisit: Vec<usize> = (0..n)
        .filter(|&i| pop.domains[i].category.needs_revisit())
        .collect();
    let resolutions = AtomicUsize::new(0);
    let progress = PassProgress {
        metrics: &metrics,
        done: &resolutions,
        step: (n / 10).max(1),
        total: n + revisit.len(),
        enabled: config.progress,
    };

    // Pass 1: everything, in parallel.
    let mut l1_stats = L1StatsSnapshot::default();
    let mut observations: Vec<Option<Observation>> = vec![None; n];
    let (pass1, pass1_l1) = parallel_pass(
        &resolver,
        pop,
        &first_pass,
        config.workers,
        config.inflight,
        config.l1,
        &progress,
    );
    l1_stats.merge(&pass1_l1);
    for (i, obs) in pass1 {
        observations[i] = Some(obs);
    }
    let mut observations: Vec<Observation> = observations
        .into_iter()
        .map(|o| o.expect("filled"))
        .collect();

    // Pass 2: revisit flap/cache domains after the flap window ("the
    // last response wins", as in a longitudinal probe).
    world.net.clock().advance_secs(120);
    let (pass2, pass2_l1) = parallel_pass(
        &resolver,
        pop,
        &revisit,
        config.workers,
        config.inflight,
        config.l1,
        &progress,
    );
    l1_stats.merge(&pass2_l1);
    for (i, obs) in pass2 {
        observations[i] = obs;
    }

    // Sweep phase: after both passes finish (and therefore after every
    // observation is final), freeze the range tier and probe
    // deterministic nonexistent names against it. Freezing makes every
    // probe's outcome a pure function of what the passes retained —
    // deterministic at any worker count — and running strictly last
    // means the sweep cannot perturb observations, whatever it does to
    // the caches.
    let sweep = (config.sweep_ratio > 0.0).then(|| {
        resolver.freeze_ranges(true);
        let range_before = resolver.range_stats();
        let (queries_before, _, _) = world.net.stats().snapshot();
        let probes = sweep_probes(pop, config.sweep_ratio);
        sweep_pass(&resolver, &probes, config.workers, config.inflight);
        let range_after = resolver.range_stats();
        let (queries_after, _, _) = world.net.stats().snapshot();
        SweepReport {
            probes: probes.len(),
            synthesized: range_after.hits - range_before.hits,
            queries: queries_after - queries_before,
        }
    });

    let cache = ScanCacheReport {
        l1: l1_stats,
        l2: resolver.cache_stats(),
        infra: resolver.infra_stats(),
        range: resolver.range_stats(),
    };
    if config.progress {
        eprint!("{}", cache.render());
        if let Some(sweep) = &sweep {
            eprintln!(
                "sweep: {} synthesized / {} probes ({:.1}%), {} upstream queries",
                sweep.synthesized,
                sweep.probes,
                100.0 * sweep.hit_ratio(),
                sweep.queries,
            );
        }
    }

    ScanResult {
        observations,
        resolutions: resolutions.into_inner(),
        traffic: world.net.stats().snapshot(),
        traffic_full: world.net.stats().snapshot_full(),
        metrics: metrics.snapshot(),
        cache,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn tiny_scan_end_to_end() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(&pop, &world, &ScanConfig::builder().workers(4).build());
        assert_eq!(result.observations.len(), pop.domains.len());
        assert!(result.resolutions >= pop.domains.len());

        // Healthy domains resolve cleanly; lame ones carry codes.
        for obs in &result.observations {
            match obs.category {
                Category::HealthyUnsigned | Category::HealthySigned => {
                    assert_eq!(obs.rcode, Rcode::NoError, "{}", obs.name);
                    assert!(obs.codes.is_empty(), "{}: {:?}", obs.name, obs.codes);
                }
                Category::LameRcode => {
                    assert_eq!(obs.codes, vec![22, 23], "{}", obs.name);
                }
                Category::StaleFlapRefuse => {
                    assert!(obs.codes.contains(&3), "{}: {:?}", obs.name, obs.codes);
                }
                Category::NotAuthCached => {
                    assert!(obs.codes.contains(&13), "{}: {:?}", obs.name, obs.codes);
                }
                _ => {}
            }
        }
    }

    /// The contention work (sharded caches, per-worker buffers,
    /// singleflight key fetches) must not buy speed with nondeterminism:
    /// 1 worker and 16 workers must produce identical observations,
    /// aggregates, metrics counters, and traffic totals.
    #[test]
    fn worker_count_does_not_change_results() {
        let run = |workers: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .vendor(Vendor::Cloudflare)
                    .build(),
            );
            let agg = crate::aggregate::aggregate(&pop, &result);
            (result, agg)
        };
        let (serial, agg_serial) = run(1);
        let (parallel, agg_parallel) = run(16);
        assert_eq!(serial.observations, parallel.observations);
        assert_eq!(serial.resolutions, parallel.resolutions);
        assert_eq!(serial.traffic, parallel.traffic);
        assert_eq!(serial.metrics, parallel.metrics);
        assert_eq!(agg_serial.per_code, agg_parallel.per_code);
        assert_eq!(agg_serial.per_combo, agg_parallel.per_combo);
        assert_eq!(agg_serial.ede_domains, agg_parallel.ede_domains);
        assert_eq!(agg_serial.noerror_with_ede, agg_parallel.noerror_with_ede);
    }

    /// The event-driven task pools must not buy concurrency with
    /// changed results either: any in-flight window produces the same
    /// observations, aggregates, traffic totals, and metrics counters
    /// as the blocking single-resolution path. Only the scheduler
    /// statistics (task counts, peak gauges) may differ — they measure
    /// the scheduling itself, so the comparison strips them.
    #[test]
    fn inflight_window_does_not_change_results() {
        let run = |workers: usize, inflight: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .inflight(inflight)
                    .build(),
            );
            let agg = crate::aggregate::aggregate(&pop, &result);
            (result, agg)
        };
        let (blocking, agg_blocking) = run(1, 1);
        for (workers, inflight) in [(1, 2), (1, 64), (4, 16)] {
            let (pooled, agg_pooled) = run(workers, inflight);
            assert_eq!(
                blocking.observations, pooled.observations,
                "inflight {inflight}"
            );
            assert_eq!(blocking.resolutions, pooled.resolutions);
            assert_eq!(blocking.traffic, pooled.traffic);
            assert_eq!(blocking.traffic_full, pooled.traffic_full);
            assert_eq!(
                blocking.metrics.without_scheduler_stats(),
                pooled.metrics.without_scheduler_stats(),
                "inflight {inflight}"
            );
            // The pooled run really ran pooled: every domain became a
            // task and every task completed.
            assert_eq!(pooled.metrics.tasks_spawned, blocking.resolutions as u64);
            assert_eq!(pooled.metrics.tasks_completed, pooled.metrics.tasks_spawned);
            assert!(
                pooled.metrics.inflight_tasks_peak > 1,
                "inflight {inflight}"
            );
            assert_eq!(agg_blocking.per_code, agg_pooled.per_code);
            assert_eq!(agg_blocking.per_combo, agg_pooled.per_combo);
        }
    }

    /// The RFC 8198 pin: turning denial synthesis on (with a sweep)
    /// must leave every observation — and therefore the whole per-EDE /
    /// per-TLD report — byte-identical to the synthesis-free scan.
    /// Registered names are chain owners of their TLD's NSEC3 registry,
    /// so no validated range ever covers one; only the sweep's
    /// nonexistent probes synthesize, and those are excluded from the
    /// observations. The sweep itself must really fire (nonzero
    /// synthesis, cheaper traffic) and stay deterministic across
    /// worker/in-flight configurations.
    #[test]
    fn synthesis_is_report_neutral_and_sweep_synthesizes() {
        let run = |synthesize: bool, workers: usize, inflight: usize| {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig::builder()
                    .workers(workers)
                    .inflight(inflight)
                    .synthesize(synthesize)
                    .sweep_ratio(1.5)
                    .build(),
            );
            let agg = crate::aggregate::aggregate(&pop, &result);
            let json = crate::report::scan_json(&pop, &agg);
            let summary = crate::report::scan_summary(&pop, &agg);
            (result, json, summary)
        };
        let (off, json_off, summary_off) = run(false, 1, 1);
        let (on, json_on, summary_on) = run(true, 1, 1);

        // Byte-identical reports: synthesis changes traffic, never what
        // the scan observes.
        assert_eq!(off.observations, on.observations);
        assert_eq!(json_off, json_on, "per-EDE/per-TLD JSON report changed");
        assert_eq!(summary_off, summary_on, "human summary changed");
        assert_eq!(off.observations.len(), on.observations.len());

        // The sweep ran in both legs, probing the same names; only the
        // synthesis leg answered some from the range tier.
        let sweep_off = off.sweep.clone().expect("sweep ran");
        let sweep_on = on.sweep.clone().expect("sweep ran");
        assert_eq!(sweep_off.probes, sweep_on.probes);
        assert_eq!(sweep_off.synthesized, 0);
        assert_eq!(sweep_off.queries, sweep_off.probes as u64);
        assert!(
            sweep_on.synthesized > 0,
            "no probe was answered from cached ranges"
        );
        assert!(
            sweep_on.queries < sweep_off.queries,
            "synthesis did not save upstream traffic"
        );
        assert!(on.queries_per_domain() < off.queries_per_domain());
        assert!(on.cache.range.hits > 0);
        assert_eq!(off.cache.range.hits + off.cache.range.misses, 0);

        // Deterministic at any worker count / in-flight window, sweep
        // included: same observations, same traffic, same sweep report.
        let (on_parallel, json_par, _) = run(true, 4, 16);
        assert_eq!(on.observations, on_parallel.observations);
        assert_eq!(on.traffic, on_parallel.traffic);
        assert_eq!(on.sweep, on_parallel.sweep);
        assert_eq!(json_on, json_par);
    }

    /// A panic inside the scan must not leak the metrics sink into the
    /// next scan (or troubleshoot run) on the same world: the RAII
    /// guard detaches it during unwind.
    #[test]
    fn sink_guard_clears_tracer_on_unwind() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let metrics = Arc::new(Metrics::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world
                .net
                .set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);
            let _guard = SinkGuard { net: &world.net };
            assert!(world.net.tracer().enabled());
            panic!("worker exploded");
        }));
        assert!(result.is_err());
        assert!(
            !world.net.tracer().enabled(),
            "trace sink leaked past the panic"
        );
    }

    #[test]
    fn scan_is_deterministic_across_runs() {
        let run = || {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(&pop, &world, &ScanConfig::builder().workers(2).build());
            result
                .observations
                .iter()
                .map(|o| (o.name.to_string(), o.codes.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
