//! The scanner: drive a resolver over the whole input list from a
//! worker pool, plus the revisit pass for flap/cache phenomena.

use crate::population::{Category, Population};
use crate::world::ScanWorld;
use ede_resolver::{Resolver, Vendor, VendorProfile};
use ede_trace::{Metrics, MetricsSnapshot};
use ede_wire::{Name, Rcode, RrType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One observed resolution.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The queried domain.
    pub name: Name,
    /// Planted ground truth (for calibration cross-checks only; the
    /// aggregation works from the observed codes).
    pub category: Category,
    /// TLD index.
    pub tld: usize,
    /// Tranco rank, if ranked.
    pub rank: Option<u32>,
    /// Final RCODE.
    pub rcode: Rcode,
    /// Observed EDE codes, wire order.
    pub codes: Vec<u16>,
    /// EXTRA-TEXT of the Network Error entry, when present (feeds the
    /// §4.2.2 nameserver analysis).
    pub network_error_text: Option<String>,
}

/// The complete scan output.
pub struct ScanResult {
    /// One observation per input domain (the revisit pass overwrites the
    /// first observation for flap/cache domains, as "the last response
    /// wins" in a longitudinal probe).
    pub observations: Vec<Observation>,
    /// Number of resolutions performed (both passes).
    pub resolutions: usize,
    /// Transport-level traffic counters: (queries, delivered, failed) —
    /// the simulated analogue of the paper's §5 traffic accounting.
    pub traffic: (u64, u64, u64),
    /// Metrics collected through the trace pipeline during the scan
    /// (query/outcome counters, cache ratios, per-vendor EDE counts,
    /// latency histograms). `metrics.queries_sent` equals `traffic.0`:
    /// both count the same transport events.
    pub metrics: MetricsSnapshot,
}

/// Scan config.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Worker threads.
    pub workers: usize,
    /// Vendor to scan with (the paper uses Cloudflare).
    pub vendor: Vendor,
    /// Print live progress lines to stderr while scanning.
    pub progress: bool,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(16),
            vendor: Vendor::Cloudflare,
            progress: false,
        }
    }
}

fn observe(resolver: &Resolver, pop: &Population, idx: usize) -> Observation {
    let d = &pop.domains[idx];
    let res = resolver.resolve(&d.name, RrType::A);
    let network_error_text = res
        .ede
        .iter()
        .find(|e| e.code.to_u16() == 23)
        .map(|e| e.extra_text.clone());
    Observation {
        name: d.name.clone(),
        category: d.category,
        tld: d.tld,
        rank: d.rank,
        rcode: res.rcode,
        codes: res.ede_codes(),
        network_error_text,
    }
}

/// Run the scan: one pass over every domain, then a clock advance and a
/// revisit pass over the flap/cache categories (the paper's probes hit
/// such domains repeatedly through Cloudflare's shared cache).
pub fn scan(pop: &Population, world: &ScanWorld, config: &ScanConfig) -> ScanResult {
    // Every transport/resolver/EDE event of the scan feeds the metrics
    // registry through the trace pipeline.
    let metrics = Arc::new(Metrics::new());
    world
        .net
        .set_trace_sink(Arc::clone(&metrics) as Arc<dyn ede_trace::TraceSink>);

    let resolver = Arc::new(Resolver::new(
        Arc::clone(&world.net),
        VendorProfile::new(config.vendor),
        world.resolver_config.clone(),
    ));

    let n = pop.domains.len();
    let mut observations: Vec<Option<Observation>> = vec![None; n];
    let cursor = AtomicUsize::new(0);
    let resolutions = AtomicUsize::new(0);
    let progress_step = (n / 10).max(1);

    // Pass 1: everything, in parallel.
    let slots = std::sync::Mutex::new(&mut observations);
    std::thread::scope(|s| {
        for _ in 0..config.workers.max(1) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let obs = observe(&resolver, pop, i);
                let done = resolutions.fetch_add(1, Ordering::Relaxed) + 1;
                if config.progress && done % progress_step == 0 {
                    let snap = metrics.snapshot();
                    eprintln!(
                        "scan: {done}/{n} domains, {} queries, cache hit ratio {:.1}%",
                        snap.queries_sent,
                        100.0 * snap.cache_hit_ratio()
                    );
                }
                slots.lock().expect("no poisoning")[i] = Some(obs);
            });
        }
    });

    let mut observations: Vec<Observation> = observations
        .into_iter()
        .map(|o| o.expect("filled"))
        .collect();

    // Pass 2: revisit flap/cache domains after the flap window.
    world.net.clock().advance_secs(120);
    for (i, d) in pop.domains.iter().enumerate() {
        if d.category.needs_revisit() {
            observations[i] = observe(&resolver, pop, i);
            resolutions.fetch_add(1, Ordering::Relaxed);
        }
    }

    world.net.clear_trace_sink();
    ScanResult {
        observations,
        resolutions: resolutions.into_inner(),
        traffic: world.net.stats().snapshot(),
        metrics: metrics.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn tiny_scan_end_to_end() {
        let pop = Population::generate(PopulationConfig::tiny());
        let world = ScanWorld::build(&pop);
        let result = scan(
            &pop,
            &world,
            &ScanConfig {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(result.observations.len(), pop.domains.len());
        assert!(result.resolutions >= pop.domains.len());

        // Healthy domains resolve cleanly; lame ones carry codes.
        for obs in &result.observations {
            match obs.category {
                Category::HealthyUnsigned | Category::HealthySigned => {
                    assert_eq!(obs.rcode, Rcode::NoError, "{}", obs.name);
                    assert!(obs.codes.is_empty(), "{}: {:?}", obs.name, obs.codes);
                }
                Category::LameRcode => {
                    assert_eq!(obs.codes, vec![22, 23], "{}", obs.name);
                }
                Category::StaleFlapRefuse => {
                    assert!(obs.codes.contains(&3), "{}: {:?}", obs.name, obs.codes);
                }
                Category::NotAuthCached => {
                    assert!(obs.codes.contains(&13), "{}: {:?}", obs.name, obs.codes);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn scan_is_deterministic_across_runs() {
        let run = || {
            let pop = Population::generate(PopulationConfig::tiny());
            let world = ScanWorld::build(&pop);
            let result = scan(
                &pop,
                &world,
                &ScanConfig {
                    workers: 2,
                    ..Default::default()
                },
            );
            result
                .observations
                .iter()
                .map(|o| (o.name.to_string(), o.codes.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
